//! The event loop: workload validation, fault wiring, channel
//! acquisition/release, and statistics accounting.
//!
//! The engine is generic over the [`Router`]: every channel it touches
//! is a dense index from the [`ChannelMap`], every coordinate decode
//! goes through the [`Topology`](hcube::Topology) trait, and nothing in
//! here assumes hypercube address arithmetic. The hypercube and the
//! torus run the exact same loop.
//!
//! All mutable run state lives in a borrowed
//! [`EngineScratch`](crate::scratch::EngineScratch): `Engine::new`
//! *resets* the arenas instead of allocating them, and route lookups go
//! through the scratch's [`RouteMemo`](crate::network::RouteMemo). The
//! fresh-allocation entry points simply pass a brand-new scratch, so
//! both paths execute the same code and produce byte-identical results.

use crate::engine::events::{self, Event};
use crate::engine::outcomes::{NetStats, RunResult, SimError};
use crate::engine::watchdog;
use crate::engine::worm::{DepMessage, FaultCause, MessageResult, MsgState, Outcome};
use crate::faults::FaultPlan;
use crate::network::ChannelMap;
use crate::params::SimParams;
use crate::probe::Probe;
use crate::scratch::EngineScratch;
use crate::time::SimTime;
use hcube::{NodeId, Router, Topology};

pub(crate) struct Engine<'a, R: Router, P: Probe> {
    map: ChannelMap<R>,
    params: &'a SimParams,
    plan: &'a FaultPlan,
    workload: &'a [DepMessage],
    /// The reusable arenas: event heap, message table, channel table,
    /// dead flags, CPU clocks, cascade stack, and the route memo.
    scratch: &'a mut EngineScratch,
    stats: NetStats,
    finished: usize,
    last_time: SimTime,
    /// The in-loop observer. With `NoopProbe` every call site
    /// monomorphizes away (static dispatch — see the `probe_overhead`
    /// bench).
    probe: &'a mut P,
}

impl<'a, R: Router, P: Probe> Engine<'a, R, P> {
    pub fn new(
        router: R,
        params: &'a SimParams,
        workload: &'a [DepMessage],
        plan: &'a FaultPlan,
        probe: &'a mut P,
        scratch: &'a mut EngineScratch,
    ) -> Result<Engine<'a, R, P>, SimError> {
        events::check_workload_size(workload.len())?;
        let map = ChannelMap::new(router);

        // Reset the arenas: every buffer returns to its pristine state
        // without giving its allocation back.
        scratch.queue.reset();
        scratch.channels.reset(map.len());
        scratch.dead.clear();
        scratch.dead.resize(map.len(), false);
        scratch.cpu_free.clear();
        scratch.cpu_free.resize(map.nodes(), SimTime::ZERO);
        scratch.finish_stack.clear();
        scratch.msgs.truncate(workload.len());
        for (i, m) in workload.iter().enumerate() {
            if m.src == m.dst {
                return Err(SimError::SelfSend { index: i });
            }
            let route = map.route_into(params.port_model, m.src, m.dst, &mut scratch.memo);
            if i < scratch.msgs.len() {
                scratch.msgs[i].reset(route, m.deps.len(), m.min_start);
            } else {
                scratch
                    .msgs
                    .push(MsgState::new(route, m.deps.len(), m.min_start));
            }
        }
        for (i, m) in workload.iter().enumerate() {
            for &d in &m.deps {
                if d >= workload.len() {
                    return Err(SimError::DependencyOutOfRange { index: i, dep: d });
                }
                scratch.msgs[d].dependents.push(i);
            }
        }

        let topo = map.topology();
        // Deadline-only plans (the open-loop observation window) damage
        // nothing: skip the whole channel-fault wiring pass.
        if plan.has_network_faults() {
            for (ch, slot) in scratch.dead.iter_mut().enumerate().take(map.externals()) {
                let (v, p) = map.external_coords(ch);
                // A directed channel is unusable when the link itself is
                // dead, its own lane is dead, or either endpoint node is
                // down — decided through the topology's neighbor
                // function, never by address arithmetic.
                *slot = plan.link_dead(v, p)
                    || plan.lane_dead(v, p, map.lane_of(ch))
                    || plan.node_dead(v)
                    || plan.node_dead(topo.neighbor(v, p));
                if plan.channel_stuck(v, p) {
                    scratch.channels.stick(ch);
                }
            }
            for i in 0..map.nodes() {
                let v = NodeId(i as u32);
                if plan.node_dead(v) {
                    scratch.dead[map.injection(v)] = true;
                    scratch.dead[map.consumption(v)] = true;
                }
            }
        }

        // Per-dimension channel counts (utilization statistics) and the
        // external-channel → dimension table (busy-time accounting on
        // every channel release) — cached in the scratch per router
        // stamp. Reused scratches skip the walk over every external
        // channel, and the hot release path replaces the topology's
        // coordinate arithmetic with one table load.
        if scratch.dim_stamp != Some(map.stamp()) {
            scratch.dim_channels.clear();
            scratch
                .dim_channels
                .resize(topo.dimensions() as usize, 0u32);
            scratch.dim_table.clear();
            scratch.dim_table.reserve(map.externals());
            for ch in 0..map.externals() {
                let d = map.dim_of(ch);
                scratch.dim_channels[d as usize] += 1;
                scratch.dim_table.push(d);
            }
            scratch.dim_stamp = Some(map.stamp());
        }
        let stats = NetStats {
            dim_busy: vec![SimTime::ZERO; topo.dimensions() as usize],
            dim_channels: scratch.dim_channels.clone(),
            lane_busy: vec![SimTime::ZERO; map.lanes()],
            lane_links: map.links() as u32,
            ..NetStats::default()
        };

        Ok(Engine {
            map,
            params,
            plan,
            workload,
            scratch,
            stats,
            finished: 0,
            last_time: SimTime::ZERO,
            probe,
        })
    }

    /// The dense channel index of hop `hop` of message `m`'s route —
    /// the *nominal* channel, always a lane-class representative.
    #[inline]
    fn route_channel(&self, m: usize, hop: usize) -> usize {
        self.scratch
            .memo
            .channel_at(self.scratch.msgs[m].route_start, hop)
    }

    /// The channel hop `hop` of `m` actually holds. Under adaptive lane
    /// selection (`class_size > 1`) the granted lane may differ from
    /// the route's nominal class floor, so the truth lives in the
    /// per-message `taken` log; otherwise the route memo is exact and
    /// the log stays empty.
    #[inline]
    fn actual_channel(&self, m: usize, hop: usize) -> usize {
        if self.map.class_size() > 1 {
            self.scratch.msgs[m].taken[hop]
        } else {
            self.route_channel(m, hop)
        }
    }

    /// If `ch` is inside a stall window at `t`, when it reopens.
    fn stalled_until(&self, ch: usize, t: SimTime) -> Option<SimTime> {
        if !self.plan.has_stalls() || self.map.is_virtual(ch) {
            return None;
        }
        let (v, p) = self.map.external_coords(ch);
        self.plan.stalled_until(v, p, t)
    }

    /// Closes an open stall-window park on `m` at `t`, charging the
    /// blocked time that actually elapsed — the full window when the
    /// reopen retry fires, a pro-rated share when an abort cuts the
    /// park short.
    fn settle_stall(&mut self, m: usize, t: SimTime) {
        if let Some((since, port)) = self.scratch.msgs[m].stall.take() {
            let waited = t.saturating_sub(since);
            self.scratch.msgs[m].blocked_time += waited;
            if port {
                self.stats.port_wait_time += waited;
            } else {
                self.stats.blocked_time += waited;
            }
        }
    }

    /// Marks `m` finished, records stats, and cascades failure to
    /// dependents that now can never be sent.
    fn finish(&mut self, m: usize, t: SimTime, outcome: Outcome) {
        debug_assert!(self.scratch.finish_stack.is_empty());
        self.scratch.finish_stack.push((m, outcome));
        while let Some((i, out)) = self.scratch.finish_stack.pop() {
            if self.scratch.msgs[i].outcome.is_some() {
                continue;
            }
            self.scratch.msgs[i].outcome = Some(out);
            self.scratch.msgs[i].finished_at = t;
            self.finished += 1;
            match out {
                Outcome::Delivered => self.probe.on_delivered(t, i, self.scratch.msgs[i].injected),
                Outcome::Failed(cause) => {
                    self.stats.failed += 1;
                    self.probe.on_fault(t, i, cause);
                }
                Outcome::TimedOut => {
                    self.stats.timed_out += 1;
                    self.probe.on_timeout(t, i);
                }
            }
            if out != Outcome::Delivered {
                // Dependents of a lost message can never start.
                for d in 0..self.scratch.msgs[i].dependents.len() {
                    let dep = self.scratch.msgs[i].dependents[d];
                    self.scratch
                        .finish_stack
                        .push((dep, Outcome::Failed(FaultCause::DependencyFailed)));
                }
            }
        }
    }

    /// Releases `msgs[m]`'s first `count` route channels, handing each
    /// one **directly** to its FIFO-head waiter — the waiter holds the
    /// channel the instant it is released
    /// ([`Channels::handoff`](crate::engine::arbitration::Channels::handoff)),
    /// so a same-time acquisition attempt still sitting in the event
    /// heap can never steal it. Charges per-dimension busy time on the
    /// way.
    fn release_channels(&mut self, m: usize, count: usize, t: SimTime) {
        for hop in 0..count {
            let ch = self.actual_channel(m, hop);
            // Blocked worms park on the lane class's *representative*
            // channel (the nominal route channel); whichever lane of
            // the class frees up serves that queue. With one lane per
            // class the representative is the channel itself.
            let rep = if self.map.is_virtual(ch) {
                ch
            } else {
                self.map.class_rep(ch)
            };
            // A stall window covering the release instant defers the
            // *grant* to the window's reopen; the reservation itself is
            // made now, so nothing else can slip in.
            let grant_t = self.stalled_until(ch, t).unwrap_or(t);
            let (held_since, waiter) = self.scratch.channels.handoff_from(ch, rep, m, grant_t);
            self.probe.on_channel_released(t, m, ch, held_since);
            if !self.map.is_virtual(ch) {
                // Cached per-channel dimension: the topology's
                // coordinate decode is too slow for the release path.
                let d = self.scratch.dim_table[ch] as usize;
                let held = t.saturating_sub(held_since);
                self.stats.dim_busy[d] += held;
                self.stats.lane_busy[self.map.lane_of(ch) as usize] += held;
            }
            if let Some((w, whop)) = waiter {
                debug_assert!(self.scratch.msgs[w].outcome.is_none());
                self.scratch.msgs[w].waiting_on = None;
                let waited = grant_t.saturating_sub(self.scratch.msgs[w].wait_since);
                self.scratch.msgs[w].blocked_time += waited;
                if self.map.is_virtual(ch) || whop == 0 {
                    self.stats.port_wait_time += waited;
                } else {
                    self.stats.blocked_time += waited;
                }
                if self.map.class_size() > 1 {
                    debug_assert_eq!(self.scratch.msgs[w].taken.len(), whop);
                    self.scratch.msgs[w].taken.push(ch);
                }
                self.probe.on_channel_granted(grant_t, w, ch, whop);
                self.advance_after_grant(w, whop, ch, grant_t);
            }
        }
        self.scratch.msgs[m].acquired = 0;
        self.scratch.msgs[m].taken.clear();
    }

    /// Aborts an in-flight (or not-yet-started) message: releases held
    /// channels, leaves any wait queue, settles an open stall park,
    /// finishes with `outcome`.
    fn abort(&mut self, m: usize, t: SimTime, outcome: Outcome) {
        self.settle_stall(m, t);
        let held = self.scratch.msgs[m].acquired;
        if held > 0 {
            self.release_channels(m, held, t);
        }
        if let Some(ch) = self.scratch.msgs[m].waiting_on.take() {
            self.scratch.channels.remove_waiter(ch, m);
        }
        self.finish(m, t, outcome);
    }

    pub fn run(&mut self) -> Result<(), SimError> {
        // The plan-wide observation window is one event for the whole
        // run, scheduled before anything else: at its close time it
        // outranks every same-time event (the window is `[0, close)`),
        // and the open-loop hot path stops paying one deadline event
        // per message.
        if let Some(close) = self.plan.default_deadline() {
            self.scratch.queue.push(close, Event::WindowClose);
        }
        // Pre-fail messages with dead endpoints (cascades to dependents).
        if self.plan.has_dead_nodes() {
            for i in 0..self.workload.len() {
                let m = &self.workload[i];
                if self.plan.node_dead(m.src) || self.plan.node_dead(m.dst) {
                    self.finish(i, m.min_start, Outcome::Failed(FaultCause::DeadEndpoint));
                }
            }
        }
        for i in 0..self.workload.len() {
            if self.scratch.msgs[i].outcome.is_none() {
                if self.workload[i].deps.is_empty() {
                    self.scratch
                        .queue
                        .push(self.workload[i].min_start, Event::Eligible(i));
                }
                if let Some(d) = self.plan.message_deadline(i) {
                    self.scratch.queue.push(d, Event::Deadline(i));
                }
            }
        }

        while let Some((t, event)) = self.scratch.queue.pop() {
            self.last_time = t;
            match event {
                Event::WindowClose => {
                    self.on_window_close(t);
                    continue;
                }
                Event::Eligible(m)
                | Event::TryAcquire(m, _)
                | Event::Complete(m)
                | Event::Deadline(m) => {
                    if self.scratch.msgs[m].outcome.is_some() {
                        continue; // stale event for an aborted/failed message
                    }
                }
            }
            match event {
                Event::Eligible(m) => self.on_eligible(m, t),
                Event::TryAcquire(m, hop) => self.on_try_acquire(m, hop, t),
                Event::Complete(m) => self.on_complete(m, t),
                Event::Deadline(m) => self.abort(m, t, Outcome::TimedOut),
                Event::WindowClose => unreachable!("handled above"),
            }
        }

        if self.finished == self.workload.len() {
            return Ok(());
        }
        // The run is ending without releasing everything: a reused
        // scratch must sweep its channel table before the next run.
        self.scratch.channels.mark_dirty();
        // Watchdog: the heap drained with unfinished messages.
        let verdict = watchdog::verdict(&self.scratch.msgs, &self.scratch.channels, self.last_time);
        if let SimError::Deadlock {
            at,
            ref holders,
            ref waiters,
        } = verdict
        {
            self.probe.on_watchdog_alarm(at, holders, waiters);
        }
        Err(verdict)
    }

    /// The plan-wide observation window closes: abort every message
    /// still short of delivery, in workload order, unless a per-message
    /// deadline override governs it instead.
    fn on_window_close(&mut self, t: SimTime) {
        for m in 0..self.workload.len() {
            if self.scratch.msgs[m].outcome.is_none() && self.plan.message_deadline(m).is_none() {
                self.abort(m, t, Outcome::TimedOut);
            }
        }
    }

    fn on_eligible(&mut self, m: usize, t: SimTime) {
        self.probe.on_eligible(t, m);
        let src = self.workload[m].src.0 as usize;
        let start = if self.params.cpu_serialized_startup {
            let s = t.max(self.scratch.cpu_free[src]);
            self.scratch.cpu_free[src] = s + self.params.t_send_sw;
            s
        } else {
            t
        };
        let inject = start + self.params.t_send_sw;
        self.scratch.msgs[m].injected = inject;
        self.probe
            .on_injected(inject, m, self.scratch.msgs[m].route_len as usize);
        self.scratch.queue.push(inject, Event::TryAcquire(m, 0));
    }

    /// Post-grant bookkeeping shared by the free-channel acquisition
    /// path and the atomic hand-off path: records route progress and
    /// schedules the next hop (or the tail drain when the route is
    /// complete).
    fn advance_after_grant(&mut self, m: usize, hop: usize, ch: usize, t: SimTime) {
        self.scratch.msgs[m].acquired = hop + 1;
        let hop_cost = if self.map.is_virtual(ch) {
            SimTime::ZERO
        } else {
            self.params.t_hop
        };
        let arrive = t + hop_cost;
        if hop + 1 < self.scratch.msgs[m].route_len as usize {
            self.probe.on_header_advanced(arrive, m, hop + 1);
            self.scratch
                .queue
                .push(arrive, Event::TryAcquire(m, hop + 1));
        } else {
            let drain = arrive + self.params.t_byte * u64::from(self.workload[m].bytes);
            self.scratch.queue.push(drain, Event::Complete(m));
        }
    }

    fn on_try_acquire(&mut self, m: usize, hop: usize, t: SimTime) {
        // A stall-window park ends here (this is its reopen retry):
        // charge the window now that it actually elapsed.
        self.settle_stall(m, t);
        let rep = self.route_channel(m, hop);
        self.probe.on_channel_requested(t, m, rep, hop);
        // Under adaptive lane selection the worm may take any lane of
        // the nominal channel's class window, lowest index first; a
        // single-lane class (every deterministic router) degenerates to
        // the original one-channel protocol with no extra work.
        let window = if self.map.is_virtual(rep) {
            1
        } else {
            self.map.class_size()
        };
        let mut chosen = None;
        let mut any_alive = false;
        for c in rep..rep + window {
            if self.scratch.dead[c] {
                continue;
            }
            any_alive = true;
            if chosen.is_none() && self.scratch.channels.is_free(c) {
                chosen = Some(c);
            }
        }
        if !any_alive {
            // The header hit a dead link — every lane of the class is
            // down: abort-and-discard.
            self.scratch.msgs[m].acquired = hop;
            self.abort(m, t, Outcome::Failed(FaultCause::DeadChannel));
            return;
        }
        if let Some(reopen) = self.stalled_until(rep, t) {
            // Transient stall: the link refuses acquisition until the
            // window closes. Counts as contention blocking; the blocked
            // time is charged when the park ends (reopen or abort), not
            // upfront — see `settle_stall`.
            let port = self.map.is_virtual(rep) || hop == 0;
            if port {
                self.scratch.msgs[m].port_waits += 1;
                self.stats.port_waits += 1;
            } else {
                self.scratch.msgs[m].blocks += 1;
                self.stats.blocks += 1;
            }
            self.scratch.msgs[m].stall = Some((t, port));
            let depth = self.scratch.channels.queue_len(rep);
            self.probe.on_channel_blocked(t, m, rep, hop, depth);
            self.scratch.queue.push(reopen, Event::TryAcquire(m, hop));
            return;
        }
        if let Some(ch) = chosen {
            self.scratch.channels.acquire(ch, m, t);
            if self.map.class_size() > 1 {
                debug_assert_eq!(self.scratch.msgs[m].taken.len(), hop);
                self.scratch.msgs[m].taken.push(ch);
            }
            self.probe.on_channel_granted(t, m, ch, hop);
            self.advance_after_grant(m, hop, ch, t);
        } else {
            // Every live lane is busy: block in place holding acquired
            // channels, queue FIFO on the class representative.
            // A block at hop 0 holds nothing upstream — it is
            // source-side port serialization (Theorem 3's benign
            // case), not network contention.
            self.scratch.msgs[m].wait_since = t;
            self.scratch.msgs[m].waiting_on = Some(rep);
            if self.map.is_virtual(rep) || hop == 0 {
                self.scratch.msgs[m].port_waits += 1;
                self.stats.port_waits += 1;
            } else {
                self.scratch.msgs[m].blocks += 1;
                self.stats.blocks += 1;
            }
            let depth = self.scratch.channels.enqueue(rep, m, hop);
            self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth as u32);
            self.probe.on_channel_blocked(t, m, rep, hop, depth);
        }
    }

    fn on_complete(&mut self, m: usize, t: SimTime) {
        self.probe.on_tail_drained(t, m);
        let held = self.scratch.msgs[m].acquired;
        self.release_channels(m, held, t);
        let delivered = t + self.params.t_recv_sw;
        self.finish(m, delivered, Outcome::Delivered);
        self.stats.makespan = self.stats.makespan.max(delivered);
        let dependents = std::mem::take(&mut self.scratch.msgs[m].dependents);
        for &d in &dependents {
            if self.scratch.msgs[d].outcome.is_some() {
                continue;
            }
            self.scratch.msgs[d].pending_deps -= 1;
            if self.scratch.msgs[d].pending_deps == 0 {
                let at = self.scratch.msgs[d].eligible_at.max(delivered);
                self.scratch.queue.push(at, Event::Eligible(d));
            }
        }
        self.scratch.msgs[m].dependents = dependents;
    }

    pub fn into_result(self) -> RunResult {
        let t_recv = self.params.t_recv_sw;
        let messages = self
            .scratch
            .msgs
            .iter()
            .map(|s| {
                let outcome = s.outcome.expect("every message reached a terminal state");
                let network_done = if outcome.is_delivered() {
                    s.finished_at - t_recv
                } else {
                    s.finished_at
                };
                MessageResult {
                    injected: s.injected,
                    network_done,
                    delivered: s.finished_at,
                    blocked_time: s.blocked_time,
                    blocks: s.blocks,
                    port_waits: s.port_waits,
                    outcome,
                }
            })
            .collect();
        RunResult {
            messages,
            stats: self.stats,
        }
    }
}
