//! The event loop: workload validation, fault wiring, channel
//! acquisition/release, and statistics accounting.
//!
//! The engine is generic over the [`Router`]: every channel it touches
//! is a dense index from the [`ChannelMap`], every coordinate decode
//! goes through the [`Topology`](hcube::Topology) trait, and nothing in
//! here assumes hypercube address arithmetic. The hypercube and the
//! torus run the exact same loop.

use crate::engine::arbitration::Channels;
use crate::engine::events::{Event, EventQueue};
use crate::engine::outcomes::{NetStats, RunResult, SimError};
use crate::engine::watchdog;
use crate::engine::worm::{DepMessage, FaultCause, MessageResult, MsgState, Outcome};
use crate::faults::FaultPlan;
use crate::network::ChannelMap;
use crate::params::SimParams;
use crate::probe::Probe;
use crate::time::SimTime;
use hcube::{NodeId, Router, Topology};

pub(crate) struct Engine<'a, R: Router, P: Probe> {
    map: ChannelMap<R>,
    params: &'a SimParams,
    plan: &'a FaultPlan,
    workload: &'a [DepMessage],
    channels: Channels,
    msgs: Vec<MsgState>,
    /// Per-channel dead flag, indexed like the channel map.
    dead: Vec<bool>,
    queue: EventQueue,
    cpu_free: Vec<SimTime>,
    stats: NetStats,
    finished: usize,
    last_time: SimTime,
    /// The in-loop observer. With `NoopProbe` every call site
    /// monomorphizes away (static dispatch — see the `probe_overhead`
    /// bench).
    probe: &'a mut P,
}

impl<'a, R: Router, P: Probe> Engine<'a, R, P> {
    pub fn new(
        router: R,
        params: &'a SimParams,
        workload: &'a [DepMessage],
        plan: &'a FaultPlan,
        probe: &'a mut P,
    ) -> Result<Engine<'a, R, P>, SimError> {
        let map = ChannelMap::new(router);
        let mut msgs = Vec::with_capacity(workload.len());
        for (i, m) in workload.iter().enumerate() {
            if m.src == m.dst {
                return Err(SimError::SelfSend { index: i });
            }
            let route = map.route(params.port_model, m.src, m.dst);
            msgs.push(MsgState::new(route, m.deps.len(), m.min_start));
        }
        for (i, m) in workload.iter().enumerate() {
            for &d in &m.deps {
                if d >= workload.len() {
                    return Err(SimError::DependencyOutOfRange { index: i, dep: d });
                }
                msgs[d].dependents.push(i);
            }
        }

        let mut channels = Channels::new(map.len());
        let mut dead = vec![false; map.len()];
        let topo = map.topology();
        if !plan.is_empty() {
            for (ch, slot) in dead.iter_mut().enumerate().take(map.externals()) {
                let (v, p) = map.external_coords(ch);
                // A directed channel is unusable when the link itself is
                // dead or either endpoint node is down — decided through
                // the topology's neighbor function, never by address
                // arithmetic.
                *slot = plan.link_dead(v, p)
                    || plan.node_dead(v)
                    || plan.node_dead(topo.neighbor(v, p));
                if plan.channel_stuck(v, p) {
                    channels.stick(ch);
                }
            }
            for i in 0..map.nodes() {
                let v = NodeId(i as u32);
                if plan.node_dead(v) {
                    dead[map.injection(v)] = true;
                    dead[map.consumption(v)] = true;
                }
            }
        }

        // Per-dimension channel counts for utilization statistics.
        let mut dim_channels = vec![0u32; topo.dimensions() as usize];
        for ch in 0..map.externals() {
            dim_channels[map.dim_of(ch) as usize] += 1;
        }
        let stats = NetStats {
            dim_busy: vec![SimTime::ZERO; topo.dimensions() as usize],
            dim_channels,
            ..NetStats::default()
        };

        let cpu_free = vec![SimTime::ZERO; map.nodes()];
        Ok(Engine {
            map,
            params,
            plan,
            workload,
            channels,
            msgs,
            dead,
            queue: EventQueue::new(),
            cpu_free,
            stats,
            finished: 0,
            last_time: SimTime::ZERO,
            probe,
        })
    }

    /// If `ch` is inside a stall window at `t`, when it reopens.
    fn stalled_until(&self, ch: usize, t: SimTime) -> Option<SimTime> {
        if self.plan.is_empty() || self.map.is_virtual(ch) {
            return None;
        }
        let (v, p) = self.map.external_coords(ch);
        self.plan.stalled_until(v, p, t)
    }

    /// Marks `m` finished, records stats, and cascades failure to
    /// dependents that now can never be sent.
    fn finish(&mut self, m: usize, t: SimTime, outcome: Outcome) {
        let mut stack = vec![(m, outcome)];
        while let Some((i, out)) = stack.pop() {
            if self.msgs[i].outcome.is_some() {
                continue;
            }
            self.msgs[i].outcome = Some(out);
            self.msgs[i].finished_at = t;
            self.finished += 1;
            match out {
                Outcome::Delivered => self.probe.on_delivered(t, i, self.msgs[i].injected),
                Outcome::Failed(cause) => {
                    self.stats.failed += 1;
                    self.probe.on_fault(t, i, cause);
                }
                Outcome::TimedOut => {
                    self.stats.timed_out += 1;
                    self.probe.on_timeout(t, i);
                }
            }
            if out != Outcome::Delivered {
                // Dependents of a lost message can never start.
                for d in 0..self.msgs[i].dependents.len() {
                    let dep = self.msgs[i].dependents[d];
                    stack.push((dep, Outcome::Failed(FaultCause::DependencyFailed)));
                }
            }
        }
    }

    /// Releases `msgs[m].route[..count]`, waking the first waiter of each
    /// channel and charging per-dimension busy time.
    fn release_channels(&mut self, m: usize, count: usize, t: SimTime) {
        let route = std::mem::take(&mut self.msgs[m].route);
        for &ch in &route[..count] {
            let (held_since, waiter) = self.channels.release(ch, m);
            self.probe.on_channel_released(t, m, ch, held_since);
            if !self.map.is_virtual(ch) {
                let d = self.map.dim_of(ch) as usize;
                self.stats.dim_busy[d] += t.saturating_sub(held_since);
            }
            if let Some((w, whop)) = waiter {
                self.msgs[w].waiting_on = None;
                let waited = t.saturating_sub(self.msgs[w].wait_since);
                self.msgs[w].blocked_time += waited;
                if self.map.is_virtual(ch) || whop == 0 {
                    self.stats.port_wait_time += waited;
                } else {
                    self.stats.blocked_time += waited;
                }
                self.queue.push(t, Event::TryAcquire(w, whop));
            }
        }
        self.msgs[m].route = route;
        self.msgs[m].acquired = 0;
    }

    /// Aborts an in-flight (or not-yet-started) message: releases held
    /// channels, leaves any wait queue, finishes with `outcome`.
    fn abort(&mut self, m: usize, t: SimTime, outcome: Outcome) {
        let held = self.msgs[m].acquired;
        if held > 0 {
            self.release_channels(m, held, t);
        }
        if let Some(ch) = self.msgs[m].waiting_on.take() {
            self.channels.remove_waiter(ch, m);
        }
        self.finish(m, t, outcome);
    }

    pub fn run(&mut self) -> Result<(), SimError> {
        // Pre-fail messages with dead endpoints (cascades to dependents).
        if !self.plan.is_empty() {
            for i in 0..self.workload.len() {
                let m = &self.workload[i];
                if self.plan.node_dead(m.src) || self.plan.node_dead(m.dst) {
                    self.finish(i, m.min_start, Outcome::Failed(FaultCause::DeadEndpoint));
                }
            }
        }
        for i in 0..self.workload.len() {
            if self.msgs[i].outcome.is_none() {
                if self.workload[i].deps.is_empty() {
                    self.queue
                        .push(self.workload[i].min_start, Event::Eligible(i));
                }
                if let Some(d) = self.plan.deadline(i) {
                    self.queue.push(d, Event::Deadline(i));
                }
            }
        }

        while let Some((t, event)) = self.queue.pop() {
            self.last_time = t;
            let m = match event {
                Event::Eligible(m)
                | Event::TryAcquire(m, _)
                | Event::Complete(m)
                | Event::Deadline(m) => m,
            };
            if self.msgs[m].outcome.is_some() {
                continue; // stale event for an aborted/failed message
            }
            match event {
                Event::Eligible(m) => self.on_eligible(m, t),
                Event::TryAcquire(m, hop) => self.on_try_acquire(m, hop, t),
                Event::Complete(m) => self.on_complete(m, t),
                Event::Deadline(m) => self.abort(m, t, Outcome::TimedOut),
            }
        }

        if self.finished == self.workload.len() {
            return Ok(());
        }
        // Watchdog: the heap drained with unfinished messages.
        let verdict = watchdog::verdict(&self.msgs, &self.channels, self.last_time);
        if let SimError::Deadlock {
            at,
            ref holders,
            ref waiters,
        } = verdict
        {
            self.probe.on_watchdog_alarm(at, holders, waiters);
        }
        Err(verdict)
    }

    fn on_eligible(&mut self, m: usize, t: SimTime) {
        self.probe.on_eligible(t, m);
        let src = self.workload[m].src.0 as usize;
        let start = if self.params.cpu_serialized_startup {
            let s = t.max(self.cpu_free[src]);
            self.cpu_free[src] = s + self.params.t_send_sw;
            s
        } else {
            t
        };
        let inject = start + self.params.t_send_sw;
        self.msgs[m].injected = inject;
        self.probe.on_injected(inject, m, self.msgs[m].route.len());
        self.queue.push(inject, Event::TryAcquire(m, 0));
    }

    fn on_try_acquire(&mut self, m: usize, hop: usize, t: SimTime) {
        let ch = self.msgs[m].route[hop];
        self.probe.on_channel_requested(t, m, ch, hop);
        if self.dead[ch] {
            // The header hit a dead channel: abort-and-discard.
            self.msgs[m].acquired = hop;
            self.abort(m, t, Outcome::Failed(FaultCause::DeadChannel));
            return;
        }
        if let Some(reopen) = self.stalled_until(ch, t) {
            // Transient stall: the channel refuses acquisition until the
            // window closes. Counts as contention blocking.
            let waited = reopen - t;
            self.msgs[m].blocked_time += waited;
            if self.map.is_virtual(ch) || hop == 0 {
                self.msgs[m].port_waits += 1;
                self.stats.port_waits += 1;
                self.stats.port_wait_time += waited;
            } else {
                self.msgs[m].blocks += 1;
                self.stats.blocks += 1;
                self.stats.blocked_time += waited;
            }
            self.probe.on_channel_blocked(t, m, ch, hop, 0);
            self.queue.push(reopen, Event::TryAcquire(m, hop));
            return;
        }
        if self.channels.is_free(ch) {
            self.channels.acquire(ch, m, t);
            self.probe.on_channel_granted(t, m, ch, hop);
            self.msgs[m].acquired = hop + 1;
            let hop_cost = if self.map.is_virtual(ch) {
                SimTime::ZERO
            } else {
                self.params.t_hop
            };
            let arrive = t + hop_cost;
            if hop + 1 < self.msgs[m].route.len() {
                self.probe.on_header_advanced(arrive, m, hop + 1);
                self.queue.push(arrive, Event::TryAcquire(m, hop + 1));
            } else {
                let drain = arrive + self.params.t_byte * u64::from(self.workload[m].bytes);
                self.queue.push(drain, Event::Complete(m));
            }
        } else {
            // Block in place: keep held channels, queue FIFO.
            // A block at hop 0 holds nothing upstream — it is
            // source-side port serialization (Theorem 3's benign
            // case), not network contention.
            self.msgs[m].wait_since = t;
            self.msgs[m].waiting_on = Some(ch);
            if self.map.is_virtual(ch) || hop == 0 {
                self.msgs[m].port_waits += 1;
                self.stats.port_waits += 1;
            } else {
                self.msgs[m].blocks += 1;
                self.stats.blocks += 1;
            }
            let depth = self.channels.enqueue(ch, m, hop);
            self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth as u32);
            self.probe.on_channel_blocked(t, m, ch, hop, depth);
        }
    }

    fn on_complete(&mut self, m: usize, t: SimTime) {
        self.probe.on_tail_drained(t, m);
        let held = self.msgs[m].acquired;
        self.release_channels(m, held, t);
        let delivered = t + self.params.t_recv_sw;
        self.finish(m, delivered, Outcome::Delivered);
        self.stats.makespan = self.stats.makespan.max(delivered);
        let dependents = std::mem::take(&mut self.msgs[m].dependents);
        for &d in &dependents {
            if self.msgs[d].outcome.is_some() {
                continue;
            }
            self.msgs[d].pending_deps -= 1;
            if self.msgs[d].pending_deps == 0 {
                let at = self.msgs[d].eligible_at.max(delivered);
                self.queue.push(at, Event::Eligible(d));
            }
        }
        self.msgs[m].dependents = dependents;
    }

    pub fn into_result(self) -> RunResult {
        let t_recv = self.params.t_recv_sw;
        let messages = self
            .msgs
            .iter()
            .map(|s| {
                let outcome = s.outcome.expect("every message reached a terminal state");
                let network_done = if outcome.is_delivered() {
                    s.finished_at - t_recv
                } else {
                    s.finished_at
                };
                MessageResult {
                    injected: s.injected,
                    network_done,
                    delivered: s.finished_at,
                    blocked_time: s.blocked_time,
                    blocks: s.blocks,
                    port_waits: s.port_waits,
                    outcome,
                }
            })
            .collect();
        RunResult {
            messages,
            stats: self.stats,
        }
    }
}
