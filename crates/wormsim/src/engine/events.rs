//! The event vocabulary and the deterministic event queue.
//!
//! Determinism contract: events are ordered by `(time, insertion
//! sequence)` — ties at the same simulated time are broken by insertion
//! order, never by message index or heap internals. Every run of the
//! same workload therefore pops events in exactly the same order, which
//! is what makes whole [`RunResult`](crate::engine::RunResult)s
//! byte-for-byte reproducible.

use crate::engine::outcomes::SimError;
use crate::time::SimTime;

/// One scheduled state transition of the event loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Event {
    /// All dependencies of the message are delivered; start send
    /// processing.
    Eligible(usize),
    /// The message attempts to acquire channel `hop` of its route.
    TryAcquire(usize, usize),
    /// The message's tail has drained; release channels and deliver.
    Complete(usize),
    /// The message's deadline passes; abort it if undelivered.
    Deadline(usize),
    /// The plan-wide observation window closes: every message without a
    /// per-message deadline override that is still undelivered aborts,
    /// in workload order. Scheduled once per run (before any other
    /// event, so at its time it outranks every same-time event — the
    /// window is the half-open interval `[0, close)`), replacing one
    /// `Deadline` event per message on the open-loop hot path.
    WindowClose,
}

/// Width of the message-index field in the packed heap payload.
const MSG_BITS: usize = 28;
const MSG_MASK: usize = (1 << MSG_BITS) - 1;

/// Largest workload the event encoding can address (message indices
/// occupy [`MSG_BITS`] bits of the packed payload).
pub(crate) const MAX_MESSAGES: usize = MSG_MASK + 1;

/// Typed guard for the event-encoding capacity: a workload larger than
/// [`MAX_MESSAGES`] would silently corrupt the packed payload in
/// release builds (the `debug_assert!` in [`EventQueue::push`] only
/// fires in debug builds), so `Engine::new` rejects it up front.
///
/// # Errors
/// [`SimError::WorkloadTooLarge`] when `len > MAX_MESSAGES`.
pub(crate) fn check_workload_size(len: usize) -> Result<(), SimError> {
    if len > MAX_MESSAGES {
        return Err(SimError::WorkloadTooLarge {
            messages: len,
            max: MAX_MESSAGES,
        });
    }
    Ok(())
}

/// Heap arity: four children per node halves the tree height of a
/// binary heap, and the hot sift-down loop scans sibling entries that
/// sit in two adjacent cache lines.
const ARITY: usize = 4;

/// A min-heap of events keyed by `(time, sequence number)`.
///
/// First-party 4-ary array heap (the std `BinaryHeap` pop dominated the
/// engine profile — its full-height sift-down over 32-byte tuples was
/// ~40% of a windowed run). The ordering key packs `(time << 64) | seq`
/// into one `u128`, so every heap comparison is a single branchless
/// wide compare instead of a two-field lexicographic branch chain. The
/// payload word packs `(hop << 32) | (kind << MSG_BITS) | message` but
/// never participates in ordering — and since every entry's key is
/// unique (the sequence number is monotone), *any* correct min-heap
/// pops the exact same order: the heap layout can change without
/// disturbing byte-identical results.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    /// `(key, payload)` entries in 4-ary heap order, where
    /// `key = (time << 64) | seq`.
    heap: Vec<(u128, u64)>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue. (The engine itself resets a default queue held
    /// in its scratch.)
    #[cfg(test)]
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Empties the queue and rewinds the sequence counter, keeping the
    /// heap's allocation. A reset queue is indistinguishable from a
    /// fresh one — including the insertion-order tie-breaking, which is
    /// what makes scratch-reused runs byte-identical to fresh ones.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    /// Schedules `e` at time `t`.
    pub fn push(&mut self, t: SimTime, e: Event) {
        let (kind, m, hop) = match e {
            Event::Eligible(m) => (0u64, m, 0usize),
            Event::TryAcquire(m, h) => (1, m, h),
            Event::Complete(m) => (2, m, 0),
            Event::Deadline(m) => (3, m, 0),
            Event::WindowClose => (4, 0, 0),
        };
        debug_assert!(m <= MSG_MASK, "workload too large for event encoding");
        let payload = ((hop as u64) << 32) | (kind << MSG_BITS) | m as u64;
        let entry = (
            (u128::from(t.as_ns()) << 64) | u128::from(self.seq),
            payload,
        );
        self.seq += 1;
        // Sift up with a hole: move parents down until `entry` fits.
        let mut hole = self.heap.len();
        self.heap.push(entry);
        while hole > 0 {
            let parent = (hole - 1) / ARITY;
            if self.heap[parent].0 <= entry.0 {
                break;
            }
            self.heap[hole] = self.heap[parent];
            hole = parent;
        }
        self.heap[hole] = entry;
    }

    /// Pops the earliest event (FIFO among same-time events).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let (key, payload) = self.heap.first().copied()?;
        let t = SimTime::from_ns((key >> 64) as u64);
        // Move the last entry into the root hole and sift it down.
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            let mut hole = 0;
            loop {
                let first_child = hole * ARITY + 1;
                if first_child >= self.heap.len() {
                    break;
                }
                let end = (first_child + ARITY).min(self.heap.len());
                let mut min = first_child;
                for c in first_child + 1..end {
                    if self.heap[c].0 < self.heap[min].0 {
                        min = c;
                    }
                }
                if last.0 <= self.heap[min].0 {
                    break;
                }
                self.heap[hole] = self.heap[min];
                hole = min;
            }
            self.heap[hole] = last;
        }
        let m = (payload as usize) & MSG_MASK;
        let hop = (payload >> 32) as usize;
        let e = match (payload >> MSG_BITS) & 0xf {
            0 => Event::Eligible(m),
            1 => Event::TryAcquire(m, hop),
            2 => Event::Complete(m),
            3 => Event::Deadline(m),
            4 => Event::WindowClose,
            _ => unreachable!("corrupt event encoding"),
        };
        Some((t, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(5), Event::Complete(1));
        q.push(SimTime::from_ns(1), Event::Eligible(2));
        q.push(SimTime::from_ns(5), Event::TryAcquire(3, 7));
        q.push(SimTime::from_ns(5), Event::Deadline(0));
        let order: Vec<(SimTime, Event)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (SimTime::from_ns(1), Event::Eligible(2)),
                (SimTime::from_ns(5), Event::Complete(1)),
                (SimTime::from_ns(5), Event::TryAcquire(3, 7)),
                (SimTime::from_ns(5), Event::Deadline(0)),
            ]
        );
    }

    #[test]
    fn round_trips_every_event_kind() {
        let mut q = EventQueue::new();
        let events = [
            Event::Eligible(11),
            Event::TryAcquire(12, 3),
            Event::Complete(13),
            Event::Deadline(14),
            Event::WindowClose,
        ];
        for (i, e) in events.iter().enumerate() {
            q.push(SimTime::from_ns(i as u64), *e);
        }
        for e in events {
            assert_eq!(q.pop().unwrap().1, e);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn reset_rewinds_the_sequence_counter() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(1), Event::Eligible(0));
        q.push(SimTime::from_ns(1), Event::Complete(1));
        q.reset();
        assert!(q.pop().is_none());
        // After reset, same-time tie-breaking replays identically to a
        // fresh queue: insertion order wins again from sequence zero.
        q.push(SimTime::from_ns(5), Event::Deadline(3));
        q.push(SimTime::from_ns(5), Event::Eligible(2));
        assert_eq!(q.pop().unwrap().1, Event::Deadline(3));
        assert_eq!(q.pop().unwrap().1, Event::Eligible(2));
    }

    #[test]
    fn oversized_workloads_are_rejected_with_a_typed_error() {
        assert!(check_workload_size(0).is_ok());
        assert!(check_workload_size(MAX_MESSAGES).is_ok());
        match check_workload_size(MAX_MESSAGES + 1) {
            Err(SimError::WorkloadTooLarge { messages, max }) => {
                assert_eq!(messages, MAX_MESSAGES + 1);
                assert_eq!(max, 1 << 28);
            }
            other => panic!("expected WorkloadTooLarge, got {other:?}"),
        }
    }
}
