//! The event vocabulary and the deterministic event queue.
//!
//! Determinism contract: events are ordered by `(time, insertion
//! sequence)` — ties at the same simulated time are broken by insertion
//! order, never by message index or heap internals. Every run of the
//! same workload therefore pops events in exactly the same order, which
//! is what makes whole [`RunResult`](crate::engine::RunResult)s
//! byte-for-byte reproducible.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled state transition of the event loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Event {
    /// All dependencies of the message are delivered; start send
    /// processing.
    Eligible(usize),
    /// The message attempts to acquire channel `hop` of its route.
    TryAcquire(usize, usize),
    /// The message's tail has drained; release channels and deliver.
    Complete(usize),
    /// The message's deadline passes; abort it if undelivered.
    Deadline(usize),
}

/// Width of the message-index field in the packed heap payload.
const MSG_BITS: usize = 28;
const MSG_MASK: usize = (1 << MSG_BITS) - 1;

/// A min-heap of events keyed by `(time, sequence number)`.
///
/// The payload is packed as `(kind << MSG_BITS) | message` plus a hop
/// operand, but the packing never participates in ordering — only the
/// time and the monotone sequence number do.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize, usize)>>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `e` at time `t`.
    pub fn push(&mut self, t: SimTime, e: Event) {
        let (kind, m, hop) = match e {
            Event::Eligible(m) => (0usize, m, 0usize),
            Event::TryAcquire(m, h) => (1, m, h),
            Event::Complete(m) => (2, m, 0),
            Event::Deadline(m) => (3, m, 0),
        };
        debug_assert!(m <= MSG_MASK, "workload too large for event encoding");
        self.heap
            .push(Reverse((t, self.seq, (kind << MSG_BITS) | m, hop)));
        self.seq += 1;
    }

    /// Pops the earliest event (FIFO among same-time events).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let Reverse((t, _, code, hop)) = self.heap.pop()?;
        let m = code & MSG_MASK;
        let e = match code >> MSG_BITS {
            0 => Event::Eligible(m),
            1 => Event::TryAcquire(m, hop),
            2 => Event::Complete(m),
            3 => Event::Deadline(m),
            _ => unreachable!("corrupt event encoding"),
        };
        Some((t, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(5), Event::Complete(1));
        q.push(SimTime::from_ns(1), Event::Eligible(2));
        q.push(SimTime::from_ns(5), Event::TryAcquire(3, 7));
        q.push(SimTime::from_ns(5), Event::Deadline(0));
        let order: Vec<(SimTime, Event)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (SimTime::from_ns(1), Event::Eligible(2)),
                (SimTime::from_ns(5), Event::Complete(1)),
                (SimTime::from_ns(5), Event::TryAcquire(3, 7)),
                (SimTime::from_ns(5), Event::Deadline(0)),
            ]
        );
    }

    #[test]
    fn round_trips_every_event_kind() {
        let mut q = EventQueue::new();
        let events = [
            Event::Eligible(11),
            Event::TryAcquire(12, 3),
            Event::Complete(13),
            Event::Deadline(14),
        ];
        for (i, e) in events.iter().enumerate() {
            q.push(SimTime::from_ns(i as u64), *e);
        }
        for e in events {
            assert_eq!(q.pop().unwrap().1, e);
        }
        assert!(q.pop().is_none());
    }
}
