//! The post-drain watchdog: classifies why a run ended with unfinished
//! messages.
//!
//! When the event heap drains while messages remain unfinished, exactly
//! one of two things happened:
//!
//! * no unfinished message is waiting on a channel — then the dependency
//!   graph itself is unsatisfiable (a cycle, or dependence on a message
//!   that can never be sent): [`SimError::DependencyCycle`];
//! * some messages are parked in channel FIFOs that will never pop —
//!   a genuine wormhole deadlock (stuck channels or a cyclic wait):
//!   [`SimError::Deadlock`], reported with the holder and waiter sets so
//!   the caller can see the wait-for structure.
//!
//! The verdict is purely an inspection of terminal state; it is the same
//! for every topology backend because it never decodes channel indices.

use crate::engine::arbitration::{Channels, PHANTOM};
use crate::engine::outcomes::SimError;
use crate::engine::worm::MsgState;
use crate::time::SimTime;

/// Classifies a drained-but-unfinished run. `at` is the time of the last
/// processed event.
pub(crate) fn verdict(msgs: &[MsgState], channels: &Channels, at: SimTime) -> SimError {
    let waiters: Vec<usize> = (0..msgs.len())
        .filter(|&i| msgs[i].outcome.is_none() && msgs[i].waiting_on.is_some())
        .collect();
    if waiters.is_empty() {
        let stuck: Vec<usize> = (0..msgs.len())
            .filter(|&i| msgs[i].outcome.is_none())
            .collect();
        return SimError::DependencyCycle { stuck };
    }
    let mut holders: Vec<usize> = channels
        .iter()
        .filter(|c| !c.queue.is_empty())
        .filter_map(|c| c.holder)
        .filter(|&h| h != PHANTOM)
        .collect();
    holders.sort_unstable();
    holders.dedup();
    SimError::Deadlock {
        at,
        holders,
        waiters,
    }
}
