//! The discrete-event wormhole simulation engine.
//!
//! The engine executes a *dependency workload*: a set of messages, each
//! of which becomes eligible once a set of earlier messages has been
//! delivered (multicast trees, reductions, or arbitrary traffic). Each
//! message is simulated at channel granularity:
//!
//! 1. After its dependencies deliver, the sending processor spends
//!    `t_send_sw` (serialized per node when `cpu_serialized_startup`).
//! 2. The worm's header then acquires the channels of its route in order,
//!    paying `t_hop` per external channel; if a channel is busy the worm
//!    *blocks in place*, holding everything acquired so far — wormhole
//!    semantics — and queues FIFO on the busy channel.
//! 3. After the last acquisition the payload drains in `bytes · t_byte`;
//!    all held channels release at drain completion (tail-pass
//!    approximation, see DESIGN.md) and delivery completes `t_recv_sw`
//!    later.
//!
//! ## Layering
//!
//! The engine is split into focused submodules (DESIGN.md §9):
//! [`events`](self) — the deterministic event queue; `worm` — message
//! state machines; `arbitration` — per-channel holder/FIFO state;
//! `watchdog` — the post-drain deadlock classifier; `outcomes` — the
//! public result and error types; `core` — the event loop itself. The
//! loop is **generic over the router**: [`simulate_on`] runs any
//! [`Router`] backend (hypercube E-cube, torus dimension-ordered with
//! dateline virtual channels, …), while [`simulate`] keeps the classic
//! cube-shaped entry point.
//!
//! ## Faults and the watchdog
//!
//! [`simulate_with_faults`] threads a [`FaultPlan`] through the run:
//! dead channels abort worms ([`Outcome::Failed`]), stall windows delay
//! acquisition, deadlines abort undelivered messages
//! ([`Outcome::TimedOut`]), and stuck channels wedge their waiters
//! forever. When the event heap drains with unfinished messages the
//! engine's *watchdog* examines the channel wait-for state and reports
//! [`SimError::Deadlock`] with the holder and waiter sets — the typed
//! replacement for silently dropping messages or spinning.
//!
//! The engine is fully deterministic: integer time, FIFO queues, and a
//! sequence-numbered event heap.

pub(crate) mod arbitration;
mod core;
pub(crate) mod events;
mod outcomes;
mod watchdog;
pub(crate) mod worm;

#[cfg(test)]
mod tests;

pub use outcomes::{NetStats, RunResult, SimError};
pub use worm::{DepMessage, FaultCause, MessageResult, Outcome};

use crate::faults::FaultPlan;
use crate::params::SimParams;
use crate::probe::{NoopProbe, Probe};
use crate::scratch::EngineScratch;
use crate::time::SimTime;
use hcube::{Cube, Ecube, Resolution, Router};

/// Runs a dependency workload on any routed topology with a fault
/// plan, an in-loop [`Probe`] observer, and a caller-owned
/// [`EngineScratch`] — the fully general core every other entry point
/// delegates to.
///
/// The scratch is *reset*, never reallocated: reusing one scratch
/// across runs keeps the event heap, message table, channel table, and
/// memoized routes warm (see [`crate::scratch`]). Results are
/// byte-identical to the fresh-allocation path. Even on an `Err`
/// return the scratch stays safe to reuse — the channel table marks
/// itself dirty and sweeps on the next reset.
///
/// The probe is statically dispatched: passing [`NoopProbe`]
/// monomorphizes every observation point away, so the uninstrumented
/// entry points cost nothing for the instrumentation they don't use.
/// The probe is borrowed (not consumed) so its recording survives even
/// an `Err` return — a deadlocked run still leaves its
/// [`EventRecorder`](crate::probe::EventRecorder) full of blocked
/// events and the watchdog alarm.
///
/// # Errors
/// [`SimError::SelfSend`] / [`SimError::DependencyOutOfRange`] /
/// [`SimError::WorkloadTooLarge`] / [`SimError::DependencyCycle`] for
/// malformed workloads, and [`SimError::Deadlock`] when blocked worms
/// can never progress.
pub fn simulate_observed_with_faults_on_with_scratch<R: Router, P: Probe>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    plan: &FaultPlan,
    probe: &mut P,
    scratch: &mut EngineScratch,
) -> Result<RunResult, SimError> {
    let mut engine = core::Engine::new(router, params, workload, plan, probe, scratch)?;
    engine.run()?;
    Ok(engine.into_result())
}

/// Runs a dependency workload on any routed topology with a fault plan
/// and an in-loop [`Probe`] observer, allocating a fresh scratch
/// (see [`simulate_observed_with_faults_on_with_scratch`] to reuse one).
///
/// # Errors
/// [`SimError::SelfSend`] / [`SimError::DependencyOutOfRange`] /
/// [`SimError::DependencyCycle`] for malformed workloads, and
/// [`SimError::Deadlock`] when blocked worms can never progress.
pub fn simulate_observed_with_faults_on<R: Router, P: Probe>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    plan: &FaultPlan,
    probe: &mut P,
) -> Result<RunResult, SimError> {
    let mut scratch = EngineScratch::new();
    simulate_observed_with_faults_on_with_scratch(
        router,
        params,
        workload,
        plan,
        probe,
        &mut scratch,
    )
}

/// Fault-free [`simulate_observed_with_faults_on`]: any router, any
/// probe, typed errors.
///
/// # Errors
/// See [`simulate_observed_with_faults_on`]; without faults only the
/// malformed workload variants can occur.
pub fn try_simulate_observed_on<R: Router, P: Probe>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    probe: &mut P,
) -> Result<RunResult, SimError> {
    simulate_observed_with_faults_on(router, params, workload, &FaultPlan::none(), probe)
}

/// Runs a fault-free dependency workload on any routed topology with an
/// in-loop [`Probe`] observer, panicking on malformed workloads.
///
/// ```
/// use hcube::{Cube, Ecube, NodeId, Resolution};
/// use hypercast::PortModel;
/// use wormsim::{simulate_observed_on, DepMessage, EventRecorder, SimParams, SimTime};
///
/// let router = Ecube::new(Cube::of(4), Resolution::HighToLow);
/// let mut rec = EventRecorder::new();
/// let run = simulate_observed_on(
///     router,
///     &SimParams::ncube2(PortModel::AllPort),
///     &[DepMessage { src: NodeId(0), dst: NodeId(0b0111), bytes: 1024,
///                    deps: vec![], min_start: SimTime::ZERO }],
///     &mut rec,
/// );
/// // Exact per-channel holds: one occupancy interval per hop.
/// assert_eq!(rec.occupancies().len(), 3);
/// assert_eq!(rec.latencies().len(), run.delivered_count());
/// ```
///
/// # Panics
/// Panics on malformed workloads: self-sends, out-of-range dependency
/// indices, or dependency cycles.
#[must_use]
pub fn simulate_observed_on<R: Router, P: Probe>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    probe: &mut P,
) -> RunResult {
    match try_simulate_observed_on(router, params, workload, probe) {
        Ok(run) => run,
        Err(e) => panic!("{e}"),
    }
}

/// Observed hypercube run (the classic cube-shaped entry point with a
/// probe attached; delegates to [`simulate_observed_on`] with an E-cube
/// router).
///
/// # Panics
/// Panics on malformed workloads: self-sends, out-of-range dependency
/// indices, or dependency cycles.
#[must_use]
pub fn simulate_observed<P: Probe>(
    cube: Cube,
    resolution: Resolution,
    params: &SimParams,
    workload: &[DepMessage],
    probe: &mut P,
) -> RunResult {
    simulate_observed_on(Ecube::new(cube, resolution), params, workload, probe)
}

/// Runs a dependency workload on any routed topology with a fault plan
/// injected — the topology-generic core every cube-shaped entry point
/// delegates to (unobserved: a [`NoopProbe`] monomorphizes the
/// instrumentation away).
///
/// # Errors
/// [`SimError::SelfSend`] / [`SimError::DependencyOutOfRange`] /
/// [`SimError::DependencyCycle`] for malformed workloads, and
/// [`SimError::Deadlock`] when blocked worms can never progress.
pub fn simulate_with_faults_on<R: Router>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    plan: &FaultPlan,
) -> Result<RunResult, SimError> {
    simulate_observed_with_faults_on(router, params, workload, plan, &mut NoopProbe)
}

/// Fault-free [`simulate_with_faults_on`]: same typed errors, no plan.
///
/// # Errors
/// See [`simulate_with_faults_on`]; without faults only the malformed
/// workload variants can occur.
pub fn try_simulate_on<R: Router>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
) -> Result<RunResult, SimError> {
    simulate_with_faults_on(router, params, workload, &FaultPlan::none())
}

/// Runs a dependency workload on any routed topology, panicking on
/// malformed workloads (see [`try_simulate_on`] for the `Result` form).
///
/// ```
/// use hcube::{NodeId, Torus, TorusRouter};
/// use hypercast::PortModel;
/// use wormsim::{simulate_on, DepMessage, SimParams, SimTime};
///
/// let torus = Torus::of(4, 2);
/// let run = simulate_on(
///     TorusRouter::new(torus),
///     &SimParams::ncube2(PortModel::AllPort),
///     &[DepMessage { src: torus.node_at(&[0, 0]), dst: torus.node_at(&[2, 3]),
///                    bytes: 1024, deps: vec![], min_start: SimTime::ZERO }],
/// );
/// assert!(run.messages[0].outcome.is_delivered());
/// ```
///
/// # Panics
/// Panics on malformed workloads: self-sends, out-of-range dependency
/// indices, or dependency cycles.
#[must_use]
pub fn simulate_on<R: Router>(router: R, params: &SimParams, workload: &[DepMessage]) -> RunResult {
    match try_simulate_on(router, params, workload) {
        Ok(run) => run,
        Err(e) => panic!("{e}"),
    }
}

/// Scratch-reusing [`simulate_with_faults_on`]: same semantics, but the
/// engine's arenas come from (and return to) `scratch` instead of the
/// allocator. Byte-identical to the fresh-allocation path.
///
/// # Errors
/// See [`simulate_with_faults_on`].
pub fn simulate_with_faults_on_with_scratch<R: Router>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    plan: &FaultPlan,
    scratch: &mut EngineScratch,
) -> Result<RunResult, SimError> {
    simulate_observed_with_faults_on_with_scratch(
        router,
        params,
        workload,
        plan,
        &mut NoopProbe,
        scratch,
    )
}

/// Scratch-reusing [`try_simulate_on`]: fault-free, typed errors,
/// reused arenas.
///
/// # Errors
/// See [`try_simulate_on`].
pub fn try_simulate_on_with_scratch<R: Router>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    scratch: &mut EngineScratch,
) -> Result<RunResult, SimError> {
    simulate_with_faults_on_with_scratch(router, params, workload, &FaultPlan::none(), scratch)
}

/// Scratch-reusing [`simulate_on`]: the hot-path entry point for
/// recurring sessions — reset instead of reallocate, memoized routes,
/// byte-identical results.
///
/// # Panics
/// Panics on malformed workloads: self-sends, out-of-range dependency
/// indices, or dependency cycles.
#[must_use]
pub fn simulate_on_with_scratch<R: Router>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    scratch: &mut EngineScratch,
) -> RunResult {
    match try_simulate_on_with_scratch(router, params, workload, scratch) {
        Ok(run) => run,
        Err(e) => panic!("{e}"),
    }
}

/// Runs a dependency workload inside a **bounded observation window**:
/// messages still undelivered when `horizon` expires are aborted with
/// [`Outcome::TimedOut`] instead of extending the run.
///
/// This is the entry point of the open-loop `traffic` engine: a
/// saturated network (arrival rate above the service rate) would
/// otherwise let the backlog — and the simulated run — grow without
/// bound. The window is implemented as a [`FaultPlan`] whose only fault
/// is a global deadline, so windowed runs share every code path with
/// the unbounded ones; below saturation, a window larger than the
/// natural makespan changes nothing (the run is bit-identical to
/// [`simulate_on`]).
///
/// `min_start` staggering is fully respected: a message whose
/// `min_start` lies beyond the horizon simply times out at the horizon.
///
/// ```
/// use hcube::{Cube, Ecube, NodeId, Resolution};
/// use hypercast::PortModel;
/// use wormsim::{simulate_window_on, DepMessage, Outcome, SimParams, SimTime};
///
/// let router = Ecube::new(Cube::of(3), Resolution::HighToLow);
/// let params = SimParams::ncube2(PortModel::AllPort);
/// let workload = [
///     DepMessage { src: NodeId(0), dst: NodeId(1), bytes: 64,
///                  deps: vec![], min_start: SimTime::ZERO },
///     // Arrives after the window closes: times out, never runs.
///     DepMessage { src: NodeId(0), dst: NodeId(2), bytes: 64,
///                  deps: vec![], min_start: SimTime::from_us(900) },
/// ];
/// let run = simulate_window_on(router, &params, &workload,
///                              SimTime::from_us(800)).unwrap();
/// assert!(run.messages[0].outcome.is_delivered());
/// assert_eq!(run.messages[1].outcome, Outcome::TimedOut);
/// ```
///
/// # Errors
/// The malformed-workload errors of [`try_simulate_on`]. Deadlocks
/// cannot wedge the run — the horizon deadline rescues every waiter —
/// but a malformed dependency graph is still rejected up front.
pub fn simulate_window_on<R: Router>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    horizon: SimTime,
) -> Result<RunResult, SimError> {
    simulate_window_observed_on(router, params, workload, horizon, &mut NoopProbe)
}

/// Scratch-reusing [`simulate_window_on`]: the open-loop traffic
/// engine's hot path. Each worker replays its sessions into one
/// [`EngineScratch`], so sustained-load sweeps stop paying a fresh
/// `Engine` allocation per session.
///
/// # Errors
/// See [`simulate_window_on`].
pub fn simulate_window_on_with_scratch<R: Router>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    horizon: SimTime,
    scratch: &mut EngineScratch,
) -> Result<RunResult, SimError> {
    let mut plan = FaultPlan::none();
    plan.deadline_all(horizon);
    simulate_with_faults_on_with_scratch(router, params, workload, &plan, scratch)
}

/// [`simulate_window_on`] with an in-loop [`Probe`] observer attached:
/// the open-loop traffic engine uses this to feed the Metrics/Perfetto
/// layer during sustained-load runs.
///
/// # Errors
/// See [`simulate_window_on`].
pub fn simulate_window_observed_on<R: Router, P: Probe>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    horizon: SimTime,
    probe: &mut P,
) -> Result<RunResult, SimError> {
    let mut plan = FaultPlan::none();
    plan.deadline_all(horizon);
    simulate_observed_with_faults_on(router, params, workload, &plan, probe)
}

/// Scratch-reusing [`simulate_window_observed_on`]: windowed execution,
/// an in-loop [`Probe`] observer, and a caller-owned
/// [`EngineScratch`] — the telemetry layer's hot path, where sustained
/// traffic runs are observed without paying a fresh arena per run.
///
/// # Errors
/// See [`simulate_window_on`].
pub fn simulate_window_observed_on_with_scratch<R: Router, P: Probe>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    horizon: SimTime,
    probe: &mut P,
    scratch: &mut EngineScratch,
) -> Result<RunResult, SimError> {
    let mut plan = FaultPlan::none();
    plan.deadline_all(horizon);
    simulate_observed_with_faults_on_with_scratch(router, params, workload, &plan, probe, scratch)
}

/// Runs a dependency workload through the wormhole network model with a
/// fault plan injected.
///
/// Per-message outcomes land in [`MessageResult::outcome`]; lost
/// messages have [`Outcome::Failed`] or [`Outcome::TimedOut`] and their
/// `delivered` field records the abort time. A wedged network (stuck
/// channels with no deadline to rescue the waiters) is a typed
/// [`SimError::Deadlock`] from the watchdog, not a hang.
///
/// # Errors
/// [`SimError::SelfSend`] / [`SimError::DependencyOutOfRange`] /
/// [`SimError::DependencyCycle`] for malformed workloads, and
/// [`SimError::Deadlock`] when blocked worms can never progress.
pub fn simulate_with_faults(
    cube: Cube,
    resolution: Resolution,
    params: &SimParams,
    workload: &[DepMessage],
    plan: &FaultPlan,
) -> Result<RunResult, SimError> {
    simulate_with_faults_on(Ecube::new(cube, resolution), params, workload, plan)
}

/// Fault-free [`simulate_with_faults`]: same typed errors, no plan.
///
/// # Errors
/// See [`simulate_with_faults`]; without faults only the malformed
/// workload variants can occur.
pub fn try_simulate(
    cube: Cube,
    resolution: Resolution,
    params: &SimParams,
    workload: &[DepMessage],
) -> Result<RunResult, SimError> {
    simulate_with_faults(cube, resolution, params, workload, &FaultPlan::none())
}

/// Runs a dependency workload through the wormhole network model.
///
/// ```
/// use hcube::{Cube, NodeId, Resolution};
/// use hypercast::PortModel;
/// use wormsim::{simulate, DepMessage, SimParams, SimTime};
///
/// // A two-stage forward: 0 → 4, then 4 → 6 after delivery.
/// let workload = vec![
///     DepMessage { src: NodeId(0), dst: NodeId(4), bytes: 1024,
///                  deps: vec![], min_start: SimTime::ZERO },
///     DepMessage { src: NodeId(4), dst: NodeId(6), bytes: 1024,
///                  deps: vec![0], min_start: SimTime::ZERO },
/// ];
/// let params = SimParams::ncube2(PortModel::AllPort);
/// let run = simulate(Cube::of(3), Resolution::HighToLow, &params, &workload);
/// assert!(run.messages[1].injected >= run.messages[0].delivered);
/// assert_eq!(run.stats.blocks, 0);
/// ```
///
/// # Panics
/// Panics on malformed workloads: self-sends, out-of-range dependency
/// indices, or dependency cycles (messages that never become eligible).
/// Use [`try_simulate`] for a `Result` instead.
#[must_use]
pub fn simulate(
    cube: Cube,
    resolution: Resolution,
    params: &SimParams,
    workload: &[DepMessage],
) -> RunResult {
    match try_simulate(cube, resolution, params, workload) {
        Ok(run) => run,
        Err(e) => panic!("{e}"),
    }
}
