//! Engine behavior tests: latency model, contention classification,
//! determinism, fault injection, watchdog verdicts, and the
//! topology-generic entry points.

use super::*;
use crate::time::SimTime;
use hcube::{Dim, NodeId, Torus, TorusRouter};
use hypercast::PortModel;

fn msg(src: u32, dst: u32, bytes: u32, deps: Vec<usize>) -> DepMessage {
    DepMessage {
        src: NodeId(src),
        dst: NodeId(dst),
        bytes,
        deps,
        min_start: SimTime::ZERO,
    }
}

fn run(n: u8, params: &SimParams, workload: &[DepMessage]) -> RunResult {
    simulate(Cube::of(n), Resolution::HighToLow, params, workload)
}

#[test]
fn single_unicast_matches_latency_formula() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let r = run(4, &p, &[msg(0b0101, 0b1110, 4096, vec![])]);
    assert_eq!(r.messages[0].delivered, p.unicast_latency(3, 4096));
    assert_eq!(r.messages[0].blocks, 0);
    assert_eq!(r.messages[0].outcome, Outcome::Delivered);
    assert_eq!(r.delivery_ratio(), 1.0);
}

#[test]
fn latency_is_nearly_distance_insensitive() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let near = run(6, &p, &[msg(0, 1, 4096, vec![])]).messages[0].delivered;
    let far = run(6, &p, &[msg(0, 0b111111, 4096, vec![])]).messages[0].delivered;
    assert_eq!(far - near, p.t_hop * 5);
    // The 5-hop difference is under 1% of the total latency.
    assert!((far - near).as_ns() * 100 < near.as_ns());
}

#[test]
fn same_source_shared_channel_is_a_port_wait() {
    // Both messages need channel 0→0b100 as their *first* hop: this
    // is Theorem 3's benign case — source-side serialization.
    let p = SimParams::ncube2(PortModel::AllPort);
    let r = run(
        3,
        &p,
        &[msg(0, 0b100, 4096, vec![]), msg(0, 0b101, 4096, vec![])],
    );
    let a = r.messages[0];
    let b = r.messages[1];
    // Second message still trails the first by the drain time…
    assert!(b.delivered >= a.delivered + p.t_byte * 4096 - p.t_recv_sw);
    // …but is classified as a port wait, not network contention.
    assert_eq!(b.blocks, 0);
    assert_eq!(b.port_waits, 1);
    assert_eq!(r.stats.blocks, 0);
    assert!(r.stats.port_wait_time > SimTime::ZERO);
}

#[test]
fn mid_path_shared_channel_is_real_contention() {
    // msg0: 0b000→0b011 (hops 0→0b010, 0b010→0b011).
    // msg1: 0b110→0b011 (hops 0b110→0b010, 0b010→0b011): collides on
    // the *second* hop's channel 0b010→0b011 while holding its first.
    let p = SimParams::ncube2(PortModel::AllPort);
    let r = run(
        3,
        &p,
        &[
            msg(0b000, 0b011, 4096, vec![]),
            msg(0b110, 0b011, 4096, vec![]),
        ],
    );
    let loser = &r.messages[1];
    assert_eq!(loser.blocks, 1);
    assert!(r.stats.blocked_time > SimTime::ZERO);
    assert!(loser.delivered >= r.messages[0].delivered + p.t_byte * 4096 - p.t_recv_sw);
}

#[test]
fn disjoint_messages_run_in_parallel() {
    let p = SimParams::ncube2(PortModel::AllPort);
    // From different sources to different subcubes: fully parallel.
    let r = run(
        3,
        &p,
        &[msg(0, 0b100, 4096, vec![]), msg(0b001, 0b011, 4096, vec![])],
    );
    assert_eq!(r.messages[0].delivered, p.unicast_latency(1, 4096));
    assert_eq!(r.messages[1].delivered, p.unicast_latency(1, 4096));
    assert_eq!(r.stats.blocks, 0);
}

#[test]
fn cpu_startup_serializes_two_sends_from_one_node() {
    let p = SimParams::ncube2(PortModel::AllPort);
    // Distinct channels, so only CPU startup separates them.
    let r = run(
        3,
        &p,
        &[msg(0, 0b100, 4096, vec![]), msg(0, 0b010, 4096, vec![])],
    );
    assert_eq!(r.messages[1].injected - r.messages[0].injected, p.t_send_sw);
    assert_eq!(r.stats.blocks, 0);
}

#[test]
fn one_port_serializes_whole_transmissions() {
    let mut p = SimParams::ncube2(PortModel::OnePort);
    p.cpu_serialized_startup = false; // isolate the port effect
    let r = run(
        3,
        &p,
        &[msg(0, 0b100, 4096, vec![]), msg(0, 0b010, 4096, vec![])],
    );
    // The second transmission waits for the injection channel until
    // the first drains completely.
    let drain = p.t_byte * 4096;
    assert!(r.messages[1].delivered >= r.messages[0].delivered + drain - p.t_recv_sw);
    assert_eq!(r.messages[1].port_waits, 1, "injection-channel wait");
    assert_eq!(r.messages[1].blocks, 0, "not external contention");
}

#[test]
fn one_port_serializes_reception() {
    let mut p = SimParams::ncube2(PortModel::OnePort);
    p.cpu_serialized_startup = false;
    // Two senders target the same destination from different sides.
    let r = run(
        3,
        &p,
        &[
            msg(0b001, 0b011, 4096, vec![]),
            msg(0b111, 0b011, 4096, vec![]),
        ],
    );
    let early = r.messages.iter().map(|m| m.delivered).min().unwrap();
    let late = r.messages.iter().map(|m| m.delivered).max().unwrap();
    assert!(late >= early + p.t_byte * 4096);
}

#[test]
fn dependencies_gate_injection() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let r = run(
        3,
        &p,
        &[
            msg(0, 0b100, 4096, vec![]),
            msg(0b100, 0b110, 4096, vec![0]),
        ],
    );
    // The forward cannot start before delivery of the inbound.
    assert!(r.messages[1].injected >= r.messages[0].delivered + p.t_send_sw);
    assert_eq!(
        r.messages[1].delivered,
        r.messages[0].delivered + p.unicast_latency(1, 4096)
    );
}

#[test]
fn min_start_delays_sources() {
    let p = SimParams::ideal(PortModel::AllPort);
    let mut m = msg(0, 1, 10, vec![]);
    m.min_start = SimTime::from_us(5);
    let r = run(3, &p, &[m]);
    assert_eq!(r.messages[0].injected, SimTime::from_us(5));
}

#[test]
fn deterministic_across_runs() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let workload: Vec<DepMessage> = (1..8u32).map(|d| msg(0, d, 4096, vec![])).collect();
    let a = run(3, &p, &workload);
    let b = run(3, &p, &workload);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.stats, b.stats);
}

#[test]
#[should_panic(expected = "self-send")]
fn rejects_self_send() {
    let p = SimParams::ideal(PortModel::AllPort);
    let _ = run(3, &p, &[msg(1, 1, 10, vec![])]);
}

#[test]
fn typed_errors_for_malformed_workloads() {
    let p = SimParams::ideal(PortModel::AllPort);
    let cube = Cube::of(3);
    let r = try_simulate(cube, Resolution::HighToLow, &p, &[msg(1, 1, 10, vec![])]);
    assert_eq!(r.unwrap_err(), SimError::SelfSend { index: 0 });
    let r = try_simulate(cube, Resolution::HighToLow, &p, &[msg(0, 1, 10, vec![9])]);
    assert_eq!(
        r.unwrap_err(),
        SimError::DependencyOutOfRange { index: 0, dep: 9 }
    );
    // Two messages depending on each other: a cycle.
    let r = try_simulate(
        cube,
        Resolution::HighToLow,
        &p,
        &[msg(0, 1, 10, vec![1]), msg(2, 3, 10, vec![0])],
    );
    match r.unwrap_err() {
        SimError::DependencyCycle { stuck } => assert_eq!(stuck, vec![0, 1]),
        e => panic!("expected cycle, got {e}"),
    }
}

// ----- new statistics ---------------------------------------------------

#[test]
fn dim_utilization_tracks_only_traversed_dimensions() {
    let p = SimParams::ncube2(PortModel::AllPort);
    // 0b0101 → 0b1110 crosses dimensions 3, 1, 0 — never dimension 2.
    let r = run(4, &p, &[msg(0b0101, 0b1110, 4096, vec![])]);
    assert_eq!(r.stats.dim_channels, vec![16, 16, 16, 16]);
    assert_eq!(r.stats.dim_busy.len(), 4);
    for d in [0usize, 1, 3] {
        assert!(r.stats.dim_busy[d] > SimTime::ZERO, "dim {d} was traversed");
    }
    assert_eq!(r.stats.dim_busy[2], SimTime::ZERO, "dim 2 untouched");
    let u = r.stats.dim_utilization();
    assert_eq!(u.len(), 4);
    assert!(u.iter().all(|&x| (0.0..=1.0).contains(&x)));
    assert_eq!(u[2], 0.0);
}

#[test]
fn max_queue_depth_counts_simultaneous_waiters() {
    let p = SimParams::ncube2(PortModel::AllPort);
    // Three same-source messages all need channel 0→0b100 first: two of
    // them sit in its FIFO at once.
    let r = run(
        3,
        &p,
        &[
            msg(0, 0b100, 4096, vec![]),
            msg(0, 0b101, 4096, vec![]),
            msg(0, 0b110, 4096, vec![]),
        ],
    );
    assert_eq!(r.stats.max_queue_depth, 2);
    // A lone unicast queues on nothing.
    let solo = run(3, &p, &[msg(0, 0b100, 4096, vec![])]);
    assert_eq!(solo.stats.max_queue_depth, 0);
}

// ----- topology-generic entry points ------------------------------------

#[test]
fn generic_cube_run_equals_classic_entry_point() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let workload: Vec<DepMessage> = (1..8u32).map(|d| msg(0, d, 4096, vec![])).collect();
    let classic = run(3, &p, &workload);
    let generic = simulate_on(
        Ecube::new(Cube::of(3), Resolution::HighToLow),
        &p,
        &workload,
    );
    assert_eq!(classic.messages, generic.messages);
    assert_eq!(classic.stats, generic.stats);
}

#[test]
fn torus_unicast_delivers_with_minimal_hops_latency() {
    let torus = Torus::of(4, 2);
    let router = TorusRouter::new(torus);
    let p = SimParams::ncube2(PortModel::AllPort);
    let src = torus.node_at(&[0, 0]);
    let dst = torus.node_at(&[3, 2]); // 1 wrap hop + 2 hops = distance 3
    let r = simulate_on(
        router,
        &p,
        &[DepMessage {
            src,
            dst,
            bytes: 4096,
            deps: vec![],
            min_start: SimTime::ZERO,
        }],
    );
    assert_eq!(r.messages[0].outcome, Outcome::Delivered);
    assert_eq!(
        r.messages[0].delivered,
        p.unicast_latency(torus.distance(src, dst), 4096)
    );
    assert_eq!(r.stats.dim_busy.len(), 2);
    // 16 nodes × 4 ports per dimension (2 directions × 2 dateline VCs).
    assert_eq!(r.stats.dim_channels, vec![64, 64]);
}

#[test]
fn torus_wrap_heavy_traffic_never_wedges() {
    // Every node sends across the dateline of dimension 0 — the exact
    // pattern that deadlocks plain dimension-ordered torus routing.
    // With dateline VCs the run must complete (no watchdog error).
    let torus = Torus::of(4, 2);
    let router = TorusRouter::new(torus);
    let p = SimParams::ncube2(PortModel::AllPort);
    let workload: Vec<DepMessage> = torus
        .nodes()
        .map(|v| {
            let c0 = torus.coord(v, 0);
            let c1 = torus.coord(v, 1);
            DepMessage {
                src: v,
                dst: torus.node_at(&[(c0 + 2) % 4, (c1 + 1) % 4]),
                bytes: 2048,
                deps: vec![],
                min_start: SimTime::ZERO,
            }
        })
        .collect();
    let r = try_simulate_on(router, &p, &workload).expect("dateline VCs prevent deadlock");
    assert_eq!(r.delivered_count(), workload.len());
}

#[test]
fn torus_runs_are_deterministic() {
    let torus = Torus::of(3, 3);
    let router = TorusRouter::new(torus);
    let p = SimParams::ncube2(PortModel::OnePort);
    let workload: Vec<DepMessage> = torus
        .nodes()
        .filter(|v| v.0 != 0)
        .map(|v| DepMessage {
            src: v,
            dst: NodeId(0),
            bytes: 512,
            deps: vec![],
            min_start: SimTime::ZERO,
        })
        .collect();
    let a = simulate_on(router, &p, &workload);
    let b = simulate_on(router, &p, &workload);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.stats, b.stats);
}

// ----- fault injection ----------------------------------------------

fn with_faults(
    n: u8,
    params: &SimParams,
    workload: &[DepMessage],
    plan: &FaultPlan,
) -> Result<RunResult, SimError> {
    simulate_with_faults(Cube::of(n), Resolution::HighToLow, params, workload, plan)
}

#[test]
fn empty_plan_is_identical_to_fault_free_run() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let workload: Vec<DepMessage> = (1..8u32).map(|d| msg(0, d, 4096, vec![])).collect();
    let a = run(3, &p, &workload);
    let b = with_faults(3, &p, &workload, &FaultPlan::none()).unwrap();
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn dead_channel_fails_the_worm_and_releases_holds() {
    let p = SimParams::ncube2(PortModel::AllPort);
    // 0 → 0b011 routes 0 → 0b010 → 0b011 (high-to-low). Kill the
    // second hop: the worm aborts after holding the first channel,
    // which a subsequent message must then be able to acquire.
    let mut plan = FaultPlan::none();
    plan.fail_link(NodeId(0b010), Dim(0));
    let r = with_faults(
        3,
        &p,
        &[msg(0, 0b011, 4096, vec![]), msg(0, 0b010, 4096, vec![])],
        &plan,
    )
    .unwrap();
    assert_eq!(
        r.messages[0].outcome,
        Outcome::Failed(FaultCause::DeadChannel)
    );
    assert_eq!(r.messages[1].outcome, Outcome::Delivered);
    assert_eq!(r.stats.failed, 1);
    assert!(r.delivery_ratio() < 1.0);
}

#[test]
fn dead_endpoint_fails_immediately_and_cascades() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let mut plan = FaultPlan::none();
    plan.fail_node(NodeId(0b100));
    let r = with_faults(
        3,
        &p,
        &[
            msg(0, 0b100, 4096, vec![]),      // dest dead
            msg(0b100, 0b110, 4096, vec![0]), // source dead AND dep failed
            msg(0b110, 0b111, 4096, vec![1]), // transitively lost
            msg(0, 0b001, 4096, vec![]),      // unaffected
        ],
        &plan,
    )
    .unwrap();
    assert_eq!(
        r.messages[0].outcome,
        Outcome::Failed(FaultCause::DeadEndpoint)
    );
    assert!(matches!(r.messages[1].outcome, Outcome::Failed(_)));
    assert_eq!(
        r.messages[2].outcome,
        Outcome::Failed(FaultCause::DependencyFailed)
    );
    assert_eq!(r.messages[3].outcome, Outcome::Delivered);
    assert_eq!(r.delivered_count(), 1);
}

#[test]
fn routing_through_a_dead_node_fails_the_worm() {
    let p = SimParams::ncube2(PortModel::AllPort);
    // 0 → 0b011 passes through 0b010; killing that node (not an
    // endpoint) kills the route's channels.
    let mut plan = FaultPlan::none();
    plan.fail_node(NodeId(0b010));
    let r = with_faults(3, &p, &[msg(0, 0b011, 4096, vec![])], &plan).unwrap();
    assert_eq!(
        r.messages[0].outcome,
        Outcome::Failed(FaultCause::DeadChannel)
    );
}

#[test]
fn torus_dead_node_aborts_routes_through_it() {
    // The same fault semantics on the torus backend, with the dead
    // transit node found through the trait's neighbor function.
    let torus = Torus::of(4, 2);
    let router = TorusRouter::new(torus);
    let p = SimParams::ncube2(PortModel::AllPort);
    // [0,0] → [2,0] routes through [1,0] (dimension-ordered, + way).
    let mut plan = FaultPlan::none();
    plan.fail_node(torus.node_at(&[1, 0]));
    let r = simulate_with_faults_on(
        router,
        &p,
        &[DepMessage {
            src: torus.node_at(&[0, 0]),
            dst: torus.node_at(&[2, 0]),
            bytes: 1024,
            deps: vec![],
            min_start: SimTime::ZERO,
        }],
        &plan,
    )
    .unwrap();
    assert_eq!(
        r.messages[0].outcome,
        Outcome::Failed(FaultCause::DeadChannel)
    );
}

#[test]
fn transient_stall_delays_but_delivers() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let clean = run(3, &p, &[msg(0, 0b100, 4096, vec![])]);
    let mut plan = FaultPlan::none();
    // Stall the only hop across its acquisition time.
    plan.stall(NodeId(0), Dim(2), SimTime::ZERO, SimTime::from_us(500));
    let r = with_faults(3, &p, &[msg(0, 0b100, 4096, vec![])], &plan).unwrap();
    assert_eq!(r.messages[0].outcome, Outcome::Delivered);
    assert!(r.messages[0].delivered > clean.messages[0].delivered);
    assert!(r.messages[0].blocked_time >= SimTime::from_us(400));
}

#[test]
fn stuck_channel_is_a_detected_deadlock() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let mut plan = FaultPlan::none();
    plan.stick(NodeId(0b010), Dim(0));
    // msg 0 holds 0→0b010 then queues forever on the stuck channel;
    // msg 1 queues behind msg 0's held channel.
    let err = with_faults(
        3,
        &p,
        &[msg(0, 0b011, 4096, vec![]), msg(0b100, 0b010, 4096, vec![])],
        &plan,
    )
    .unwrap_err();
    match err {
        SimError::Deadlock {
            holders, waiters, ..
        } => {
            assert_eq!(waiters, vec![0, 1]);
            assert_eq!(holders, vec![0], "msg 0 holds what msg 1 waits on");
        }
        e => panic!("expected deadlock, got {e}"),
    }
}

#[test]
fn deadlock_detection_is_deterministic() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let mut plan = FaultPlan::none();
    plan.stick(NodeId(0b010), Dim(0));
    let workload = [msg(0, 0b011, 4096, vec![]), msg(0b100, 0b010, 4096, vec![])];
    let a = with_faults(3, &p, &workload, &plan).unwrap_err();
    let b = with_faults(3, &p, &workload, &plan).unwrap_err();
    assert_eq!(a, b);
}

#[test]
fn deadline_rescues_a_wedged_worm_as_timeout() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let mut plan = FaultPlan::none();
    plan.stick(NodeId(0b010), Dim(0));
    plan.deadline_all(SimTime::from_ms(10));
    // Same wedge as above, but the deadline converts the deadlock
    // into TimedOut outcomes and the run completes.
    let r = with_faults(
        3,
        &p,
        &[msg(0, 0b011, 4096, vec![]), msg(0b100, 0b010, 4096, vec![])],
        &plan,
    )
    .unwrap();
    assert_eq!(r.messages[0].outcome, Outcome::TimedOut);
    assert_eq!(r.messages[0].delivered, SimTime::from_ms(10));
    assert_eq!(r.stats.timed_out, 2);
}

#[test]
fn timeout_releases_channels_for_later_traffic() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let mut plan = FaultPlan::none();
    plan.stick(NodeId(0b010), Dim(0));
    // Only msg 0 gets a deadline; msg 1 wants the channel 0→0b010
    // that msg 0 holds while wedged, and starts after the timeout.
    plan.deadline_for(0, SimTime::from_ms(5));
    let mut late = msg(0, 0b010, 4096, vec![]);
    late.min_start = SimTime::from_ms(1);
    let r = with_faults(3, &p, &[msg(0, 0b011, 4096, vec![]), late], &plan).unwrap();
    assert_eq!(r.messages[0].outcome, Outcome::TimedOut);
    assert_eq!(r.messages[1].outcome, Outcome::Delivered);
    // Delivery happened only after the timeout released the channel.
    assert!(r.messages[1].delivered > SimTime::from_ms(5));
}

#[test]
fn per_message_deadline_overrides_global() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let mut plan = FaultPlan::none();
    plan.deadline_all(SimTime::from_ns(1)); // brutally tight
    plan.deadline_for(0, SimTime::from_ms(100)); // rescue msg 0
    let r = with_faults(
        3,
        &p,
        &[msg(0, 0b100, 4096, vec![]), msg(0b001, 0b011, 4096, vec![])],
        &plan,
    )
    .unwrap();
    assert_eq!(r.messages[0].outcome, Outcome::Delivered);
    assert_eq!(r.messages[1].outcome, Outcome::TimedOut);
}

#[test]
fn window_below_saturation_is_bit_identical_to_unbounded() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let workload = [
        msg(0, 0b011, 4096, vec![]),
        msg(0b100, 0b110, 4096, vec![0]),
    ];
    let unbounded = run(3, &p, &workload);
    let windowed = simulate_window_on(
        Ecube::new(Cube::of(3), Resolution::HighToLow),
        &p,
        &workload,
        SimTime::from_ms(1_000),
    )
    .unwrap();
    assert_eq!(
        format!("{:?}", windowed.messages),
        format!("{:?}", unbounded.messages)
    );
    assert_eq!(
        format!("{:?}", windowed.stats),
        format!("{:?}", unbounded.stats)
    );
}

#[test]
fn window_times_out_arrivals_beyond_the_horizon() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let mut late = msg(0, 0b001, 64, vec![]);
    late.min_start = SimTime::from_ms(2);
    let r = simulate_window_on(
        Ecube::new(Cube::of(3), Resolution::HighToLow),
        &p,
        &[msg(0, 0b010, 64, vec![]), late],
        SimTime::from_ms(1),
    )
    .unwrap();
    assert_eq!(r.messages[0].outcome, Outcome::Delivered);
    assert_eq!(r.messages[1].outcome, Outcome::TimedOut);
    assert_eq!(r.messages[1].delivered, SimTime::from_ms(1));
    assert_eq!(r.stats.timed_out, 1);
}

#[test]
fn window_works_on_the_torus() {
    let p = SimParams::ncube2(PortModel::AllPort);
    let torus = Torus::of(4, 2);
    let workload = [DepMessage {
        src: torus.node_at(&[0, 0]),
        dst: torus.node_at(&[2, 3]),
        bytes: 1024,
        deps: vec![],
        min_start: SimTime::ZERO,
    }];
    let r =
        simulate_window_on(TorusRouter::new(torus), &p, &workload, SimTime::from_ms(50)).unwrap();
    assert!(r.messages[0].outcome.is_delivered());
}
