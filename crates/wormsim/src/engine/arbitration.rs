//! Channel arbitration state: who holds each channel, who waits, FIFO
//! grant order, and the phantom holder used for stuck-channel faults.
//!
//! The grant contract is **direct hand-off**: when a holder releases a
//! channel with a non-empty wait queue, the FIFO head is granted the
//! channel *atomically at release* ([`Channels::handoff`]). The channel
//! is never observably free in between, so a same-time acquisition
//! attempt that happens to pop later from the event heap cannot steal
//! it — the popped waiter keeps exactly the position its arrival order
//! earned (the paper's Definitions 3–4 assume precisely this: a blocked
//! header proceeds the moment its channel is released).

use crate::time::SimTime;
use std::collections::VecDeque;

/// Phantom holder index marking channels stuck by the fault plan.
pub(crate) const PHANTOM: usize = usize::MAX;

/// Per-channel arbitration state.
#[derive(Clone, Debug, Default)]
pub(crate) struct ChannelState {
    /// The message currently holding the channel ([`PHANTOM`] for a
    /// channel wedged by the fault plan).
    pub holder: Option<usize>,
    /// FIFO of `(message, hop)` pairs waiting for this channel.
    pub queue: VecDeque<(usize, usize)>,
    /// When the current (real) holder acquired the channel; used for
    /// per-dimension busy-time accounting.
    pub acquired_at: SimTime,
}

/// The arbitration table: one [`ChannelState`] per dense channel index.
#[derive(Debug, Default)]
pub(crate) struct Channels {
    states: Vec<ChannelState>,
    /// Whether any channel may deviate from the pristine
    /// free-with-empty-queue state. A run that terminates normally
    /// releases everything, so a reused table usually needs no sweep;
    /// stuck channels and error exits set this and force one.
    dirty: bool,
}

impl Channels {
    /// `len` free channels with empty queues. (The engine itself goes
    /// through [`reset`](Channels::reset) on a default table.)
    #[cfg(test)]
    pub fn new(len: usize) -> Channels {
        Channels {
            states: (0..len).map(|_| ChannelState::default()).collect(),
            dirty: false,
        }
    }

    /// Prepares the table for a run over `len` channels, reusing the
    /// existing per-channel allocations (including each FIFO's
    /// capacity). Cheap when the previous run drained cleanly: a
    /// completed run releases every channel, so only a `dirty` table
    /// (stuck channels, error exits) pays the full sweep.
    pub fn reset(&mut self, len: usize) {
        if self.dirty {
            for s in &mut self.states {
                s.holder = None;
                s.queue.clear();
            }
            self.dirty = false;
        }
        debug_assert!(self
            .states
            .iter()
            .all(|s| s.holder.is_none() && s.queue.is_empty()));
        if self.states.len() < len {
            self.states.resize_with(len, ChannelState::default);
        }
    }

    /// Marks the table as needing a full sweep on the next
    /// [`reset`](Channels::reset) (a run ended without releasing
    /// everything).
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// Whether `ch` currently has no holder.
    pub fn is_free(&self, ch: usize) -> bool {
        self.states[ch].holder.is_none()
    }

    /// Grants `ch` to message `m` at time `t`.
    ///
    /// The caller guarantees the channel is free.
    pub fn acquire(&mut self, ch: usize, m: usize, t: SimTime) {
        debug_assert!(self.is_free(ch));
        self.states[ch].holder = Some(m);
        self.states[ch].acquired_at = t;
    }

    /// Atomically releases `ch` (held by `m`) and grants it to the FIFO
    /// head waiter — if any — at `grant_t`. Returns `(held_since,
    /// waiter)`; when a waiter is returned it **already holds** the
    /// channel, so no interleaved acquisition attempt can take it.
    /// (The engine always goes through
    /// [`handoff_from`](Channels::handoff_from), which this delegates
    /// to; kept for the arbitration-level tests.)
    #[cfg(test)]
    pub fn handoff(
        &mut self,
        ch: usize,
        m: usize,
        grant_t: SimTime,
    ) -> (SimTime, Option<(usize, usize)>) {
        self.handoff_from(ch, ch, m, grant_t)
    }

    /// [`handoff`](Channels::handoff) with a separate wait queue: `ch`
    /// (held by `m`) is released, and the FIFO head of `rep`'s queue —
    /// the lane class's *representative* channel, where blocked worms
    /// park under adaptive lane selection — is installed as `ch`'s new
    /// holder. With `rep == ch` this is exactly `handoff`; the direct
    /// hand-off guarantee (never observably free in between) holds
    /// either way.
    pub fn handoff_from(
        &mut self,
        ch: usize,
        rep: usize,
        m: usize,
        grant_t: SimTime,
    ) -> (SimTime, Option<(usize, usize)>) {
        debug_assert_eq!(self.states[ch].holder, Some(m));
        let since = self.states[ch].acquired_at;
        match self.states[rep].queue.pop_front() {
            Some((w, whop)) => {
                self.states[ch].holder = Some(w);
                self.states[ch].acquired_at = grant_t;
                (since, Some((w, whop)))
            }
            None => {
                self.states[ch].holder = None;
                (since, None)
            }
        }
    }

    /// Appends `(m, hop)` to `ch`'s FIFO; returns the queue depth after
    /// the append (for max-depth statistics).
    pub fn enqueue(&mut self, ch: usize, m: usize, hop: usize) -> usize {
        self.states[ch].queue.push_back((m, hop));
        self.states[ch].queue.len()
    }

    /// Current FIFO depth of `ch`'s wait queue.
    pub fn queue_len(&self, ch: usize) -> usize {
        self.states[ch].queue.len()
    }

    /// Removes message `m` from `ch`'s wait queue (abort path).
    pub fn remove_waiter(&mut self, ch: usize, m: usize) {
        self.states[ch].queue.retain(|&(w, _)| w != m);
    }

    /// Wedges `ch` under the phantom holder (stuck-channel fault). The
    /// phantom never releases, so the table is marked dirty for reuse.
    pub fn stick(&mut self, ch: usize) {
        self.states[ch].holder = Some(PHANTOM);
        self.dirty = true;
    }

    /// Iterates over the first `len` channel states (watchdog
    /// inspection; a reused table may be longer than the current run's
    /// channel map).
    pub fn iter(&self) -> impl Iterator<Item = &ChannelState> {
        self.states.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_grants_the_fifo_head_atomically() {
        let mut c = Channels::new(2);
        assert!(c.is_free(0));
        c.acquire(0, 7, SimTime::from_ns(3));
        assert!(!c.is_free(0));
        assert_eq!(c.enqueue(0, 8, 1), 1);
        assert_eq!(c.enqueue(0, 9, 0), 2);
        let (since, first) = c.handoff(0, 7, SimTime::from_ns(10));
        assert_eq!(since, SimTime::from_ns(3));
        assert_eq!(first, Some((8, 1)));
        // The popped waiter already holds the channel: nothing can
        // steal it between release and grant.
        assert!(!c.is_free(0));
        let (since, next) = c.handoff(0, 8, SimTime::from_ns(20));
        assert_eq!(since, SimTime::from_ns(10));
        assert_eq!(next, Some((9, 0)));
        let (_, none) = c.handoff(0, 9, SimTime::from_ns(30));
        assert_eq!(none, None);
        assert!(c.is_free(0));
    }

    #[test]
    fn handoff_from_grants_the_representatives_fifo_head() {
        let mut c = Channels::new(3);
        // Lane class {0, 1} with representative 0: waiters park on 0,
        // but the grant rides whichever lane actually frees up.
        c.acquire(0, 1, SimTime::ZERO);
        c.acquire(1, 2, SimTime::from_ns(2));
        c.enqueue(0, 3, 1);
        c.enqueue(0, 4, 2);
        // Lane 1 releases first: its new holder comes from 0's queue.
        let (since, w) = c.handoff_from(1, 0, 2, SimTime::from_ns(10));
        assert_eq!(since, SimTime::from_ns(2));
        assert_eq!(w, Some((3, 1)));
        assert!(!c.is_free(1));
        // The representative itself still hands off its own queue.
        let (_, w) = c.handoff_from(0, 0, 1, SimTime::from_ns(11));
        assert_eq!(w, Some((4, 2)));
        // Empty queue: the lane becomes free.
        let (_, w) = c.handoff_from(1, 0, 3, SimTime::from_ns(12));
        assert_eq!(w, None);
        assert!(c.is_free(1));
    }

    #[test]
    fn remove_waiter_preserves_order_of_the_rest() {
        let mut c = Channels::new(1);
        c.acquire(0, 1, SimTime::ZERO);
        c.enqueue(0, 2, 0);
        c.enqueue(0, 3, 0);
        c.enqueue(0, 4, 0);
        assert_eq!(c.queue_len(0), 3);
        c.remove_waiter(0, 3);
        assert_eq!(c.queue_len(0), 2);
        let (_, first) = c.handoff(0, 1, SimTime::ZERO);
        assert_eq!(first, Some((2, 0)));
        let (_, next) = c.handoff(0, 2, SimTime::ZERO);
        assert_eq!(next, Some((4, 0)));
    }

    #[test]
    fn stuck_channels_are_never_free() {
        let mut c = Channels::new(1);
        c.stick(0);
        assert!(!c.is_free(0));
        assert_eq!(c.iter().next().unwrap().holder, Some(PHANTOM));
    }

    #[test]
    fn reset_reuses_clean_tables_and_sweeps_dirty_ones() {
        let mut c = Channels::new(2);
        c.acquire(0, 1, SimTime::ZERO);
        let (_, none) = c.handoff(0, 1, SimTime::ZERO);
        assert_eq!(none, None);
        // Clean table: reset is a no-op beyond a length check.
        c.reset(2);
        assert!(c.is_free(0) && c.is_free(1));
        // Dirty table (stuck channel): reset sweeps everything.
        c.stick(1);
        c.reset(2);
        assert!(c.is_free(1));
        // Growing allocates the new slots free.
        c.reset(5);
        assert!((0..5).all(|ch| c.is_free(ch)));
    }
}
