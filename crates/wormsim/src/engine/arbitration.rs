//! Channel arbitration state: who holds each channel, who waits, FIFO
//! grant order, and the phantom holder used for stuck-channel faults.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Phantom holder index marking channels stuck by the fault plan.
pub(crate) const PHANTOM: usize = usize::MAX;

/// Per-channel arbitration state.
#[derive(Clone, Debug, Default)]
pub(crate) struct ChannelState {
    /// The message currently holding the channel ([`PHANTOM`] for a
    /// channel wedged by the fault plan).
    pub holder: Option<usize>,
    /// FIFO of `(message, hop)` pairs waiting for this channel.
    pub queue: VecDeque<(usize, usize)>,
    /// When the current (real) holder acquired the channel; used for
    /// per-dimension busy-time accounting.
    pub acquired_at: SimTime,
}

/// The arbitration table: one [`ChannelState`] per dense channel index.
#[derive(Debug)]
pub(crate) struct Channels {
    states: Vec<ChannelState>,
}

impl Channels {
    /// `len` free channels with empty queues.
    pub fn new(len: usize) -> Channels {
        Channels {
            states: (0..len).map(|_| ChannelState::default()).collect(),
        }
    }

    /// Whether `ch` currently has no holder.
    pub fn is_free(&self, ch: usize) -> bool {
        self.states[ch].holder.is_none()
    }

    /// Grants `ch` to message `m` at time `t`.
    ///
    /// The caller guarantees the channel is free.
    pub fn acquire(&mut self, ch: usize, m: usize, t: SimTime) {
        debug_assert!(self.is_free(ch));
        self.states[ch].holder = Some(m);
        self.states[ch].acquired_at = t;
    }

    /// Releases `ch` (held by `m`) and pops the first waiter, if any.
    /// Returns `(held_since, first_waiter)`.
    pub fn release(&mut self, ch: usize, m: usize) -> (SimTime, Option<(usize, usize)>) {
        debug_assert_eq!(self.states[ch].holder, Some(m));
        self.states[ch].holder = None;
        let since = self.states[ch].acquired_at;
        (since, self.states[ch].queue.pop_front())
    }

    /// Appends `(m, hop)` to `ch`'s FIFO; returns the queue depth after
    /// the append (for max-depth statistics).
    pub fn enqueue(&mut self, ch: usize, m: usize, hop: usize) -> usize {
        self.states[ch].queue.push_back((m, hop));
        self.states[ch].queue.len()
    }

    /// Removes message `m` from `ch`'s wait queue (abort path).
    pub fn remove_waiter(&mut self, ch: usize, m: usize) {
        self.states[ch].queue.retain(|&(w, _)| w != m);
    }

    /// Wedges `ch` under the phantom holder (stuck-channel fault).
    pub fn stick(&mut self, ch: usize) {
        self.states[ch].holder = Some(PHANTOM);
    }

    /// Iterates over all channel states (watchdog inspection).
    pub fn iter(&self) -> impl Iterator<Item = &ChannelState> {
        self.states.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_grant_order() {
        let mut c = Channels::new(2);
        assert!(c.is_free(0));
        c.acquire(0, 7, SimTime::from_ns(3));
        assert!(!c.is_free(0));
        assert_eq!(c.enqueue(0, 8, 1), 1);
        assert_eq!(c.enqueue(0, 9, 0), 2);
        let (since, first) = c.release(0, 7);
        assert_eq!(since, SimTime::from_ns(3));
        assert_eq!(first, Some((8, 1)));
        assert!(c.is_free(0));
    }

    #[test]
    fn remove_waiter_preserves_order_of_the_rest() {
        let mut c = Channels::new(1);
        c.acquire(0, 1, SimTime::ZERO);
        c.enqueue(0, 2, 0);
        c.enqueue(0, 3, 0);
        c.enqueue(0, 4, 0);
        c.remove_waiter(0, 3);
        let (_, first) = c.release(0, 1);
        assert_eq!(first, Some((2, 0)));
        c.acquire(0, 2, SimTime::ZERO);
        let (_, next) = c.release(0, 2);
        assert_eq!(next, Some((4, 0)));
    }

    #[test]
    fn stuck_channels_are_never_free() {
        let mut c = Channels::new(1);
        c.stick(0);
        assert!(!c.is_free(0));
        assert_eq!(c.iter().next().unwrap().holder, Some(PHANTOM));
    }
}
