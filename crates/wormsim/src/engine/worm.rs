//! Worm state: workload messages, their terminal outcomes, and the
//! per-message bookkeeping the event loop updates.

use crate::time::SimTime;
use hcube::NodeId;

/// One message of a dependency workload.
#[derive(Clone, Debug)]
pub struct DepMessage {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload length in bytes.
    pub bytes: u32,
    /// Indices (into the workload vector) of messages that must be
    /// *delivered* before this message's send processing may start.
    pub deps: Vec<usize>,
    /// Earliest absolute time the send processing may start.
    pub min_start: SimTime,
}

/// Why a message failed under fault injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultCause {
    /// The source or destination node is dead.
    DeadEndpoint,
    /// The worm's header reached a dead channel and aborted.
    DeadChannel,
    /// A dependency of this message failed or timed out, so it could
    /// never be sent.
    DependencyFailed,
}

impl core::fmt::Display for FaultCause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultCause::DeadEndpoint => write!(f, "source or destination node is dead"),
            FaultCause::DeadChannel => write!(f, "header reached a dead channel"),
            FaultCause::DependencyFailed => {
                write!(f, "a dependency failed or timed out")
            }
        }
    }
}

impl std::error::Error for FaultCause {}

/// Per-message terminal state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The payload reached the destination processor.
    Delivered,
    /// The message was lost to a fault; see the cause.
    Failed(FaultCause),
    /// The message missed its deadline and aborted, releasing every
    /// channel it held (the recovery path that distinguishes a timeout
    /// from a deadlock).
    TimedOut,
}

impl Outcome {
    /// Whether the message was delivered.
    #[must_use]
    pub fn is_delivered(self) -> bool {
        self == Outcome::Delivered
    }
}

/// Per-message outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageResult {
    /// Time the worm entered the network (after software startup);
    /// [`SimTime::ZERO`] if the message failed before injection.
    pub injected: SimTime,
    /// Time the tail drained at the destination router. For a message
    /// that was not delivered, the time it aborted.
    pub network_done: SimTime,
    /// Time the destination processor holds the payload
    /// (`network_done + t_recv_sw`). For a message that was not
    /// delivered, the time it aborted.
    pub delivered: SimTime,
    /// Total time spent blocked waiting for busy channels (external
    /// contention and one-port serialization combined).
    pub blocked_time: SimTime,
    /// Blocking episodes on *external* channels — genuine wormhole
    /// channel contention (stall-window retries count here too).
    pub blocks: u32,
    /// Blocking episodes on virtual injection/consumption channels —
    /// intended one-port serialization, not contention.
    pub port_waits: u32,
    /// How the message ended.
    pub outcome: Outcome,
}

/// The worm's in-flight state machine: route progress, dependency
/// counters, blocking accounting, and the terminal outcome once reached.
///
/// The route itself lives in the run's
/// [`RouteMemo`](crate::network::RouteMemo) as a flat `(start, len)`
/// range — per-message state carries no allocation for it, which is
/// what lets [`EngineScratch`](crate::scratch::EngineScratch) replay
/// recurring sessions without touching the allocator.
pub(crate) struct MsgState {
    /// Start of this worm's channel sequence in the route memo.
    pub route_start: u32,
    /// Number of channels in the route.
    pub route_len: u32,
    /// Dependencies not yet delivered.
    pub pending_deps: usize,
    /// Messages waiting on this one's delivery.
    pub dependents: Vec<usize>,
    /// Earliest time send processing may start.
    pub eligible_at: SimTime,
    /// Injection time, once injected.
    pub injected: SimTime,
    /// When the current blocking episode began.
    pub wait_since: SimTime,
    /// Accumulated blocked time (external + virtual).
    pub blocked_time: SimTime,
    /// External-channel blocking episodes.
    pub blocks: u32,
    /// Virtual-channel blocking episodes.
    pub port_waits: u32,
    /// Number of route channels currently held.
    pub acquired: usize,
    /// The channels actually granted so far, hop by hop. Populated only
    /// under adaptive lane selection (`class_size > 1`), where the
    /// granted lane may differ from the route's nominal class floor;
    /// with a single lane per class the route memo *is* the truth and
    /// this stays empty (the allocation-free hot path).
    pub taken: Vec<usize>,
    /// Channel whose queue this message currently sits in, if blocked.
    pub waiting_on: Option<usize>,
    /// An open stall-window park: `(since, port_classified)`. The
    /// blocked time is charged when the window actually elapses (the
    /// reopen retry) or pro-rated at an abort — never upfront, so a
    /// deadline that fires mid-window cannot overcount.
    pub stall: Option<(SimTime, bool)>,
    /// Terminal state, once reached; time in `finished_at`.
    pub outcome: Option<Outcome>,
    /// Time the terminal state was reached.
    pub finished_at: SimTime,
}

impl MsgState {
    /// Fresh state for a workload message with the given route range.
    pub fn new(route: (u32, u32), deps: usize, eligible_at: SimTime) -> MsgState {
        MsgState {
            route_start: route.0,
            route_len: route.1,
            pending_deps: deps,
            dependents: Vec::new(),
            eligible_at,
            injected: SimTime::ZERO,
            wait_since: SimTime::ZERO,
            blocked_time: SimTime::ZERO,
            blocks: 0,
            port_waits: 0,
            acquired: 0,
            taken: Vec::new(),
            waiting_on: None,
            stall: None,
            outcome: None,
            finished_at: SimTime::ZERO,
        }
    }

    /// In-place [`new`](MsgState::new), reusing the `dependents`
    /// allocation — the scratch path's replacement for rebuilding the
    /// message table.
    pub fn reset(&mut self, route: (u32, u32), deps: usize, eligible_at: SimTime) {
        self.route_start = route.0;
        self.route_len = route.1;
        self.pending_deps = deps;
        self.dependents.clear();
        self.eligible_at = eligible_at;
        self.injected = SimTime::ZERO;
        self.wait_since = SimTime::ZERO;
        self.blocked_time = SimTime::ZERO;
        self.blocks = 0;
        self.port_waits = 0;
        self.acquired = 0;
        self.taken.clear();
        self.waiting_on = None;
        self.stall = None;
        self.outcome = None;
        self.finished_at = SimTime::ZERO;
    }
}
