//! Channel-level view of a routed topology for the simulator.
//!
//! Every directed external channel gets a dense index: the router runs
//! [`Router::lanes`] virtual lanes per physical link, and lane `l` of
//! the link with topology index `k` sits at external index `k·L + l`
//! (at `L = 1` this *is* the topology's own `channel_index` bijection).
//! Under the one-port model two *virtual* channels per node are
//! appended — an injection channel (a node transmits at most one
//! message at a time) and a consumption channel (it receives at most
//! one at a time). A message's path is the optional injection channel,
//! the router's external channels, and the optional consumption
//! channel; the worm holds all of them from head acquisition to tail
//! drain, so one-port serialization falls out of the ordinary
//! channel-contention machinery.
//!
//! The map is generic over any [`Router`]: the engine, trace
//! reconstruction, and the flit-level validator all index channels
//! through it and never assume hypercube address arithmetic.

use hcube::{Dim, Hop, NodeId, Router, Topology};
use hypercast::PortModel;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// FNV-1a, the memo table's hasher: deterministic, dependency-free, and
/// far cheaper than the default SipHash for the memo's tiny fixed-size
/// keys — the lookup happens once per workload message on the engine's
/// hot path. (The memo is never iterated, so hash quality only affects
/// bucket clustering, where FNV-1a on small integer keys does fine.)
#[derive(Clone, Debug)]
pub(crate) struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// A per-`(src, dst, port_model)` memo of computed routes, stored as
/// ranges into one flat channel-index buffer.
///
/// The engine resolves every workload route through
/// [`ChannelMap::route_into`]; recurring sessions (the tree-cache hit
/// path of the open-loop traffic engine) therefore never recompute an
/// E-cube or torus route. The memo carries a *stamp* — a fingerprint of
/// the router type and value — and clears itself whenever it is used
/// with a different router, so one memo can be reused across
/// heterogeneous sweeps (cube sizes, torus backends) without leaking
/// stale routes between them.
///
/// The memo is only ever *looked up* by key, never iterated, so the
/// hash map's nondeterministic iteration order cannot perturb the
/// simulation's determinism contract; the routes it returns are the
/// same deterministic sequences [`ChannelMap::route`] computes fresh.
#[derive(Debug, Default)]
pub struct RouteMemo {
    /// Fingerprint of the router the cached routes belong to.
    stamp: Option<u64>,
    /// `(src, dst, one_port) → (start, len)` into `channels`.
    table: HashMap<(u32, u32, bool), (u32, u32), BuildHasherDefault<Fnv1a>>,
    /// Flat storage of every memoized route, concatenated.
    channels: Vec<usize>,
    /// Scratch hop buffer for route computation on a miss.
    hops: Vec<Hop>,
    /// Lookups served without recomputing a route.
    hits: u64,
    /// Lookups that had to compute (and store) a route.
    misses: u64,
}

impl RouteMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> RouteMemo {
        RouteMemo::default()
    }

    /// Number of memoized routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the memo holds no routes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Lookups served from the memo since construction (survives
    /// stamp-triggered clears — it measures the memo's lifetime value).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that computed a fresh route since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The channel sequence of a memoized route range, as returned by
    /// [`ChannelMap::route_into`].
    #[inline]
    #[must_use]
    pub fn channels(&self, start: u32, len: u32) -> &[usize] {
        &self.channels[start as usize..start as usize + len as usize]
    }

    /// The `hop`-th channel of the route range starting at `start`.
    #[inline]
    #[must_use]
    pub(crate) fn channel_at(&self, start: u32, hop: usize) -> usize {
        self.channels[start as usize + hop]
    }

    /// Drops every memoized route (the hit/miss counters survive).
    pub fn clear(&mut self) {
        self.stamp = None;
        self.table.clear();
        self.channels.clear();
    }
}

/// Dense indexing for the external and virtual channels of a routed
/// topology running `L = router.lanes()` virtual lanes per link.
///
/// Layout: externals occupy `0..externals()` with lane `l` of link `k`
/// (topology `channel_index`) at `k·L + l`; consumption channels follow
/// at `externals() + v`; injection channels at `externals() + nodes + v`.
#[derive(Clone, Copy, Debug)]
pub struct ChannelMap<R: Router> {
    router: R,
    topo: R::Topo,
    externals: usize,
    nodes: usize,
    /// Virtual lanes per physical link (`router.lanes()`).
    lanes: usize,
    /// Lanes per lane class (`lanes / router.lane_classes()`); the
    /// engine may swap a nominal lane for any free lane of its class.
    class_size: usize,
    /// Fingerprint of the router (type and value), computed once here —
    /// [`route_into`](Self::route_into) validates the memo against it on
    /// every lookup, so it must not cost a hash of the type name each
    /// time.
    stamp: u64,
}

impl<R: Router> ChannelMap<R> {
    /// Builds the channel map for `router`'s topology.
    ///
    /// # Panics
    /// If the router's lane configuration violates the [`Router`]
    /// contract (`lanes()` not a positive multiple of `lane_classes()`).
    #[must_use]
    pub fn new(router: R) -> ChannelMap<R> {
        let topo = router.topology();
        let lanes = router.lanes() as usize;
        let classes = router.lane_classes() as usize;
        assert!(
            lanes >= 1 && classes >= 1 && lanes.is_multiple_of(classes),
            "lanes() must be a positive multiple of lane_classes()"
        );
        let stamp = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::any::type_name::<R>().hash(&mut h);
            router.hash(&mut h);
            h.finish()
        };
        ChannelMap {
            router,
            topo,
            externals: topo.channel_count() * lanes,
            nodes: topo.node_count(),
            lanes,
            class_size: lanes / classes,
            stamp,
        }
    }

    /// The topology descriptor the map indexes.
    #[must_use]
    pub fn topology(&self) -> R::Topo {
        self.topo
    }

    /// The router whose routes the map wraps.
    #[must_use]
    pub fn router(&self) -> &R {
        &self.router
    }

    /// Total number of channel slots (externals + 2·N virtuals).
    #[must_use]
    pub fn len(&self) -> usize {
        self.externals + 2 * self.nodes
    }

    /// Whether the map is empty (never true for a valid topology).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of directed external channels
    /// (`topology channel count · lanes`).
    #[must_use]
    pub fn externals(&self) -> usize {
        self.externals
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Virtual lanes per physical link.
    #[inline]
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lanes per lane class: the width of the window of interchangeable
    /// lanes the engine may scan when the nominal lane is busy.
    #[inline]
    #[must_use]
    pub fn class_size(&self) -> usize {
        self.class_size
    }

    /// Number of physical links (`externals() / lanes()`).
    #[inline]
    #[must_use]
    pub fn links(&self) -> usize {
        self.externals / self.lanes
    }

    /// Index of lane 0 of the directed link leaving `from` on `port`.
    #[inline]
    #[must_use]
    pub fn external(&self, from: NodeId, port: Dim) -> usize {
        self.topo.channel_index(from, port) * self.lanes
    }

    /// Index of lane `lane` of the directed link leaving `from` on
    /// `port`.
    #[inline]
    #[must_use]
    pub fn external_lane(&self, from: NodeId, port: Dim, lane: u8) -> usize {
        debug_assert!((lane as usize) < self.lanes);
        self.topo.channel_index(from, port) * self.lanes + lane as usize
    }

    /// Decodes an external channel index back to the `(from, port)` of
    /// its physical link (the lane is [`lane_of`](Self::lane_of)).
    ///
    /// # Panics
    /// May panic (or return garbage coordinates) if `ch` is a virtual
    /// channel index; callers check [`is_virtual`](Self::is_virtual).
    #[inline]
    #[must_use]
    pub fn external_coords(&self, ch: usize) -> (NodeId, Dim) {
        debug_assert!(ch < self.externals);
        self.topo.channel_coords(ch / self.lanes)
    }

    /// The lane of an external channel index.
    #[inline]
    #[must_use]
    pub fn lane_of(&self, ch: usize) -> u8 {
        debug_assert!(ch < self.externals);
        (ch % self.lanes) as u8
    }

    /// The representative channel of an external channel's lane class:
    /// the class's lowest lane on the same link. Routes always nominate
    /// the representative; the engine queues blocked worms on it and
    /// scans the window `rep..rep + class_size()` for a free lane.
    #[inline]
    #[must_use]
    pub fn class_rep(&self, ch: usize) -> usize {
        debug_assert!(ch < self.externals);
        ch - (ch % self.lanes) % self.class_size
    }

    /// The coordinate dimension an external channel travels in.
    #[inline]
    #[must_use]
    pub fn dim_of(&self, ch: usize) -> u8 {
        let (_, port) = self.topo.channel_coords(ch / self.lanes);
        self.topo.port_dim(port)
    }

    /// Number of coordinate dimensions of the underlying topology.
    #[inline]
    #[must_use]
    pub fn dimensions(&self) -> u8 {
        self.topo.dimensions()
    }

    /// Human-readable label of a coordinate dimension (delegates to
    /// [`Topology::dim_label`]).
    #[must_use]
    pub fn dim_label(&self, d: u8) -> String {
        self.topo.dim_label(d)
    }

    /// Index of node `v`'s virtual consumption channel.
    #[inline]
    #[must_use]
    pub fn consumption(&self, v: NodeId) -> usize {
        self.externals + v.0 as usize
    }

    /// Index of node `v`'s virtual injection channel.
    #[inline]
    #[must_use]
    pub fn injection(&self, v: NodeId) -> usize {
        self.externals + self.nodes + v.0 as usize
    }

    /// Whether a channel index refers to a virtual (zero-latency) channel.
    #[inline]
    #[must_use]
    pub fn is_virtual(&self, idx: usize) -> bool {
        idx >= self.externals
    }

    /// Human-readable label of a channel index: the topology's own
    /// link label for externals (the lane-qualified variant when the
    /// router runs more than one lane), `inj(v)` / `cons(v)` for
    /// virtuals.
    #[must_use]
    pub fn label(&self, ch: usize) -> String {
        if ch < self.externals {
            if self.lanes == 1 {
                self.topo.channel_label(ch)
            } else {
                self.topo
                    .lane_label(ch / self.lanes, (ch % self.lanes) as u8)
            }
        } else if ch < self.externals + self.nodes {
            let v = NodeId((ch - self.externals) as u32);
            format!("cons({})", self.topo.node_label(v))
        } else {
            let v = NodeId((ch - self.externals - self.nodes) as u32);
            format!("inj({})", self.topo.node_label(v))
        }
    }

    /// The channel sequence a `src → dst` message occupies under the
    /// given port model: the router's deterministic external route,
    /// wrapped in the virtual injection/consumption channels when
    /// one-port.
    #[must_use]
    pub fn route(&self, port_model: PortModel, src: NodeId, dst: NodeId) -> Vec<usize> {
        let mut hops = Vec::new();
        self.router.route_hops(src, dst, &mut hops);
        let mut channels = Vec::with_capacity(hops.len() + 2);
        if port_model == PortModel::OnePort {
            channels.push(self.injection(src));
        }
        for h in hops {
            channels.push(self.external_lane(h.from, h.port, h.lane));
        }
        if port_model == PortModel::OnePort {
            channels.push(self.consumption(dst));
        }
        channels
    }

    /// Fingerprint of this map's router (type and value), used to
    /// validate a [`RouteMemo`] against the router it cached for.
    /// Computed once at construction.
    pub(crate) fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Memoized [`route`](Self::route): returns the `(start, len)`
    /// range of the route's channel sequence inside `memo` (read it
    /// back with [`RouteMemo::channels`]), computing and storing the
    /// route only on the first lookup of each `(src, dst, port_model)`
    /// key. A memo previously used with a *different* router is cleared
    /// first, so reuse across sweeps is always safe.
    #[must_use]
    pub fn route_into(
        &self,
        port_model: PortModel,
        src: NodeId,
        dst: NodeId,
        memo: &mut RouteMemo,
    ) -> (u32, u32) {
        let stamp = self.stamp();
        if memo.stamp != Some(stamp) {
            memo.clear();
            memo.stamp = Some(stamp);
        }
        let key = (src.0, dst.0, port_model == PortModel::OnePort);
        if let Some(&range) = memo.table.get(&key) {
            memo.hits += 1;
            return range;
        }
        memo.misses += 1;
        let start = memo.channels.len();
        if port_model == PortModel::OnePort {
            memo.channels.push(self.injection(src));
        }
        let mut hops = std::mem::take(&mut memo.hops);
        hops.clear();
        self.router.route_hops(src, dst, &mut hops);
        for h in &hops {
            memo.channels
                .push(self.external_lane(h.from, h.port, h.lane));
        }
        memo.hops = hops;
        if port_model == PortModel::OnePort {
            memo.channels.push(self.consumption(dst));
        }
        let range = (start as u32, (memo.channels.len() - start) as u32);
        memo.table.insert(key, range);
        range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcube::{Cube, Ecube, Resolution, Torus, TorusRouter};

    fn cube_map(n: u8) -> ChannelMap<Ecube> {
        ChannelMap::new(Ecube::new(Cube::of(n), Resolution::HighToLow))
    }

    #[test]
    fn indices_are_dense_and_disjoint() {
        let cube = Cube::of(3);
        let map = cube_map(3);
        assert_eq!(map.len(), 3 * 8 + 2 * 8);
        let mut seen = vec![false; map.len()];
        for v in cube.nodes() {
            for d in cube.dims() {
                let i = map.external(v, d);
                assert!(!map.is_virtual(i));
                assert!(!seen[i]);
                seen[i] = true;
                assert_eq!(map.external_coords(i), (v, d));
                assert_eq!(map.dim_of(i), d.0);
            }
        }
        for v in cube.nodes() {
            for i in [map.consumption(v), map.injection(v)] {
                assert!(map.is_virtual(i));
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn all_port_route_is_externals_only() {
        let map = cube_map(4);
        let route = map.route(PortModel::AllPort, NodeId(0b0101), NodeId(0b1110));
        assert_eq!(route.len(), 3);
        assert!(route.iter().all(|&c| !map.is_virtual(c)));
    }

    #[test]
    fn one_port_route_wraps_with_virtuals() {
        let map = cube_map(4);
        let route = map.route(PortModel::OnePort, NodeId(0b0101), NodeId(0b1110));
        assert_eq!(route.len(), 5);
        assert_eq!(route[0], map.injection(NodeId(0b0101)));
        assert_eq!(*route.last().unwrap(), map.consumption(NodeId(0b1110)));
        assert!(route[1..4].iter().all(|&c| !map.is_virtual(c)));
    }

    #[test]
    fn single_hop_route() {
        let map = cube_map(4);
        let route = map.route(PortModel::AllPort, NodeId(0), NodeId(0b1000));
        assert_eq!(route, vec![map.external(NodeId(0), Dim(3))]);
    }

    #[test]
    fn torus_map_routes_through_the_trait() {
        let t = Torus::of(4, 2);
        let map = ChannelMap::new(TorusRouter::new(t));
        assert_eq!(map.externals(), 16 * 8);
        assert_eq!(map.len(), 16 * 8 + 2 * 16);
        let route = map.route(PortModel::AllPort, t.node_at(&[0, 0]), t.node_at(&[2, 1]));
        assert_eq!(
            route.len() as u32,
            t.distance(t.node_at(&[0, 0]), t.node_at(&[2, 1]))
        );
        assert!(route.iter().all(|&c| !map.is_virtual(c)));
        // One-port wraps exactly like the cube map does.
        let route = map.route(PortModel::OnePort, t.node_at(&[0, 0]), t.node_at(&[1, 0]));
        assert_eq!(route[0], map.injection(t.node_at(&[0, 0])));
        assert_eq!(*route.last().unwrap(), map.consumption(t.node_at(&[1, 0])));
    }

    #[test]
    fn route_into_memoizes_and_matches_route() {
        let map = cube_map(4);
        let mut memo = RouteMemo::new();
        for _ in 0..2 {
            for pm in [PortModel::AllPort, PortModel::OnePort] {
                for (s, d) in [(0b0101, 0b1110), (0, 0b1000)] {
                    let (src, dst) = (NodeId(s), NodeId(d));
                    let (start, len) = map.route_into(pm, src, dst, &mut memo);
                    assert_eq!(
                        memo.channels(start, len),
                        map.route(pm, src, dst).as_slice(),
                        "memoized route must equal the fresh computation"
                    );
                }
            }
        }
        assert_eq!(memo.len(), 4, "2 pairs x 2 port models");
        assert_eq!(memo.misses(), 4);
        assert_eq!(memo.hits(), 4, "second pass must be all hits");
    }

    #[test]
    fn route_memo_invalidates_when_the_router_changes() {
        let mut memo = RouteMemo::new();
        let m4 = cube_map(4);
        let (s, l) = m4.route_into(PortModel::AllPort, NodeId(0), NodeId(7), &mut memo);
        assert_eq!(memo.channels(s, l).len(), 3);
        // A different router value (another cube size) must not serve
        // the 4-cube's channel indices.
        let m5 = cube_map(5);
        let (s, l) = m5.route_into(PortModel::AllPort, NodeId(0), NodeId(7), &mut memo);
        assert_eq!(
            memo.channels(s, l),
            m5.route(PortModel::AllPort, NodeId(0), NodeId(7))
                .as_slice()
        );
        assert_eq!(memo.len(), 1, "stale 4-cube entries were dropped");
        // A different router *type* over a same-hash value also restamps.
        let t = Torus::of(4, 2);
        let tmap = ChannelMap::new(TorusRouter::new(t));
        let (s, l) = tmap.route_into(
            PortModel::AllPort,
            t.node_at(&[0, 0]),
            t.node_at(&[2, 1]),
            &mut memo,
        );
        assert_eq!(
            memo.channels(s, l),
            tmap.route(PortModel::AllPort, t.node_at(&[0, 0]), t.node_at(&[2, 1]))
                .as_slice()
        );
    }

    #[test]
    fn labels_distinguish_virtuals() {
        let map = cube_map(3);
        assert_eq!(map.label(map.external(NodeId(0b010), Dim(0))), "010--0→");
        assert_eq!(map.label(map.consumption(NodeId(3))), "cons(011)");
        assert_eq!(map.label(map.injection(NodeId(3))), "inj(011)");
    }

    #[test]
    fn multi_lane_indices_are_dense_and_decode() {
        let cube = Cube::of(3);
        let map = ChannelMap::new(Ecube::with_lanes(cube, Resolution::HighToLow, 4));
        assert_eq!(map.lanes(), 4);
        assert_eq!(map.class_size(), 4, "Ecube lanes form one class");
        assert_eq!(map.links(), 3 * 8);
        assert_eq!(map.externals(), 3 * 8 * 4);
        assert_eq!(map.len(), 3 * 8 * 4 + 2 * 8);
        let mut seen = vec![false; map.externals()];
        for v in cube.nodes() {
            for d in cube.dims() {
                for lane in 0..4u8 {
                    let ch = map.external_lane(v, d, lane);
                    assert!(!seen[ch]);
                    seen[ch] = true;
                    assert_eq!(map.external_coords(ch), (v, d));
                    assert_eq!(map.lane_of(ch), lane);
                    // One class: every lane's representative is lane 0.
                    assert_eq!(map.class_rep(ch), map.external(v, d));
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn torus_lane_classes_split_at_the_multiplier() {
        let t = Torus::of(4, 2);
        let map = ChannelMap::new(TorusRouter::with_lane_multiplier(t, 2));
        assert_eq!(map.lanes(), 4);
        assert_eq!(map.class_size(), 2, "two dateline classes of two lanes");
        let v = t.node_at(&[0, 0]);
        let p = Dim(0);
        let base = map.external(v, p);
        // Lanes {0, 1} share representative lane 0; lanes {2, 3} share
        // representative lane 2 — classes never bleed into each other.
        assert_eq!(map.class_rep(base), base);
        assert_eq!(map.class_rep(base + 1), base);
        assert_eq!(map.class_rep(base + 2), base + 2);
        assert_eq!(map.class_rep(base + 3), base + 2);
    }

    #[test]
    fn multi_lane_labels_are_lane_qualified() {
        let cube = Cube::of(3);
        let map = ChannelMap::new(Ecube::with_lanes(cube, Resolution::HighToLow, 2));
        let ch = map.external_lane(NodeId(0b010), Dim(0), 1);
        assert_eq!(map.label(ch), "010--0v1→");
        assert_eq!(map.label(map.consumption(NodeId(3))), "cons(011)");
    }

    #[test]
    fn dateline_routes_nominate_the_high_class_representative() {
        let t = Torus::of(5, 1);
        let map = ChannelMap::new(TorusRouter::with_lane_multiplier(t, 2));
        // 4 → 1 along +x crosses the dateline on its first hop: hops
        // after the wrap ride the high lane class, whose representative
        // is lane m = 2 of the 4 lanes.
        let route = map.route(PortModel::AllPort, t.node_at(&[4]), t.node_at(&[1]));
        assert_eq!(route.len(), 2);
        let lanes: Vec<u8> = route.iter().map(|&c| map.lane_of(c)).collect();
        assert_eq!(lanes, vec![0, 2]);
        // A non-wrapping route stays on the low class representative.
        let route = map.route(PortModel::AllPort, t.node_at(&[0]), t.node_at(&[2]));
        assert!(route.iter().all(|&c| map.lane_of(c) == 0));
    }
}
