//! Channel-level view of a routed topology for the simulator.
//!
//! Every directed external channel gets a dense index (the topology's own
//! `channel_index` bijection); under the one-port model two *virtual*
//! channels per node are appended — an injection channel (a node
//! transmits at most one message at a time) and a consumption channel (it
//! receives at most one at a time). A message's path is the optional
//! injection channel, the router's external channels, and the optional
//! consumption channel; the worm holds all of them from head acquisition
//! to tail drain, so one-port serialization falls out of the ordinary
//! channel-contention machinery.
//!
//! The map is generic over any [`Router`]: the engine, trace
//! reconstruction, and the flit-level validator all index channels
//! through it and never assume hypercube address arithmetic.

use hcube::{Dim, NodeId, Router, Topology};
use hypercast::PortModel;

/// Dense indexing for the external and virtual channels of a routed
/// topology.
///
/// Layout: externals occupy `0..externals()` exactly as the topology's
/// `channel_index` defines; consumption channels follow at
/// `externals() + v`; injection channels at `externals() + nodes + v`.
#[derive(Clone, Copy, Debug)]
pub struct ChannelMap<R: Router> {
    router: R,
    topo: R::Topo,
    externals: usize,
    nodes: usize,
}

impl<R: Router> ChannelMap<R> {
    /// Builds the channel map for `router`'s topology.
    #[must_use]
    pub fn new(router: R) -> ChannelMap<R> {
        let topo = router.topology();
        ChannelMap {
            router,
            topo,
            externals: topo.channel_count(),
            nodes: topo.node_count(),
        }
    }

    /// The topology descriptor the map indexes.
    #[must_use]
    pub fn topology(&self) -> R::Topo {
        self.topo
    }

    /// The router whose routes the map wraps.
    #[must_use]
    pub fn router(&self) -> &R {
        &self.router
    }

    /// Total number of channel slots (externals + 2·N virtuals).
    #[must_use]
    pub fn len(&self) -> usize {
        self.externals + 2 * self.nodes
    }

    /// Whether the map is empty (never true for a valid topology).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of directed external channels (the topology's own count).
    #[must_use]
    pub fn externals(&self) -> usize {
        self.externals
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Index of the directed external channel leaving `from` on `port`.
    #[inline]
    #[must_use]
    pub fn external(&self, from: NodeId, port: Dim) -> usize {
        self.topo.channel_index(from, port)
    }

    /// Decodes an external channel index back to `(from, port)`.
    ///
    /// # Panics
    /// May panic (or return garbage coordinates) if `ch` is a virtual
    /// channel index; callers check [`is_virtual`](Self::is_virtual).
    #[inline]
    #[must_use]
    pub fn external_coords(&self, ch: usize) -> (NodeId, Dim) {
        debug_assert!(ch < self.externals);
        self.topo.channel_coords(ch)
    }

    /// The coordinate dimension an external channel travels in.
    #[inline]
    #[must_use]
    pub fn dim_of(&self, ch: usize) -> u8 {
        let (_, port) = self.topo.channel_coords(ch);
        self.topo.port_dim(port)
    }

    /// Number of coordinate dimensions of the underlying topology.
    #[inline]
    #[must_use]
    pub fn dimensions(&self) -> u8 {
        self.topo.dimensions()
    }

    /// Human-readable label of a coordinate dimension (delegates to
    /// [`Topology::dim_label`]).
    #[must_use]
    pub fn dim_label(&self, d: u8) -> String {
        self.topo.dim_label(d)
    }

    /// Index of node `v`'s virtual consumption channel.
    #[inline]
    #[must_use]
    pub fn consumption(&self, v: NodeId) -> usize {
        self.externals + v.0 as usize
    }

    /// Index of node `v`'s virtual injection channel.
    #[inline]
    #[must_use]
    pub fn injection(&self, v: NodeId) -> usize {
        self.externals + self.nodes + v.0 as usize
    }

    /// Whether a channel index refers to a virtual (zero-latency) channel.
    #[inline]
    #[must_use]
    pub fn is_virtual(&self, idx: usize) -> bool {
        idx >= self.externals
    }

    /// Human-readable label of a channel index: the topology's own label
    /// for externals, `inj(v)` / `cons(v)` for virtuals.
    #[must_use]
    pub fn label(&self, ch: usize) -> String {
        if ch < self.externals {
            self.topo.channel_label(ch)
        } else if ch < self.externals + self.nodes {
            let v = NodeId((ch - self.externals) as u32);
            format!("cons({})", self.topo.node_label(v))
        } else {
            let v = NodeId((ch - self.externals - self.nodes) as u32);
            format!("inj({})", self.topo.node_label(v))
        }
    }

    /// The channel sequence a `src → dst` message occupies under the
    /// given port model: the router's deterministic external route,
    /// wrapped in the virtual injection/consumption channels when
    /// one-port.
    #[must_use]
    pub fn route(&self, port_model: PortModel, src: NodeId, dst: NodeId) -> Vec<usize> {
        let mut hops = Vec::new();
        self.router.route_hops(src, dst, &mut hops);
        let mut channels = Vec::with_capacity(hops.len() + 2);
        if port_model == PortModel::OnePort {
            channels.push(self.injection(src));
        }
        for (v, p) in hops {
            channels.push(self.external(v, p));
        }
        if port_model == PortModel::OnePort {
            channels.push(self.consumption(dst));
        }
        channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcube::{Cube, Ecube, Resolution, Torus, TorusRouter};

    fn cube_map(n: u8) -> ChannelMap<Ecube> {
        ChannelMap::new(Ecube::new(Cube::of(n), Resolution::HighToLow))
    }

    #[test]
    fn indices_are_dense_and_disjoint() {
        let cube = Cube::of(3);
        let map = cube_map(3);
        assert_eq!(map.len(), 3 * 8 + 2 * 8);
        let mut seen = vec![false; map.len()];
        for v in cube.nodes() {
            for d in cube.dims() {
                let i = map.external(v, d);
                assert!(!map.is_virtual(i));
                assert!(!seen[i]);
                seen[i] = true;
                assert_eq!(map.external_coords(i), (v, d));
                assert_eq!(map.dim_of(i), d.0);
            }
        }
        for v in cube.nodes() {
            for i in [map.consumption(v), map.injection(v)] {
                assert!(map.is_virtual(i));
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn all_port_route_is_externals_only() {
        let map = cube_map(4);
        let route = map.route(PortModel::AllPort, NodeId(0b0101), NodeId(0b1110));
        assert_eq!(route.len(), 3);
        assert!(route.iter().all(|&c| !map.is_virtual(c)));
    }

    #[test]
    fn one_port_route_wraps_with_virtuals() {
        let map = cube_map(4);
        let route = map.route(PortModel::OnePort, NodeId(0b0101), NodeId(0b1110));
        assert_eq!(route.len(), 5);
        assert_eq!(route[0], map.injection(NodeId(0b0101)));
        assert_eq!(*route.last().unwrap(), map.consumption(NodeId(0b1110)));
        assert!(route[1..4].iter().all(|&c| !map.is_virtual(c)));
    }

    #[test]
    fn single_hop_route() {
        let map = cube_map(4);
        let route = map.route(PortModel::AllPort, NodeId(0), NodeId(0b1000));
        assert_eq!(route, vec![map.external(NodeId(0), Dim(3))]);
    }

    #[test]
    fn torus_map_routes_through_the_trait() {
        let t = Torus::of(4, 2);
        let map = ChannelMap::new(TorusRouter::new(t));
        assert_eq!(map.externals(), 16 * 8);
        assert_eq!(map.len(), 16 * 8 + 2 * 16);
        let route = map.route(PortModel::AllPort, t.node_at(&[0, 0]), t.node_at(&[2, 1]));
        assert_eq!(
            route.len() as u32,
            t.distance(t.node_at(&[0, 0]), t.node_at(&[2, 1]))
        );
        assert!(route.iter().all(|&c| !map.is_virtual(c)));
        // One-port wraps exactly like the cube map does.
        let route = map.route(PortModel::OnePort, t.node_at(&[0, 0]), t.node_at(&[1, 0]));
        assert_eq!(route[0], map.injection(t.node_at(&[0, 0])));
        assert_eq!(*route.last().unwrap(), map.consumption(t.node_at(&[1, 0])));
    }

    #[test]
    fn labels_distinguish_virtuals() {
        let map = cube_map(3);
        assert_eq!(map.label(map.external(NodeId(0b010), Dim(0))), "010--0→");
        assert_eq!(map.label(map.consumption(NodeId(3))), "cons(011)");
        assert_eq!(map.label(map.injection(NodeId(3))), "inj(011)");
    }
}
