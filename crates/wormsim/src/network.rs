//! Channel-level view of the hypercube for the simulator.
//!
//! Every directed external channel gets a dense index; under the one-port
//! model two *virtual* channels per node are added — an injection channel
//! (a node transmits at most one message at a time) and a consumption
//! channel (it receives at most one at a time). A message's path is the
//! optional injection channel, the E-cube external channels, and the
//! optional consumption channel; the worm holds all of them from head
//! acquisition to tail drain, so one-port serialization falls out of the
//! ordinary channel-contention machinery.

use hcube::{Cube, Dim, NodeId, Path, Resolution};
use hypercast::PortModel;

/// Dense indexing for external and virtual channels of a cube.
#[derive(Clone, Copy, Debug)]
pub struct ChannelMap {
    n: u8,
    externals: usize,
    nodes: usize,
}

impl ChannelMap {
    /// Builds the channel map for `cube`.
    #[must_use]
    pub fn new(cube: Cube) -> ChannelMap {
        ChannelMap {
            n: cube.dimension(),
            externals: cube.channel_count(),
            nodes: cube.node_count(),
        }
    }

    /// Total number of channel slots (externals + 2·N virtuals).
    #[must_use]
    pub fn len(&self) -> usize {
        self.externals + 2 * self.nodes
    }

    /// Whether the map is empty (never true for a valid cube).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the directed external channel leaving `from` in `dim`.
    #[inline]
    #[must_use]
    pub fn external(&self, from: NodeId, dim: Dim) -> usize {
        from.0 as usize * self.n as usize + dim.0 as usize
    }

    /// Index of node `v`'s virtual consumption channel.
    #[inline]
    #[must_use]
    pub fn consumption(&self, v: NodeId) -> usize {
        self.externals + v.0 as usize
    }

    /// Index of node `v`'s virtual injection channel.
    #[inline]
    #[must_use]
    pub fn injection(&self, v: NodeId) -> usize {
        self.externals + self.nodes + v.0 as usize
    }

    /// Whether a channel index refers to a virtual (zero-latency) channel.
    #[inline]
    #[must_use]
    pub fn is_virtual(&self, idx: usize) -> bool {
        idx >= self.externals
    }

    /// The channel sequence a `src → dst` message occupies under the given
    /// routing resolution and port model.
    #[must_use]
    pub fn route(
        &self,
        resolution: Resolution,
        port_model: PortModel,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<usize> {
        let path = Path::new(resolution, src, dst);
        let mut channels = Vec::with_capacity(path.hops() as usize + 2);
        if port_model == PortModel::OnePort {
            channels.push(self.injection(src));
        }
        for arc in path.arcs() {
            channels.push(self.external(arc.from, arc.dim));
        }
        if port_model == PortModel::OnePort {
            channels.push(self.consumption(dst));
        }
        channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_disjoint() {
        let cube = Cube::of(3);
        let map = ChannelMap::new(cube);
        assert_eq!(map.len(), 3 * 8 + 2 * 8);
        let mut seen = vec![false; map.len()];
        for v in cube.nodes() {
            for d in cube.dims() {
                let i = map.external(v, d);
                assert!(!map.is_virtual(i));
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        for v in cube.nodes() {
            for i in [map.consumption(v), map.injection(v)] {
                assert!(map.is_virtual(i));
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn all_port_route_is_externals_only() {
        let map = ChannelMap::new(Cube::of(4));
        let route = map.route(
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0b0101),
            NodeId(0b1110),
        );
        assert_eq!(route.len(), 3);
        assert!(route.iter().all(|&c| !map.is_virtual(c)));
    }

    #[test]
    fn one_port_route_wraps_with_virtuals() {
        let map = ChannelMap::new(Cube::of(4));
        let route = map.route(
            Resolution::HighToLow,
            PortModel::OnePort,
            NodeId(0b0101),
            NodeId(0b1110),
        );
        assert_eq!(route.len(), 5);
        assert_eq!(route[0], map.injection(NodeId(0b0101)));
        assert_eq!(*route.last().unwrap(), map.consumption(NodeId(0b1110)));
        assert!(route[1..4].iter().all(|&c| !map.is_virtual(c)));
    }

    #[test]
    fn single_hop_route() {
        let map = ChannelMap::new(Cube::of(4));
        let route = map.route(
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            NodeId(0b1000),
        );
        assert_eq!(route, vec![map.external(NodeId(0), Dim(3))]);
    }
}
