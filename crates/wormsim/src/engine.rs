//! The discrete-event wormhole simulation engine.
//!
//! The engine executes a *dependency workload*: a set of messages, each
//! of which becomes eligible once a set of earlier messages has been
//! delivered (multicast trees, reductions, or arbitrary traffic). Each
//! message is simulated at channel granularity:
//!
//! 1. After its dependencies deliver, the sending processor spends
//!    `t_send_sw` (serialized per node when `cpu_serialized_startup`).
//! 2. The worm's header then acquires the channels of its route in order,
//!    paying `t_hop` per external channel; if a channel is busy the worm
//!    *blocks in place*, holding everything acquired so far — wormhole
//!    semantics — and queues FIFO on the busy channel.
//! 3. After the last acquisition the payload drains in `bytes · t_byte`;
//!    all held channels release at drain completion (tail-pass
//!    approximation, see DESIGN.md) and delivery completes `t_recv_sw`
//!    later.
//!
//! The engine is fully deterministic: integer time, FIFO queues, and a
//! sequence-numbered event heap.

use crate::network::ChannelMap;
use crate::params::SimParams;
use crate::time::SimTime;
use hcube::{Cube, NodeId, Resolution};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One message of a dependency workload.
#[derive(Clone, Debug)]
pub struct DepMessage {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload length in bytes.
    pub bytes: u32,
    /// Indices (into the workload vector) of messages that must be
    /// *delivered* before this message's send processing may start.
    pub deps: Vec<usize>,
    /// Earliest absolute time the send processing may start.
    pub min_start: SimTime,
}

/// Per-message outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageResult {
    /// Time the worm entered the network (after software startup).
    pub injected: SimTime,
    /// Time the tail drained at the destination router.
    pub network_done: SimTime,
    /// Time the destination processor holds the payload
    /// (`network_done + t_recv_sw`).
    pub delivered: SimTime,
    /// Total time spent blocked waiting for busy channels (external
    /// contention and one-port serialization combined).
    pub blocked_time: SimTime,
    /// Blocking episodes on *external* channels — genuine wormhole
    /// channel contention.
    pub blocks: u32,
    /// Blocking episodes on virtual injection/consumption channels —
    /// intended one-port serialization, not contention.
    pub port_waits: u32,
}

/// Aggregate network statistics of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Time blocked on external channels (contention).
    pub blocked_time: SimTime,
    /// External-channel blocking episodes (contention).
    pub blocks: u64,
    /// Time blocked on virtual channels (one-port serialization).
    pub port_wait_time: SimTime,
    /// Virtual-channel blocking episodes.
    pub port_waits: u64,
    /// Completion time of the last delivery.
    pub makespan: SimTime,
}

/// Outcome of [`simulate`].
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-message results, indexed like the input workload.
    pub messages: Vec<MessageResult>,
    /// Aggregate statistics.
    pub stats: NetStats,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Event {
    /// All dependencies of the message are delivered; start send
    /// processing.
    Eligible(usize),
    /// The message attempts to acquire channel `hop` of its route.
    TryAcquire(usize, usize),
    /// The message's tail has drained; release channels and deliver.
    Complete(usize),
}

#[derive(Clone, Debug, Default)]
struct ChannelState {
    holder: Option<usize>,
    /// FIFO of (message, hop) pairs waiting for this channel.
    queue: VecDeque<(usize, usize)>,
}

struct MsgState {
    route: Vec<usize>,
    pending_deps: usize,
    dependents: Vec<usize>,
    eligible_at: SimTime,
    injected: SimTime,
    wait_since: SimTime,
    blocked_time: SimTime,
    blocks: u32,
    port_waits: u32,
    delivered: Option<SimTime>,
}

/// Runs a dependency workload through the wormhole network model.
///
/// ```
/// use hcube::{Cube, NodeId, Resolution};
/// use hypercast::PortModel;
/// use wormsim::{simulate, DepMessage, SimParams, SimTime};
///
/// // A two-stage forward: 0 → 4, then 4 → 6 after delivery.
/// let workload = vec![
///     DepMessage { src: NodeId(0), dst: NodeId(4), bytes: 1024,
///                  deps: vec![], min_start: SimTime::ZERO },
///     DepMessage { src: NodeId(4), dst: NodeId(6), bytes: 1024,
///                  deps: vec![0], min_start: SimTime::ZERO },
/// ];
/// let params = SimParams::ncube2(PortModel::AllPort);
/// let run = simulate(Cube::of(3), Resolution::HighToLow, &params, &workload);
/// assert!(run.messages[1].injected >= run.messages[0].delivered);
/// assert_eq!(run.stats.blocks, 0);
/// ```
///
/// # Panics
/// Panics on malformed workloads: self-sends, out-of-range dependency
/// indices, or dependency cycles (messages that never become eligible).
#[must_use]
pub fn simulate(
    cube: Cube,
    resolution: Resolution,
    params: &SimParams,
    workload: &[DepMessage],
) -> RunResult {
    let map = ChannelMap::new(cube);
    let mut channels: Vec<ChannelState> = (0..map.len()).map(|_| ChannelState::default()).collect();

    let mut msgs: Vec<MsgState> = workload
        .iter()
        .map(|m| {
            assert_ne!(m.src, m.dst, "self-send in workload");
            MsgState {
                route: map.route(resolution, params.port_model, m.src, m.dst),
                pending_deps: m.deps.len(),
                dependents: Vec::new(),
                eligible_at: m.min_start,
                injected: SimTime::ZERO,
                wait_since: SimTime::ZERO,
                blocked_time: SimTime::ZERO,
                blocks: 0,
                port_waits: 0,
                delivered: None,
            }
        })
        .collect();
    for (i, m) in workload.iter().enumerate() {
        for &d in &m.deps {
            assert!(d < workload.len(), "dependency index out of range");
            msgs[d].dependents.push(i);
        }
    }

    // Event heap: (time, seq, event); seq makes ordering fully
    // deterministic for simultaneous events.
    let mut heap: BinaryHeap<Reverse<(SimTime, u64, usize, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<_>, seq: &mut u64, t: SimTime, e: Event| {
        let (kind, a, b) = match e {
            Event::Eligible(m) => (0usize, m, 0usize),
            Event::TryAcquire(m, h) => (1, m, h),
            Event::Complete(m) => (2, m, 0),
        };
        heap.push(Reverse((t, *seq, kind * (1 << 30) + a, b)));
        *seq += 1;
    };

    for (i, m) in workload.iter().enumerate() {
        if m.deps.is_empty() {
            push(&mut heap, &mut seq, m.min_start, Event::Eligible(i));
        }
    }

    // Per-node CPU availability for serialized send startup.
    let mut cpu_free: Vec<SimTime> = vec![SimTime::ZERO; cube.node_count()];
    let mut stats = NetStats::default();
    let mut completed = 0usize;

    while let Some(Reverse((t, _, code, hop))) = heap.pop() {
        let kind = code >> 30;
        let m = code & ((1 << 30) - 1);
        match kind {
            0 => {
                // Eligible: run send software, then inject.
                let src = workload[m].src.0 as usize;
                let start = if params.cpu_serialized_startup {
                    let s = t.max(cpu_free[src]);
                    cpu_free[src] = s + params.t_send_sw;
                    s
                } else {
                    t
                };
                let inject = start + params.t_send_sw;
                msgs[m].injected = inject;
                push(&mut heap, &mut seq, inject, Event::TryAcquire(m, 0));
            }
            1 => {
                // TryAcquire channel `hop` of msg `m`.
                let ch = msgs[m].route[hop];
                if channels[ch].holder.is_none() {
                    channels[ch].holder = Some(m);
                    let hop_cost = if map.is_virtual(ch) { SimTime::ZERO } else { params.t_hop };
                    let arrive = t + hop_cost;
                    if hop + 1 < msgs[m].route.len() {
                        push(&mut heap, &mut seq, arrive, Event::TryAcquire(m, hop + 1));
                    } else {
                        let drain = arrive + params.t_byte * u64::from(workload[m].bytes);
                        push(&mut heap, &mut seq, drain, Event::Complete(m));
                    }
                } else {
                    // Block in place: keep held channels, queue FIFO.
                    // A block at hop 0 holds nothing upstream — it is
                    // source-side port serialization (Theorem 3's benign
                    // case), not network contention.
                    msgs[m].wait_since = t;
                    if map.is_virtual(ch) || hop == 0 {
                        msgs[m].port_waits += 1;
                        stats.port_waits += 1;
                    } else {
                        msgs[m].blocks += 1;
                        stats.blocks += 1;
                    }
                    channels[ch].queue.push_back((m, hop));
                }
            }
            2 => {
                // Complete: release the whole route, deliver, wake deps.
                let route = std::mem::take(&mut msgs[m].route);
                for &ch in &route {
                    debug_assert_eq!(channels[ch].holder, Some(m));
                    channels[ch].holder = None;
                    if let Some((w, whop)) = channels[ch].queue.pop_front() {
                        let waited = t.saturating_sub(msgs[w].wait_since);
                        msgs[w].blocked_time += waited;
                        if map.is_virtual(ch) || whop == 0 {
                            stats.port_wait_time += waited;
                        } else {
                            stats.blocked_time += waited;
                        }
                        push(&mut heap, &mut seq, t, Event::TryAcquire(w, whop));
                    }
                }
                msgs[m].route = route;
                let delivered = t + params.t_recv_sw;
                msgs[m].delivered = Some(delivered);
                stats.makespan = stats.makespan.max(delivered);
                completed += 1;
                let dependents = std::mem::take(&mut msgs[m].dependents);
                for &d in &dependents {
                    msgs[d].pending_deps -= 1;
                    if msgs[d].pending_deps == 0 {
                        let at = msgs[d].eligible_at.max(delivered);
                        push(&mut heap, &mut seq, at, Event::Eligible(d));
                    }
                }
                msgs[m].dependents = dependents;
            }
            _ => unreachable!(),
        }
    }

    assert_eq!(
        completed,
        workload.len(),
        "workload contains a dependency cycle or unsatisfiable message"
    );

    let messages = msgs
        .iter()
        .map(|s| {
            let delivered = s.delivered.expect("all messages completed");
            MessageResult {
                injected: s.injected,
                network_done: delivered - params.t_recv_sw,
                delivered,
                blocked_time: s.blocked_time,
                blocks: s.blocks,
                port_waits: s.port_waits,
            }
        })
        .collect();
    RunResult { messages, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercast::PortModel;

    fn msg(src: u32, dst: u32, bytes: u32, deps: Vec<usize>) -> DepMessage {
        DepMessage {
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            deps,
            min_start: SimTime::ZERO,
        }
    }

    fn run(n: u8, params: &SimParams, workload: &[DepMessage]) -> RunResult {
        simulate(Cube::of(n), Resolution::HighToLow, params, workload)
    }

    #[test]
    fn single_unicast_matches_latency_formula() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let r = run(4, &p, &[msg(0b0101, 0b1110, 4096, vec![])]);
        assert_eq!(r.messages[0].delivered, p.unicast_latency(3, 4096));
        assert_eq!(r.messages[0].blocks, 0);
    }

    #[test]
    fn latency_is_nearly_distance_insensitive() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let near = run(6, &p, &[msg(0, 1, 4096, vec![])]).messages[0].delivered;
        let far = run(6, &p, &[msg(0, 0b111111, 4096, vec![])]).messages[0].delivered;
        assert_eq!(far - near, p.t_hop * 5);
        // The 5-hop difference is under 1% of the total latency.
        assert!((far - near).as_ns() * 100 < near.as_ns());
    }

    #[test]
    fn same_source_shared_channel_is_a_port_wait() {
        // Both messages need channel 0→0b100 as their *first* hop: this
        // is Theorem 3's benign case — source-side serialization.
        let p = SimParams::ncube2(PortModel::AllPort);
        let r = run(
            3,
            &p,
            &[msg(0, 0b100, 4096, vec![]), msg(0, 0b101, 4096, vec![])],
        );
        let a = r.messages[0];
        let b = r.messages[1];
        // Second message still trails the first by the drain time…
        assert!(b.delivered >= a.delivered + p.t_byte * 4096 - p.t_recv_sw);
        // …but is classified as a port wait, not network contention.
        assert_eq!(b.blocks, 0);
        assert_eq!(b.port_waits, 1);
        assert_eq!(r.stats.blocks, 0);
        assert!(r.stats.port_wait_time > SimTime::ZERO);
    }

    #[test]
    fn mid_path_shared_channel_is_real_contention() {
        // msg0: 0b000→0b011 (hops 0→0b010, 0b010→0b011).
        // msg1: 0b110→0b011 (hops 0b110→0b010, 0b010→0b011): collides on
        // the *second* hop's channel 0b010→0b011 while holding its first.
        let p = SimParams::ncube2(PortModel::AllPort);
        let r = run(
            3,
            &p,
            &[msg(0b000, 0b011, 4096, vec![]), msg(0b110, 0b011, 4096, vec![])],
        );
        let loser = &r.messages[1];
        assert_eq!(loser.blocks, 1);
        assert!(r.stats.blocked_time > SimTime::ZERO);
        assert!(loser.delivered >= r.messages[0].delivered + p.t_byte * 4096 - p.t_recv_sw);
    }

    #[test]
    fn disjoint_messages_run_in_parallel() {
        let p = SimParams::ncube2(PortModel::AllPort);
        // From different sources to different subcubes: fully parallel.
        let r = run(
            3,
            &p,
            &[msg(0, 0b100, 4096, vec![]), msg(0b001, 0b011, 4096, vec![])],
        );
        assert_eq!(r.messages[0].delivered, p.unicast_latency(1, 4096));
        assert_eq!(r.messages[1].delivered, p.unicast_latency(1, 4096));
        assert_eq!(r.stats.blocks, 0);
    }

    #[test]
    fn cpu_startup_serializes_two_sends_from_one_node() {
        let p = SimParams::ncube2(PortModel::AllPort);
        // Distinct channels, so only CPU startup separates them.
        let r = run(
            3,
            &p,
            &[msg(0, 0b100, 4096, vec![]), msg(0, 0b010, 4096, vec![])],
        );
        assert_eq!(r.messages[1].injected - r.messages[0].injected, p.t_send_sw);
        assert_eq!(r.stats.blocks, 0);
    }

    #[test]
    fn one_port_serializes_whole_transmissions() {
        let mut p = SimParams::ncube2(PortModel::OnePort);
        p.cpu_serialized_startup = false; // isolate the port effect
        let r = run(
            3,
            &p,
            &[msg(0, 0b100, 4096, vec![]), msg(0, 0b010, 4096, vec![])],
        );
        // The second transmission waits for the injection channel until
        // the first drains completely.
        let drain = p.t_byte * 4096;
        assert!(r.messages[1].delivered >= r.messages[0].delivered + drain - p.t_recv_sw);
        assert_eq!(r.messages[1].port_waits, 1, "injection-channel wait");
        assert_eq!(r.messages[1].blocks, 0, "not external contention");
    }

    #[test]
    fn one_port_serializes_reception() {
        let mut p = SimParams::ncube2(PortModel::OnePort);
        p.cpu_serialized_startup = false;
        // Two senders target the same destination from different sides.
        let r = run(
            3,
            &p,
            &[msg(0b001, 0b011, 4096, vec![]), msg(0b111, 0b011, 4096, vec![])],
        );
        let early = r.messages.iter().map(|m| m.delivered).min().unwrap();
        let late = r.messages.iter().map(|m| m.delivered).max().unwrap();
        assert!(late >= early + p.t_byte * 4096);
    }

    #[test]
    fn dependencies_gate_injection() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let r = run(
            3,
            &p,
            &[msg(0, 0b100, 4096, vec![]), msg(0b100, 0b110, 4096, vec![0])],
        );
        // The forward cannot start before delivery of the inbound.
        assert!(r.messages[1].injected >= r.messages[0].delivered + p.t_send_sw);
        assert_eq!(
            r.messages[1].delivered,
            r.messages[0].delivered + p.unicast_latency(1, 4096)
        );
    }

    #[test]
    fn min_start_delays_sources() {
        let p = SimParams::ideal(PortModel::AllPort);
        let mut m = msg(0, 1, 10, vec![]);
        m.min_start = SimTime::from_us(5);
        let r = run(3, &p, &[m]);
        assert_eq!(r.messages[0].injected, SimTime::from_us(5));
    }

    #[test]
    fn deterministic_across_runs() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let workload: Vec<DepMessage> = (1..8u32).map(|d| msg(0, d, 4096, vec![])).collect();
        let a = run(3, &p, &workload);
        let b = run(3, &p, &workload);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn rejects_self_send() {
        let p = SimParams::ideal(PortModel::AllPort);
        let _ = run(3, &p, &[msg(1, 1, 10, vec![])]);
    }
}
