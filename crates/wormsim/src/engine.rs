//! The discrete-event wormhole simulation engine.
//!
//! The engine executes a *dependency workload*: a set of messages, each
//! of which becomes eligible once a set of earlier messages has been
//! delivered (multicast trees, reductions, or arbitrary traffic). Each
//! message is simulated at channel granularity:
//!
//! 1. After its dependencies deliver, the sending processor spends
//!    `t_send_sw` (serialized per node when `cpu_serialized_startup`).
//! 2. The worm's header then acquires the channels of its route in order,
//!    paying `t_hop` per external channel; if a channel is busy the worm
//!    *blocks in place*, holding everything acquired so far — wormhole
//!    semantics — and queues FIFO on the busy channel.
//! 3. After the last acquisition the payload drains in `bytes · t_byte`;
//!    all held channels release at drain completion (tail-pass
//!    approximation, see DESIGN.md) and delivery completes `t_recv_sw`
//!    later.
//!
//! ## Faults and the watchdog
//!
//! [`simulate_with_faults`] threads a [`FaultPlan`] through the run:
//! dead channels abort worms ([`Outcome::Failed`]), stall windows delay
//! acquisition, deadlines abort undelivered messages
//! ([`Outcome::TimedOut`]), and stuck channels wedge their waiters
//! forever. When the event heap drains with unfinished messages the
//! engine's *watchdog* examines the channel wait-for state and reports
//! [`SimError::Deadlock`] with the holder and waiter sets — the typed
//! replacement for silently dropping messages or spinning.
//!
//! The engine is fully deterministic: integer time, FIFO queues, and a
//! sequence-numbered event heap.

use crate::faults::FaultPlan;
use crate::network::ChannelMap;
use crate::params::SimParams;
use crate::time::SimTime;
use hcube::{Cube, Dim, NodeId, Resolution};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// One message of a dependency workload.
#[derive(Clone, Debug)]
pub struct DepMessage {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload length in bytes.
    pub bytes: u32,
    /// Indices (into the workload vector) of messages that must be
    /// *delivered* before this message's send processing may start.
    pub deps: Vec<usize>,
    /// Earliest absolute time the send processing may start.
    pub min_start: SimTime,
}

/// Why a message failed under fault injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultCause {
    /// The source or destination node is dead.
    DeadEndpoint,
    /// The worm's header reached a dead channel and aborted.
    DeadChannel,
    /// A dependency of this message failed or timed out, so it could
    /// never be sent.
    DependencyFailed,
}

/// Per-message terminal state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The payload reached the destination processor.
    Delivered,
    /// The message was lost to a fault; see the cause.
    Failed(FaultCause),
    /// The message missed its deadline and aborted, releasing every
    /// channel it held (the recovery path that distinguishes a timeout
    /// from a deadlock).
    TimedOut,
}

impl Outcome {
    /// Whether the message was delivered.
    #[must_use]
    pub fn is_delivered(self) -> bool {
        self == Outcome::Delivered
    }
}

/// Per-message outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageResult {
    /// Time the worm entered the network (after software startup);
    /// [`SimTime::ZERO`] if the message failed before injection.
    pub injected: SimTime,
    /// Time the tail drained at the destination router. For a message
    /// that was not delivered, the time it aborted.
    pub network_done: SimTime,
    /// Time the destination processor holds the payload
    /// (`network_done + t_recv_sw`). For a message that was not
    /// delivered, the time it aborted.
    pub delivered: SimTime,
    /// Total time spent blocked waiting for busy channels (external
    /// contention and one-port serialization combined).
    pub blocked_time: SimTime,
    /// Blocking episodes on *external* channels — genuine wormhole
    /// channel contention (stall-window retries count here too).
    pub blocks: u32,
    /// Blocking episodes on virtual injection/consumption channels —
    /// intended one-port serialization, not contention.
    pub port_waits: u32,
    /// How the message ended.
    pub outcome: Outcome,
}

/// Aggregate network statistics of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Time blocked on external channels (contention).
    pub blocked_time: SimTime,
    /// External-channel blocking episodes (contention).
    pub blocks: u64,
    /// Time blocked on virtual channels (one-port serialization).
    pub port_wait_time: SimTime,
    /// Virtual-channel blocking episodes.
    pub port_waits: u64,
    /// Completion time of the last delivery.
    pub makespan: SimTime,
    /// Messages that ended [`Outcome::Failed`].
    pub failed: u64,
    /// Messages that ended [`Outcome::TimedOut`].
    pub timed_out: u64,
}

/// Outcome of [`simulate`].
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-message results, indexed like the input workload.
    pub messages: Vec<MessageResult>,
    /// Aggregate statistics.
    pub stats: NetStats,
}

impl RunResult {
    /// Number of messages that were delivered.
    #[must_use]
    pub fn delivered_count(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.outcome.is_delivered())
            .count()
    }

    /// Delivered fraction of the workload (1.0 for an empty workload).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages.is_empty() {
            1.0
        } else {
            self.delivered_count() as f64 / self.messages.len() as f64
        }
    }
}

/// Typed failure modes of a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A workload message sends to itself.
    SelfSend {
        /// Index of the offending message.
        index: usize,
    },
    /// A dependency index points outside the workload.
    DependencyOutOfRange {
        /// Index of the offending message.
        index: usize,
        /// The out-of-range dependency value.
        dep: usize,
    },
    /// The dependency graph contains a cycle (or depends on something
    /// unsatisfiable), so some messages can never become eligible.
    DependencyCycle {
        /// Messages that never became eligible.
        stuck: Vec<usize>,
    },
    /// The network wedged: the event heap drained while worms were still
    /// blocked on channels that will never be released.
    Deadlock {
        /// Simulated time of the last event before the wedge.
        at: SimTime,
        /// Messages holding at least one channel another message waits
        /// on (a stuck channel's phantom holder is not a message and is
        /// not listed).
        holders: Vec<usize>,
        /// Messages waiting in some channel's queue.
        waiters: Vec<usize>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SelfSend { index } => {
                write!(f, "self-send in workload (message {index})")
            }
            SimError::DependencyOutOfRange { index, dep } => {
                write!(
                    f,
                    "dependency index out of range (message {index} depends on {dep})"
                )
            }
            SimError::DependencyCycle { stuck } => write!(
                f,
                "workload contains a dependency cycle or unsatisfiable message ({} stuck)",
                stuck.len()
            ),
            SimError::Deadlock {
                at,
                holders,
                waiters,
            } => write!(
                f,
                "deadlock at {at}: {} waiter(s) {:?} blocked behind holder(s) {:?}",
                waiters.len(),
                waiters,
                holders
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Event {
    /// All dependencies of the message are delivered; start send
    /// processing.
    Eligible(usize),
    /// The message attempts to acquire channel `hop` of its route.
    TryAcquire(usize, usize),
    /// The message's tail has drained; release channels and deliver.
    Complete(usize),
    /// The message's deadline passes; abort it if undelivered.
    Deadline(usize),
}

/// Phantom holder index marking channels stuck by the fault plan.
const PHANTOM: usize = usize::MAX;

#[derive(Clone, Debug, Default)]
struct ChannelState {
    holder: Option<usize>,
    /// FIFO of (message, hop) pairs waiting for this channel.
    queue: VecDeque<(usize, usize)>,
}

struct MsgState {
    route: Vec<usize>,
    pending_deps: usize,
    dependents: Vec<usize>,
    eligible_at: SimTime,
    injected: SimTime,
    wait_since: SimTime,
    blocked_time: SimTime,
    blocks: u32,
    port_waits: u32,
    /// Number of route channels currently held.
    acquired: usize,
    /// Channel whose queue this message currently sits in, if blocked.
    waiting_on: Option<usize>,
    /// Terminal state, once reached; time in `finished_at`.
    outcome: Option<Outcome>,
    finished_at: SimTime,
}

struct Engine<'a> {
    cube: Cube,
    map: ChannelMap,
    params: &'a SimParams,
    plan: &'a FaultPlan,
    workload: &'a [DepMessage],
    channels: Vec<ChannelState>,
    msgs: Vec<MsgState>,
    /// Per-external/virtual-channel dead flag, indexed like `channels`.
    dead: Vec<bool>,
    heap: BinaryHeap<Reverse<(SimTime, u64, usize, usize)>>,
    seq: u64,
    cpu_free: Vec<SimTime>,
    stats: NetStats,
    finished: usize,
    last_time: SimTime,
}

impl<'a> Engine<'a> {
    fn new(
        cube: Cube,
        resolution: Resolution,
        params: &'a SimParams,
        workload: &'a [DepMessage],
        plan: &'a FaultPlan,
    ) -> Result<Engine<'a>, SimError> {
        let map = ChannelMap::new(cube);
        let mut msgs = Vec::with_capacity(workload.len());
        for (i, m) in workload.iter().enumerate() {
            if m.src == m.dst {
                return Err(SimError::SelfSend { index: i });
            }
            msgs.push(MsgState {
                route: map.route(resolution, params.port_model, m.src, m.dst),
                pending_deps: m.deps.len(),
                dependents: Vec::new(),
                eligible_at: m.min_start,
                injected: SimTime::ZERO,
                wait_since: SimTime::ZERO,
                blocked_time: SimTime::ZERO,
                blocks: 0,
                port_waits: 0,
                acquired: 0,
                waiting_on: None,
                outcome: None,
                finished_at: SimTime::ZERO,
            });
        }
        for (i, m) in workload.iter().enumerate() {
            for &d in &m.deps {
                if d >= workload.len() {
                    return Err(SimError::DependencyOutOfRange { index: i, dep: d });
                }
                msgs[d].dependents.push(i);
            }
        }

        let mut channels: Vec<ChannelState> =
            (0..map.len()).map(|_| ChannelState::default()).collect();
        let mut dead = vec![false; map.len()];
        if !plan.is_empty() {
            for v in cube.nodes() {
                for d in cube.dims() {
                    let i = map.external(v, d);
                    dead[i] = plan.channel_dead(v, d);
                    if plan.channel_stuck(v, d) {
                        channels[i].holder = Some(PHANTOM);
                    }
                }
                if plan.node_dead(v) {
                    dead[map.injection(v)] = true;
                    dead[map.consumption(v)] = true;
                }
            }
        }

        Ok(Engine {
            cube,
            map,
            params,
            plan,
            workload,
            channels,
            msgs,
            dead,
            heap: BinaryHeap::new(),
            seq: 0,
            cpu_free: vec![SimTime::ZERO; cube.node_count()],
            stats: NetStats::default(),
            finished: 0,
            last_time: SimTime::ZERO,
        })
    }

    fn push(&mut self, t: SimTime, e: Event) {
        let (kind, a, b) = match e {
            Event::Eligible(m) => (0usize, m, 0usize),
            Event::TryAcquire(m, h) => (1, m, h),
            Event::Complete(m) => (2, m, 0),
            Event::Deadline(m) => (3, m, 0),
        };
        self.heap
            .push(Reverse((t, self.seq, kind * (1 << 28) + a, b)));
        self.seq += 1;
    }

    /// Decodes an external channel index back to `(from, dim)`.
    fn external_coords(&self, ch: usize) -> (NodeId, Dim) {
        let n = self.cube.dimension() as usize;
        (NodeId((ch / n) as u32), Dim((ch % n) as u8))
    }

    /// If `ch` is inside a stall window at `t`, when it reopens.
    fn stalled_until(&self, ch: usize, t: SimTime) -> Option<SimTime> {
        if self.plan.is_empty() || self.map.is_virtual(ch) {
            return None;
        }
        let (v, d) = self.external_coords(ch);
        self.plan.stalled_until(v, d, t)
    }

    /// Marks `m` finished, records stats, and cascades failure to
    /// dependents that now can never be sent.
    fn finish(&mut self, m: usize, t: SimTime, outcome: Outcome) {
        let mut stack = vec![(m, outcome)];
        while let Some((i, out)) = stack.pop() {
            if self.msgs[i].outcome.is_some() {
                continue;
            }
            self.msgs[i].outcome = Some(out);
            self.msgs[i].finished_at = t;
            self.finished += 1;
            match out {
                Outcome::Delivered => {}
                Outcome::Failed(_) => self.stats.failed += 1,
                Outcome::TimedOut => self.stats.timed_out += 1,
            }
            if out != Outcome::Delivered {
                // Dependents of a lost message can never start.
                for d in 0..self.msgs[i].dependents.len() {
                    let dep = self.msgs[i].dependents[d];
                    stack.push((dep, Outcome::Failed(FaultCause::DependencyFailed)));
                }
            }
        }
    }

    /// Releases `msgs[m].route[..count]`, waking the first waiter of each
    /// channel.
    fn release_channels(&mut self, m: usize, count: usize, t: SimTime) {
        let route = std::mem::take(&mut self.msgs[m].route);
        for &ch in &route[..count] {
            debug_assert_eq!(self.channels[ch].holder, Some(m));
            self.channels[ch].holder = None;
            if let Some((w, whop)) = self.channels[ch].queue.pop_front() {
                self.msgs[w].waiting_on = None;
                let waited = t.saturating_sub(self.msgs[w].wait_since);
                self.msgs[w].blocked_time += waited;
                if self.map.is_virtual(ch) || whop == 0 {
                    self.stats.port_wait_time += waited;
                } else {
                    self.stats.blocked_time += waited;
                }
                self.push(t, Event::TryAcquire(w, whop));
            }
        }
        self.msgs[m].route = route;
        self.msgs[m].acquired = 0;
    }

    /// Aborts an in-flight (or not-yet-started) message: releases held
    /// channels, leaves any wait queue, finishes with `outcome`.
    fn abort(&mut self, m: usize, t: SimTime, outcome: Outcome) {
        let held = self.msgs[m].acquired;
        if held > 0 {
            self.release_channels(m, held, t);
        }
        if let Some(ch) = self.msgs[m].waiting_on.take() {
            self.channels[ch].queue.retain(|&(w, _)| w != m);
        }
        self.finish(m, t, outcome);
    }

    fn run(&mut self) -> Result<(), SimError> {
        // Pre-fail messages with dead endpoints (cascades to dependents).
        if !self.plan.is_empty() {
            for i in 0..self.workload.len() {
                let m = &self.workload[i];
                if self.plan.node_dead(m.src) || self.plan.node_dead(m.dst) {
                    self.finish(i, m.min_start, Outcome::Failed(FaultCause::DeadEndpoint));
                }
            }
        }
        for i in 0..self.workload.len() {
            if self.msgs[i].outcome.is_none() {
                if self.workload[i].deps.is_empty() {
                    self.push(self.workload[i].min_start, Event::Eligible(i));
                }
                if let Some(d) = self.plan.deadline(i) {
                    self.push(d, Event::Deadline(i));
                }
            }
        }

        while let Some(Reverse((t, _, code, hop))) = self.heap.pop() {
            self.last_time = t;
            let kind = code >> 28;
            let m = code & ((1 << 28) - 1);
            if self.msgs[m].outcome.is_some() {
                continue; // stale event for an aborted/failed message
            }
            match kind {
                0 => self.on_eligible(m, t),
                1 => self.on_try_acquire(m, hop, t),
                2 => self.on_complete(m, t),
                3 => self.abort(m, t, Outcome::TimedOut),
                _ => unreachable!("corrupt event encoding"),
            }
        }

        if self.finished == self.workload.len() {
            return Ok(());
        }
        // Watchdog: the heap drained with unfinished messages. Blocked
        // worms mean a deadlock (stuck channels / lost releases); with no
        // blocked worm the dependency graph itself is unsatisfiable.
        let waiters: Vec<usize> = (0..self.msgs.len())
            .filter(|&i| self.msgs[i].outcome.is_none() && self.msgs[i].waiting_on.is_some())
            .collect();
        if waiters.is_empty() {
            let stuck: Vec<usize> = (0..self.msgs.len())
                .filter(|&i| self.msgs[i].outcome.is_none())
                .collect();
            return Err(SimError::DependencyCycle { stuck });
        }
        let mut holders: Vec<usize> = self
            .channels
            .iter()
            .filter(|c| !c.queue.is_empty())
            .filter_map(|c| c.holder)
            .filter(|&h| h != PHANTOM)
            .collect();
        holders.sort_unstable();
        holders.dedup();
        Err(SimError::Deadlock {
            at: self.last_time,
            holders,
            waiters,
        })
    }

    fn on_eligible(&mut self, m: usize, t: SimTime) {
        let src = self.workload[m].src.0 as usize;
        let start = if self.params.cpu_serialized_startup {
            let s = t.max(self.cpu_free[src]);
            self.cpu_free[src] = s + self.params.t_send_sw;
            s
        } else {
            t
        };
        let inject = start + self.params.t_send_sw;
        self.msgs[m].injected = inject;
        self.push(inject, Event::TryAcquire(m, 0));
    }

    fn on_try_acquire(&mut self, m: usize, hop: usize, t: SimTime) {
        let ch = self.msgs[m].route[hop];
        if self.dead[ch] {
            // The header hit a dead channel: abort-and-discard.
            self.msgs[m].acquired = hop;
            self.abort(m, t, Outcome::Failed(FaultCause::DeadChannel));
            return;
        }
        if let Some(reopen) = self.stalled_until(ch, t) {
            // Transient stall: the channel refuses acquisition until the
            // window closes. Counts as contention blocking.
            let waited = reopen - t;
            self.msgs[m].blocked_time += waited;
            if self.map.is_virtual(ch) || hop == 0 {
                self.msgs[m].port_waits += 1;
                self.stats.port_waits += 1;
                self.stats.port_wait_time += waited;
            } else {
                self.msgs[m].blocks += 1;
                self.stats.blocks += 1;
                self.stats.blocked_time += waited;
            }
            self.push(reopen, Event::TryAcquire(m, hop));
            return;
        }
        if self.channels[ch].holder.is_none() {
            self.channels[ch].holder = Some(m);
            self.msgs[m].acquired = hop + 1;
            let hop_cost = if self.map.is_virtual(ch) {
                SimTime::ZERO
            } else {
                self.params.t_hop
            };
            let arrive = t + hop_cost;
            if hop + 1 < self.msgs[m].route.len() {
                self.push(arrive, Event::TryAcquire(m, hop + 1));
            } else {
                let drain = arrive + self.params.t_byte * u64::from(self.workload[m].bytes);
                self.push(drain, Event::Complete(m));
            }
        } else {
            // Block in place: keep held channels, queue FIFO.
            // A block at hop 0 holds nothing upstream — it is
            // source-side port serialization (Theorem 3's benign
            // case), not network contention.
            self.msgs[m].wait_since = t;
            self.msgs[m].waiting_on = Some(ch);
            if self.map.is_virtual(ch) || hop == 0 {
                self.msgs[m].port_waits += 1;
                self.stats.port_waits += 1;
            } else {
                self.msgs[m].blocks += 1;
                self.stats.blocks += 1;
            }
            self.channels[ch].queue.push_back((m, hop));
        }
    }

    fn on_complete(&mut self, m: usize, t: SimTime) {
        let held = self.msgs[m].acquired;
        self.release_channels(m, held, t);
        let delivered = t + self.params.t_recv_sw;
        self.finish(m, delivered, Outcome::Delivered);
        self.stats.makespan = self.stats.makespan.max(delivered);
        let dependents = std::mem::take(&mut self.msgs[m].dependents);
        for &d in &dependents {
            if self.msgs[d].outcome.is_some() {
                continue;
            }
            self.msgs[d].pending_deps -= 1;
            if self.msgs[d].pending_deps == 0 {
                let at = self.msgs[d].eligible_at.max(delivered);
                self.push(at, Event::Eligible(d));
            }
        }
        self.msgs[m].dependents = dependents;
    }

    fn into_result(self) -> RunResult {
        let t_recv = self.params.t_recv_sw;
        let messages = self
            .msgs
            .iter()
            .map(|s| {
                let outcome = s.outcome.expect("every message reached a terminal state");
                let network_done = if outcome.is_delivered() {
                    s.finished_at - t_recv
                } else {
                    s.finished_at
                };
                MessageResult {
                    injected: s.injected,
                    network_done,
                    delivered: s.finished_at,
                    blocked_time: s.blocked_time,
                    blocks: s.blocks,
                    port_waits: s.port_waits,
                    outcome,
                }
            })
            .collect();
        RunResult {
            messages,
            stats: self.stats,
        }
    }
}

/// Runs a dependency workload through the wormhole network model with a
/// fault plan injected.
///
/// Per-message outcomes land in [`MessageResult::outcome`]; lost
/// messages have [`Outcome::Failed`] or [`Outcome::TimedOut`] and their
/// `delivered` field records the abort time. A wedged network (stuck
/// channels with no deadline to rescue the waiters) is a typed
/// [`SimError::Deadlock`] from the watchdog, not a hang.
///
/// # Errors
/// [`SimError::SelfSend`] / [`SimError::DependencyOutOfRange`] /
/// [`SimError::DependencyCycle`] for malformed workloads, and
/// [`SimError::Deadlock`] when blocked worms can never progress.
pub fn simulate_with_faults(
    cube: Cube,
    resolution: Resolution,
    params: &SimParams,
    workload: &[DepMessage],
    plan: &FaultPlan,
) -> Result<RunResult, SimError> {
    let mut engine = Engine::new(cube, resolution, params, workload, plan)?;
    engine.run()?;
    Ok(engine.into_result())
}

/// Fault-free [`simulate_with_faults`]: same typed errors, no plan.
///
/// # Errors
/// See [`simulate_with_faults`]; without faults only the malformed
/// workload variants can occur.
pub fn try_simulate(
    cube: Cube,
    resolution: Resolution,
    params: &SimParams,
    workload: &[DepMessage],
) -> Result<RunResult, SimError> {
    simulate_with_faults(cube, resolution, params, workload, &FaultPlan::none())
}

/// Runs a dependency workload through the wormhole network model.
///
/// ```
/// use hcube::{Cube, NodeId, Resolution};
/// use hypercast::PortModel;
/// use wormsim::{simulate, DepMessage, SimParams, SimTime};
///
/// // A two-stage forward: 0 → 4, then 4 → 6 after delivery.
/// let workload = vec![
///     DepMessage { src: NodeId(0), dst: NodeId(4), bytes: 1024,
///                  deps: vec![], min_start: SimTime::ZERO },
///     DepMessage { src: NodeId(4), dst: NodeId(6), bytes: 1024,
///                  deps: vec![0], min_start: SimTime::ZERO },
/// ];
/// let params = SimParams::ncube2(PortModel::AllPort);
/// let run = simulate(Cube::of(3), Resolution::HighToLow, &params, &workload);
/// assert!(run.messages[1].injected >= run.messages[0].delivered);
/// assert_eq!(run.stats.blocks, 0);
/// ```
///
/// # Panics
/// Panics on malformed workloads: self-sends, out-of-range dependency
/// indices, or dependency cycles (messages that never become eligible).
/// Use [`try_simulate`] for a `Result` instead.
#[must_use]
pub fn simulate(
    cube: Cube,
    resolution: Resolution,
    params: &SimParams,
    workload: &[DepMessage],
) -> RunResult {
    match try_simulate(cube, resolution, params, workload) {
        Ok(run) => run,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercast::PortModel;

    fn msg(src: u32, dst: u32, bytes: u32, deps: Vec<usize>) -> DepMessage {
        DepMessage {
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            deps,
            min_start: SimTime::ZERO,
        }
    }

    fn run(n: u8, params: &SimParams, workload: &[DepMessage]) -> RunResult {
        simulate(Cube::of(n), Resolution::HighToLow, params, workload)
    }

    #[test]
    fn single_unicast_matches_latency_formula() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let r = run(4, &p, &[msg(0b0101, 0b1110, 4096, vec![])]);
        assert_eq!(r.messages[0].delivered, p.unicast_latency(3, 4096));
        assert_eq!(r.messages[0].blocks, 0);
        assert_eq!(r.messages[0].outcome, Outcome::Delivered);
        assert_eq!(r.delivery_ratio(), 1.0);
    }

    #[test]
    fn latency_is_nearly_distance_insensitive() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let near = run(6, &p, &[msg(0, 1, 4096, vec![])]).messages[0].delivered;
        let far = run(6, &p, &[msg(0, 0b111111, 4096, vec![])]).messages[0].delivered;
        assert_eq!(far - near, p.t_hop * 5);
        // The 5-hop difference is under 1% of the total latency.
        assert!((far - near).as_ns() * 100 < near.as_ns());
    }

    #[test]
    fn same_source_shared_channel_is_a_port_wait() {
        // Both messages need channel 0→0b100 as their *first* hop: this
        // is Theorem 3's benign case — source-side serialization.
        let p = SimParams::ncube2(PortModel::AllPort);
        let r = run(
            3,
            &p,
            &[msg(0, 0b100, 4096, vec![]), msg(0, 0b101, 4096, vec![])],
        );
        let a = r.messages[0];
        let b = r.messages[1];
        // Second message still trails the first by the drain time…
        assert!(b.delivered >= a.delivered + p.t_byte * 4096 - p.t_recv_sw);
        // …but is classified as a port wait, not network contention.
        assert_eq!(b.blocks, 0);
        assert_eq!(b.port_waits, 1);
        assert_eq!(r.stats.blocks, 0);
        assert!(r.stats.port_wait_time > SimTime::ZERO);
    }

    #[test]
    fn mid_path_shared_channel_is_real_contention() {
        // msg0: 0b000→0b011 (hops 0→0b010, 0b010→0b011).
        // msg1: 0b110→0b011 (hops 0b110→0b010, 0b010→0b011): collides on
        // the *second* hop's channel 0b010→0b011 while holding its first.
        let p = SimParams::ncube2(PortModel::AllPort);
        let r = run(
            3,
            &p,
            &[
                msg(0b000, 0b011, 4096, vec![]),
                msg(0b110, 0b011, 4096, vec![]),
            ],
        );
        let loser = &r.messages[1];
        assert_eq!(loser.blocks, 1);
        assert!(r.stats.blocked_time > SimTime::ZERO);
        assert!(loser.delivered >= r.messages[0].delivered + p.t_byte * 4096 - p.t_recv_sw);
    }

    #[test]
    fn disjoint_messages_run_in_parallel() {
        let p = SimParams::ncube2(PortModel::AllPort);
        // From different sources to different subcubes: fully parallel.
        let r = run(
            3,
            &p,
            &[msg(0, 0b100, 4096, vec![]), msg(0b001, 0b011, 4096, vec![])],
        );
        assert_eq!(r.messages[0].delivered, p.unicast_latency(1, 4096));
        assert_eq!(r.messages[1].delivered, p.unicast_latency(1, 4096));
        assert_eq!(r.stats.blocks, 0);
    }

    #[test]
    fn cpu_startup_serializes_two_sends_from_one_node() {
        let p = SimParams::ncube2(PortModel::AllPort);
        // Distinct channels, so only CPU startup separates them.
        let r = run(
            3,
            &p,
            &[msg(0, 0b100, 4096, vec![]), msg(0, 0b010, 4096, vec![])],
        );
        assert_eq!(r.messages[1].injected - r.messages[0].injected, p.t_send_sw);
        assert_eq!(r.stats.blocks, 0);
    }

    #[test]
    fn one_port_serializes_whole_transmissions() {
        let mut p = SimParams::ncube2(PortModel::OnePort);
        p.cpu_serialized_startup = false; // isolate the port effect
        let r = run(
            3,
            &p,
            &[msg(0, 0b100, 4096, vec![]), msg(0, 0b010, 4096, vec![])],
        );
        // The second transmission waits for the injection channel until
        // the first drains completely.
        let drain = p.t_byte * 4096;
        assert!(r.messages[1].delivered >= r.messages[0].delivered + drain - p.t_recv_sw);
        assert_eq!(r.messages[1].port_waits, 1, "injection-channel wait");
        assert_eq!(r.messages[1].blocks, 0, "not external contention");
    }

    #[test]
    fn one_port_serializes_reception() {
        let mut p = SimParams::ncube2(PortModel::OnePort);
        p.cpu_serialized_startup = false;
        // Two senders target the same destination from different sides.
        let r = run(
            3,
            &p,
            &[
                msg(0b001, 0b011, 4096, vec![]),
                msg(0b111, 0b011, 4096, vec![]),
            ],
        );
        let early = r.messages.iter().map(|m| m.delivered).min().unwrap();
        let late = r.messages.iter().map(|m| m.delivered).max().unwrap();
        assert!(late >= early + p.t_byte * 4096);
    }

    #[test]
    fn dependencies_gate_injection() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let r = run(
            3,
            &p,
            &[
                msg(0, 0b100, 4096, vec![]),
                msg(0b100, 0b110, 4096, vec![0]),
            ],
        );
        // The forward cannot start before delivery of the inbound.
        assert!(r.messages[1].injected >= r.messages[0].delivered + p.t_send_sw);
        assert_eq!(
            r.messages[1].delivered,
            r.messages[0].delivered + p.unicast_latency(1, 4096)
        );
    }

    #[test]
    fn min_start_delays_sources() {
        let p = SimParams::ideal(PortModel::AllPort);
        let mut m = msg(0, 1, 10, vec![]);
        m.min_start = SimTime::from_us(5);
        let r = run(3, &p, &[m]);
        assert_eq!(r.messages[0].injected, SimTime::from_us(5));
    }

    #[test]
    fn deterministic_across_runs() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let workload: Vec<DepMessage> = (1..8u32).map(|d| msg(0, d, 4096, vec![])).collect();
        let a = run(3, &p, &workload);
        let b = run(3, &p, &workload);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn rejects_self_send() {
        let p = SimParams::ideal(PortModel::AllPort);
        let _ = run(3, &p, &[msg(1, 1, 10, vec![])]);
    }

    #[test]
    fn typed_errors_for_malformed_workloads() {
        let p = SimParams::ideal(PortModel::AllPort);
        let cube = Cube::of(3);
        let r = try_simulate(cube, Resolution::HighToLow, &p, &[msg(1, 1, 10, vec![])]);
        assert_eq!(r.unwrap_err(), SimError::SelfSend { index: 0 });
        let r = try_simulate(cube, Resolution::HighToLow, &p, &[msg(0, 1, 10, vec![9])]);
        assert_eq!(
            r.unwrap_err(),
            SimError::DependencyOutOfRange { index: 0, dep: 9 }
        );
        // Two messages depending on each other: a cycle.
        let r = try_simulate(
            cube,
            Resolution::HighToLow,
            &p,
            &[msg(0, 1, 10, vec![1]), msg(2, 3, 10, vec![0])],
        );
        match r.unwrap_err() {
            SimError::DependencyCycle { stuck } => assert_eq!(stuck, vec![0, 1]),
            e => panic!("expected cycle, got {e}"),
        }
    }

    // ----- fault injection ----------------------------------------------

    fn with_faults(
        n: u8,
        params: &SimParams,
        workload: &[DepMessage],
        plan: &FaultPlan,
    ) -> Result<RunResult, SimError> {
        simulate_with_faults(Cube::of(n), Resolution::HighToLow, params, workload, plan)
    }

    #[test]
    fn empty_plan_is_identical_to_fault_free_run() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let workload: Vec<DepMessage> = (1..8u32).map(|d| msg(0, d, 4096, vec![])).collect();
        let a = run(3, &p, &workload);
        let b = with_faults(3, &p, &workload, &FaultPlan::none()).unwrap();
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn dead_channel_fails_the_worm_and_releases_holds() {
        let p = SimParams::ncube2(PortModel::AllPort);
        // 0 → 0b011 routes 0 → 0b010 → 0b011 (high-to-low). Kill the
        // second hop: the worm aborts after holding the first channel,
        // which a subsequent message must then be able to acquire.
        let mut plan = FaultPlan::none();
        plan.fail_link(NodeId(0b010), Dim(0));
        let r = with_faults(
            3,
            &p,
            &[msg(0, 0b011, 4096, vec![]), msg(0, 0b010, 4096, vec![])],
            &plan,
        )
        .unwrap();
        assert_eq!(
            r.messages[0].outcome,
            Outcome::Failed(FaultCause::DeadChannel)
        );
        assert_eq!(r.messages[1].outcome, Outcome::Delivered);
        assert_eq!(r.stats.failed, 1);
        assert!(r.delivery_ratio() < 1.0);
    }

    #[test]
    fn dead_endpoint_fails_immediately_and_cascades() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let mut plan = FaultPlan::none();
        plan.fail_node(NodeId(0b100));
        let r = with_faults(
            3,
            &p,
            &[
                msg(0, 0b100, 4096, vec![]),      // dest dead
                msg(0b100, 0b110, 4096, vec![0]), // source dead AND dep failed
                msg(0b110, 0b111, 4096, vec![1]), // transitively lost
                msg(0, 0b001, 4096, vec![]),      // unaffected
            ],
            &plan,
        )
        .unwrap();
        assert_eq!(
            r.messages[0].outcome,
            Outcome::Failed(FaultCause::DeadEndpoint)
        );
        assert!(matches!(r.messages[1].outcome, Outcome::Failed(_)));
        assert_eq!(
            r.messages[2].outcome,
            Outcome::Failed(FaultCause::DependencyFailed)
        );
        assert_eq!(r.messages[3].outcome, Outcome::Delivered);
        assert_eq!(r.delivered_count(), 1);
    }

    #[test]
    fn routing_through_a_dead_node_fails_the_worm() {
        let p = SimParams::ncube2(PortModel::AllPort);
        // 0 → 0b011 passes through 0b010; killing that node (not an
        // endpoint) kills the route's channels.
        let mut plan = FaultPlan::none();
        plan.fail_node(NodeId(0b010));
        let r = with_faults(3, &p, &[msg(0, 0b011, 4096, vec![])], &plan).unwrap();
        assert_eq!(
            r.messages[0].outcome,
            Outcome::Failed(FaultCause::DeadChannel)
        );
    }

    #[test]
    fn transient_stall_delays_but_delivers() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let clean = run(3, &p, &[msg(0, 0b100, 4096, vec![])]);
        let mut plan = FaultPlan::none();
        // Stall the only hop across its acquisition time.
        plan.stall(NodeId(0), Dim(2), SimTime::ZERO, SimTime::from_us(500));
        let r = with_faults(3, &p, &[msg(0, 0b100, 4096, vec![])], &plan).unwrap();
        assert_eq!(r.messages[0].outcome, Outcome::Delivered);
        assert!(r.messages[0].delivered > clean.messages[0].delivered);
        assert!(r.messages[0].blocked_time >= SimTime::from_us(400));
    }

    #[test]
    fn stuck_channel_is_a_detected_deadlock() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let mut plan = FaultPlan::none();
        plan.stick(NodeId(0b010), Dim(0));
        // msg 0 holds 0→0b010 then queues forever on the stuck channel;
        // msg 1 queues behind msg 0's held channel.
        let err = with_faults(
            3,
            &p,
            &[msg(0, 0b011, 4096, vec![]), msg(0b100, 0b010, 4096, vec![])],
            &plan,
        )
        .unwrap_err();
        match err {
            SimError::Deadlock {
                holders, waiters, ..
            } => {
                assert_eq!(waiters, vec![0, 1]);
                assert_eq!(holders, vec![0], "msg 0 holds what msg 1 waits on");
            }
            e => panic!("expected deadlock, got {e}"),
        }
    }

    #[test]
    fn deadlock_detection_is_deterministic() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let mut plan = FaultPlan::none();
        plan.stick(NodeId(0b010), Dim(0));
        let workload = [msg(0, 0b011, 4096, vec![]), msg(0b100, 0b010, 4096, vec![])];
        let a = with_faults(3, &p, &workload, &plan).unwrap_err();
        let b = with_faults(3, &p, &workload, &plan).unwrap_err();
        assert_eq!(a, b);
    }

    #[test]
    fn deadline_rescues_a_wedged_worm_as_timeout() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let mut plan = FaultPlan::none();
        plan.stick(NodeId(0b010), Dim(0));
        plan.deadline_all(SimTime::from_ms(10));
        // Same wedge as above, but the deadline converts the deadlock
        // into TimedOut outcomes and the run completes.
        let r = with_faults(
            3,
            &p,
            &[msg(0, 0b011, 4096, vec![]), msg(0b100, 0b010, 4096, vec![])],
            &plan,
        )
        .unwrap();
        assert_eq!(r.messages[0].outcome, Outcome::TimedOut);
        assert_eq!(r.messages[0].delivered, SimTime::from_ms(10));
        assert_eq!(r.stats.timed_out, 2);
    }

    #[test]
    fn timeout_releases_channels_for_later_traffic() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let mut plan = FaultPlan::none();
        plan.stick(NodeId(0b010), Dim(0));
        // Only msg 0 gets a deadline; msg 1 wants the channel 0→0b010
        // that msg 0 holds while wedged, and starts after the timeout.
        plan.deadline_for(0, SimTime::from_ms(5));
        let mut late = msg(0, 0b010, 4096, vec![]);
        late.min_start = SimTime::from_ms(1);
        let r = with_faults(3, &p, &[msg(0, 0b011, 4096, vec![]), late], &plan).unwrap();
        assert_eq!(r.messages[0].outcome, Outcome::TimedOut);
        assert_eq!(r.messages[1].outcome, Outcome::Delivered);
        // Delivery happened only after the timeout released the channel.
        assert!(r.messages[1].delivered > SimTime::from_ms(5));
    }

    #[test]
    fn per_message_deadline_overrides_global() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let mut plan = FaultPlan::none();
        plan.deadline_all(SimTime::from_ns(1)); // brutally tight
        plan.deadline_for(0, SimTime::from_ms(100)); // rescue msg 0
        let r = with_faults(
            3,
            &p,
            &[msg(0, 0b100, 4096, vec![]), msg(0b001, 0b011, 4096, vec![])],
            &plan,
        )
        .unwrap();
        assert_eq!(r.messages[0].outcome, Outcome::Delivered);
        assert_eq!(r.messages[1].outcome, Outcome::TimedOut);
    }
}
