//! Simulation parameters and machine presets.

use crate::time::SimTime;
use hypercast::PortModel;

/// The timing model of a wormhole-routed hypercube node and network.
///
/// A unicast of `L` bytes over `h` hops that never blocks costs
///
/// ```text
/// t_send_sw  +  h · t_hop  +  L · t_byte  +  t_recv_sw
/// ```
///
/// matching the classic wormhole latency model (startup + almost
/// distance-insensitive network term). Channel contention adds waiting
/// time on top, computed by the discrete-event engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimParams {
    /// Software send startup, paid on the sending processor per message
    /// (message-passing library entry, DMA setup).
    pub t_send_sw: SimTime,
    /// Software receive overhead, paid at the destination before the
    /// payload is available (and before it can be forwarded).
    pub t_recv_sw: SimTime,
    /// Per-hop router latency for the worm's header.
    pub t_hop: SimTime,
    /// Per-byte channel transfer time (inverse bandwidth).
    pub t_byte: SimTime,
    /// The node port model. One-port adds virtual injection/consumption
    /// channels so that a node transmits (and consumes) at most one
    /// message at a time.
    pub port_model: PortModel,
    /// Whether the per-message send startup serializes on the sending
    /// CPU even when the port model would allow parallel transmission
    /// (true for real machines: the processor sets each DMA up in turn).
    pub cpu_serialized_startup: bool,
}

impl SimParams {
    /// Parameters calibrated to the published characteristics of the
    /// nCUBE-2 (the paper's testbed): ~75 µs software send startup,
    /// ~35 µs receive overhead, ~2 µs per hop, and 0.45 µs/byte
    /// (≈ 2.2 MB/s per DMA channel).
    ///
    /// These reproduce the regime the paper's delay figures live in —
    /// startup ≫ per-hop cost, and a 4096-byte payload dominated by the
    /// ≈ 1.84 ms transfer term. Absolute numbers are approximations of a
    /// 1993 machine; shapes, orderings and ratios are the reproduction
    /// target (see EXPERIMENTS.md).
    ///
    /// ```
    /// use hypercast::PortModel;
    /// use wormsim::SimParams;
    ///
    /// let p = SimParams::ncube2(PortModel::AllPort);
    /// // 3-hop 4 KB unicast ≈ 75 + 6 + 1843.2 + 35 µs.
    /// assert_eq!(p.unicast_latency(3, 4096).as_ns(), 1_959_200);
    /// ```
    #[must_use]
    pub fn ncube2(port_model: PortModel) -> SimParams {
        SimParams {
            t_send_sw: SimTime::from_us(75),
            t_recv_sw: SimTime::from_us(35),
            t_hop: SimTime::from_us(2),
            t_byte: SimTime::from_ns(450),
            port_model,
            cpu_serialized_startup: true,
        }
    }

    /// A hypothetical faster interconnect (lower startup, 10× bandwidth):
    /// used by the sensitivity ablation to show how the algorithms'
    /// ranking responds to the startup/bandwidth ratio.
    #[must_use]
    pub fn fast_net(port_model: PortModel) -> SimParams {
        SimParams {
            t_send_sw: SimTime::from_us(5),
            t_recv_sw: SimTime::from_us(2),
            t_hop: SimTime::from_ns(200),
            t_byte: SimTime::from_ns(45),
            port_model,
            cpu_serialized_startup: true,
        }
    }

    /// An idealized zero-software-overhead network, useful in unit tests
    /// where only the wormhole channel dynamics matter.
    #[must_use]
    pub fn ideal(port_model: PortModel) -> SimParams {
        SimParams {
            t_send_sw: SimTime::ZERO,
            t_recv_sw: SimTime::ZERO,
            t_hop: SimTime::from_ns(1),
            t_byte: SimTime::from_ns(1),
            port_model,
            cpu_serialized_startup: false,
        }
    }

    /// The no-contention latency of a single `bytes`-byte unicast over
    /// `hops` hops under these parameters.
    #[must_use]
    pub fn unicast_latency(&self, hops: u32, bytes: u32) -> SimTime {
        self.t_send_sw
            + self.t_hop * u64::from(hops)
            + self.t_byte * u64::from(bytes)
            + self.t_recv_sw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncube2_regime() {
        let p = SimParams::ncube2(PortModel::AllPort);
        // 4 KB transfer term ≈ 1.84 ms dominates startup.
        let transfer = p.t_byte * 4096;
        assert_eq!(transfer, SimTime::from_ns(1_843_200));
        assert!(transfer > p.t_send_sw * 10);
        // Distance insensitivity: 10 extra hops ≪ startup.
        assert!(p.t_hop * 10 < p.t_send_sw);
    }

    #[test]
    fn unicast_latency_formula() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let t = p.unicast_latency(3, 4096);
        assert_eq!(t.as_ns(), 75_000 + 3 * 2_000 + 4096 * 450 + 35_000);
    }

    #[test]
    fn presets_differ() {
        let a = SimParams::ncube2(PortModel::AllPort);
        let b = SimParams::fast_net(PortModel::AllPort);
        assert!(b.t_byte < a.t_byte);
        assert!(b.t_send_sw < a.t_send_sw);
    }
}
