//! A flit-level wormhole engine, used to validate the channel-holding
//! event model.
//!
//! The main engine ([`crate::engine`]) simulates at *channel* granularity
//! and releases a worm's entire route when the tail drains — the standard
//! approximation. This module simulates the textbook model exactly:
//! single-flit channel buffers, one flit moving per channel per cycle,
//! heads blocking in place with FIFO arbitration, and each channel
//! released the moment the *tail flit leaves it*.
//!
//! Calibration: with the event engine configured at `t_hop = t_byte = 1`
//! cycle and zero software overheads, an unblocked `h`-hop, `L`-flit worm
//! costs `h + L` there and `h + L − 1` cycles here — a uniform `+1`, so
//! the two models must agree *exactly* (mod the constant) whenever no
//! channel is contended. Under contention the event model is
//! conservative; the validation tests quantify by how much (see
//! `flit_vs_event` tests and EXPERIMENTS.md).
//!
//! This engine is deliberately minimal (all-port, no software costs, no
//! router pipeline depth): it exists to check the *contention dynamics*
//! of the fast model, not to replace it.

use crate::network::ChannelMap;
use hcube::{Cube, Ecube, NodeId, Resolution, Router};
use std::collections::VecDeque;

/// A message of a flit-level workload.
#[derive(Clone, Debug)]
pub struct FlitMessage {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node (must differ from `src`).
    pub dst: NodeId,
    /// Worm length in flits (≥ 1).
    pub flits: u32,
    /// Cycle at which the head first attempts injection.
    pub start_cycle: u64,
}

/// Per-message outcome of a flit-level run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlitResult {
    /// Cycle in which the tail flit was consumed at the destination.
    pub delivered_cycle: u64,
    /// Cycles the head spent blocked waiting for channels.
    pub blocked_cycles: u64,
}

struct MsgState {
    route: Vec<usize>,
    /// Route index of the head flit's channel, if in the network.
    head: Option<usize>,
    /// Route index of the tail-most occupied channel.
    tail: usize,
    /// Flits still queued at the source.
    at_source: u32,
    /// Flits consumed at the destination.
    consumed: u32,
    blocked_cycles: u64,
    waiting_on: Option<usize>,
    delivered: Option<u64>,
}

/// Runs a flit-level simulation on a hypercube (see [`simulate_flits_on`]
/// for the topology-generic entry point). Deterministic: messages are
/// processed in index order each cycle and channel grants are FIFO.
///
/// # Panics
/// On self-sends, zero-length worms, or workloads that exceed an internal
/// 100-million-cycle safety horizon (which would indicate a bug, since
/// wormhole E-cube routing is deadlock-free).
#[must_use]
pub fn simulate_flits(
    cube: Cube,
    resolution: Resolution,
    workload: &[FlitMessage],
) -> Vec<FlitResult> {
    simulate_flits_on(Ecube::new(cube, resolution), workload)
}

/// Runs a flit-level simulation on any routed topology. Deterministic:
/// messages are processed in index order each cycle and channel grants
/// are FIFO.
///
/// # Panics
/// On self-sends, zero-length worms, or workloads that exceed an internal
/// 100-million-cycle safety horizon (which would indicate a routing bug,
/// since the provided routers are deadlock-free).
#[must_use]
pub fn simulate_flits_on<R: Router>(router: R, workload: &[FlitMessage]) -> Vec<FlitResult> {
    let map = ChannelMap::new(router);
    let mut owner: Vec<Option<usize>> = vec![None; map.len()];
    let mut queue: Vec<VecDeque<usize>> = vec![VecDeque::new(); map.len()];

    let mut msgs: Vec<MsgState> = workload
        .iter()
        .map(|m| {
            assert_ne!(m.src, m.dst, "self-send in flit workload");
            assert!(m.flits >= 1, "zero-length worm");
            MsgState {
                route: map.route(hypercast::PortModel::AllPort, m.src, m.dst),
                head: None,
                tail: 0,
                at_source: m.flits,
                consumed: 0,
                blocked_cycles: 0,
                waiting_on: None,
                delivered: None,
            }
        })
        .collect();

    let mut remaining = msgs.len();
    let mut cycle: u64 = 0;
    while remaining > 0 {
        assert!(
            cycle < 100_000_000,
            "flit simulation exceeded safety horizon"
        );
        for (i, m) in msgs.iter_mut().enumerate() {
            if m.delivered.is_some() || workload[i].start_cycle > cycle {
                continue;
            }
            let total = workload[i].flits;
            match m.head {
                None => {
                    // Head still at the source: acquire the first channel.
                    let c0 = m.route[0];
                    try_acquire(i, c0, m, &mut owner, &mut queue);
                    if m.head == Some(0) {
                        m.at_source -= 1;
                    }
                }
                Some(h) => {
                    let last = m.route.len() - 1;
                    if h == last {
                        // Destination consumes one flit per cycle from the
                        // last buffer, and the pipeline shifts up.
                        m.consumed += 1;
                        shift_tail(i, m, total, &mut owner, &mut queue);
                        if m.consumed == total {
                            // Tail consumed: release everything still held.
                            for idx in m.tail..=last {
                                release(i, m.route[idx], &mut owner);
                            }
                            m.delivered = Some(cycle);
                            remaining -= 1;
                        }
                    } else {
                        // Advance the head one channel if possible.
                        let next = m.route[h + 1];
                        let before = m.head;
                        try_acquire_advance(i, next, m, &mut owner, &mut queue);
                        if m.head != before {
                            shift_tail(i, m, total, &mut owner, &mut queue);
                        }
                    }
                }
            }
        }
        cycle += 1;
    }

    msgs.iter()
        .map(|m| FlitResult {
            delivered_cycle: m.delivered.expect("all delivered"),
            blocked_cycles: m.blocked_cycles,
        })
        .collect()
}

/// FIFO acquisition of the message's first channel.
fn try_acquire(
    i: usize,
    ch: usize,
    m: &mut MsgState,
    owner: &mut [Option<usize>],
    queue: &mut [VecDeque<usize>],
) {
    let may_take = owner[ch].is_none() && queue[ch].front().is_none_or(|&w| w == i);
    if may_take {
        if queue[ch].front() == Some(&i) {
            queue[ch].pop_front();
        }
        owner[ch] = Some(i);
        m.head = Some(0);
        m.waiting_on = None;
    } else {
        if m.waiting_on != Some(ch) {
            queue[ch].push_back(i);
            m.waiting_on = Some(ch);
        }
        m.blocked_cycles += 1;
    }
}

/// FIFO acquisition of the next route channel by an in-network head.
fn try_acquire_advance(
    i: usize,
    ch: usize,
    m: &mut MsgState,
    owner: &mut [Option<usize>],
    queue: &mut [VecDeque<usize>],
) {
    let may_take = owner[ch].is_none() && queue[ch].front().is_none_or(|&w| w == i);
    if may_take {
        if queue[ch].front() == Some(&i) {
            queue[ch].pop_front();
        }
        owner[ch] = Some(i);
        m.head = Some(m.head.unwrap_or(0) + 1);
        m.waiting_on = None;
    } else {
        if m.waiting_on != Some(ch) {
            queue[ch].push_back(i);
            m.waiting_on = Some(ch);
        }
        m.blocked_cycles += 1;
    }
}

/// After the head (or the consumed slot) moved forward one position, the
/// packed pipeline advances: either a new flit injects at the tail, or
/// the tail channel is released (tail flit has left it).
fn shift_tail(
    i: usize,
    m: &mut MsgState,
    total: u32,
    owner: &mut [Option<usize>],
    queue: &mut [VecDeque<usize>],
) {
    let _ = queue;
    let in_network = total - m.at_source - m.consumed;
    if m.at_source > 0 {
        // A fresh flit fills the vacated tail buffer.
        m.at_source -= 1;
    } else if in_network > 0 {
        // No more source flits: the tail flit moved up, so the old tail
        // channel is released for waiters.
        release(i, m.route[m.tail], owner);
        m.tail += 1;
    }
}

fn release(i: usize, ch: usize, owner: &mut [Option<usize>]) {
    debug_assert_eq!(owner[ch], Some(i));
    owner[ch] = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, DepMessage};
    use crate::params::SimParams;
    use crate::time::SimTime;
    use hypercast::PortModel;

    fn fm(src: u32, dst: u32, flits: u32) -> FlitMessage {
        FlitMessage {
            src: NodeId(src),
            dst: NodeId(dst),
            flits,
            start_cycle: 0,
        }
    }

    /// Event-engine parameters equivalent to 1 cycle per hop and per flit,
    /// no software costs.
    fn cycle_params() -> SimParams {
        SimParams {
            t_send_sw: SimTime::ZERO,
            t_recv_sw: SimTime::ZERO,
            t_hop: SimTime::from_ns(1),
            t_byte: SimTime::from_ns(1),
            port_model: PortModel::AllPort,
            cpu_serialized_startup: false,
        }
    }

    #[test]
    fn unblocked_latency_is_hops_plus_flits_minus_one() {
        for (src, dst, flits) in [(0u32, 0b1u32, 1u32), (0, 0b111, 3), (0b0101, 0b1110, 16)] {
            let r = simulate_flits(Cube::of(4), Resolution::HighToLow, &[fm(src, dst, flits)]);
            let hops = NodeId(src).distance(NodeId(dst)) as u64;
            assert_eq!(
                r[0].delivered_cycle,
                hops + u64::from(flits) - 1,
                "{src}→{dst} × {flits}"
            );
            assert_eq!(r[0].blocked_cycles, 0);
        }
    }

    #[test]
    fn matches_event_engine_on_contention_free_workloads() {
        // Disjoint unicasts: event model = flit model + 1 cycle, exactly.
        let cube = Cube::of(4);
        let flit_w = vec![
            fm(0, 0b0011, 8),
            fm(0b1000, 0b1100, 5),
            fm(0b0100, 0b0110, 13),
        ];
        let event_w: Vec<DepMessage> = flit_w
            .iter()
            .map(|m| DepMessage {
                src: m.src,
                dst: m.dst,
                bytes: m.flits,
                deps: vec![],
                min_start: SimTime::ZERO,
            })
            .collect();
        let fr = simulate_flits(cube, Resolution::HighToLow, &flit_w);
        let er = simulate(cube, Resolution::HighToLow, &cycle_params(), &event_w);
        for (f, e) in fr.iter().zip(&er.messages) {
            assert_eq!(e.delivered.as_ns(), f.delivered_cycle + 1);
            assert_eq!(f.blocked_cycles, 0);
        }
    }

    #[test]
    fn tail_release_lets_followers_start_earlier_than_event_model() {
        // Two worms share only the FIRST channel of a 3-hop path; the
        // event model holds it until the leader fully drains, the flit
        // model releases it as soon as the leader's tail passes.
        let cube = Cube::of(4);
        let flit_w = vec![fm(0, 0b0111, 32), fm(0, 0b0100, 32)];
        // Leader path: 0→0100→0110→0111; follower: 0→0100. Shared channel
        // 0→0100 only (follower terminates there — same first channel).
        let fr = simulate_flits(cube, Resolution::HighToLow, &flit_w);
        let event_w: Vec<DepMessage> = flit_w
            .iter()
            .map(|m| DepMessage {
                src: m.src,
                dst: m.dst,
                bytes: m.flits,
                deps: vec![],
                min_start: SimTime::ZERO,
            })
            .collect();
        let er = simulate(cube, Resolution::HighToLow, &cycle_params(), &event_w);
        // Both models: follower blocked.
        assert!(fr[1].blocked_cycles > 0);
        assert!(er.messages[1].blocks + er.messages[1].port_waits > 0);
        // Flit model delivers the follower strictly earlier (tail-release
        // vs drain-release).
        assert!(
            fr[1].delivered_cycle + 1 < er.messages[1].delivered.as_ns(),
            "flit {} vs event {}",
            fr[1].delivered_cycle,
            er.messages[1].delivered.as_ns()
        );
        // The leader is unaffected.
        assert_eq!(er.messages[0].delivered.as_ns(), fr[0].delivered_cycle + 1);
    }

    #[test]
    fn head_of_line_blocking_holds_upstream_channels() {
        // B blocks on a channel held by A; C needs B's upstream channel
        // and must wait even though A never uses it — wormhole
        // head-of-line blocking, visible in both engines.
        let cube = Cube::of(3);
        // A: 010→011 (holds channel (010,d0)).
        // B: 110→011: path 110→010→011: blocks at (010,d0) while holding
        //    (110,d2).
        // C: 111→010: path 111→110? no: 111⊕010=101: dims 2,0:
        //    111→011→010 — doesn't use B's channel. Pick C: 100→010:
        //    100⊕010=110: dims 2,1: 100→000→010. Still not B's (110,d2).
        //    C: 111→100: 011: dims 1,0: 111→101→100. no. Use C needing
        //    (110,d2): any path entering 110 then dim 2: src with path
        //    …110→010: e.g. 111→010: computed above doesn't. Take
        //    C = 110→000? that's B's own source... Use C: 111→110→100?
        //    111⊕100=011 → dims 1,0: 111→101→100. Hmm. Channel (110,d2)
        //    goes 110→010. Paths through it must route dim 2 from 110:
        //    src=110 only (E-cube dim order high→low means dim 2 is
        //    corrected first, so only worms *originating* at 110 use it).
        //    So instead let C collide with B's holding of (010,d0)'s
        //    queue: C = 010→001: uses (010,d1)? 010⊕001=011: dims 1,0:
        //    010→000→001 — no. C = 000→011: 000→010→011 shares (010,d0)
        //    via (000,d1) first: it will queue behind B on (010,d0).
        let big = 64;
        let flit_w = vec![
            fm(0b010, 0b011, big),
            fm(0b110, 0b011, big),
            fm(0b000, 0b011, big),
        ];
        let fr = simulate_flits(cube, Resolution::HighToLow, &flit_w);
        // All three serialize on channel (010 → 011): deliveries are
        // spread by at least a worm length each.
        let mut times: Vec<u64> = fr.iter().map(|r| r.delivered_cycle).collect();
        times.sort_unstable();
        assert!(times[1] >= times[0] + u64::from(big));
        assert!(times[2] >= times[1] + u64::from(big));
    }

    #[test]
    fn start_cycles_delay_injection() {
        let r = simulate_flits(
            Cube::of(3),
            Resolution::HighToLow,
            &[FlitMessage {
                src: NodeId(0),
                dst: NodeId(1),
                flits: 4,
                start_cycle: 100,
            }],
        );
        assert_eq!(r[0].delivered_cycle, 100 + 1 + 4 - 1);
    }

    #[test]
    fn fifo_grant_order_is_respected() {
        // Two followers queue on the leader's first channel; the earlier
        // (lower-index) one must win.
        let flit_w = vec![fm(0, 0b100, 16), fm(0, 0b101, 16), fm(0, 0b110, 16)];
        let fr = simulate_flits(Cube::of(3), Resolution::HighToLow, &flit_w);
        assert!(fr[0].delivered_cycle < fr[1].delivered_cycle);
        assert!(fr[1].delivered_cycle < fr[2].delivered_cycle);
    }

    #[test]
    fn contention_free_multicast_trees_match_event_model() {
        // Full cross-model validation on a real W-sort tree: zero blocks
        // in both engines and identical (+1) per-message latencies,
        // *including* the dependency structure flattened away (heads
        // start when parents deliver — emulate with start_cycle).
        let cube = Cube::of(4);
        let dests: Vec<NodeId> = (1..12).map(NodeId).collect();
        let tree = hypercast::Algorithm::WSort
            .build(
                cube,
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests,
            )
            .unwrap();
        // Event run with cycle params.
        let mut inbound = std::collections::HashMap::new();
        for (i, u) in tree.unicasts.iter().enumerate() {
            inbound.insert(u.dst, i);
        }
        let event_w: Vec<DepMessage> = tree
            .unicasts
            .iter()
            .map(|u| DepMessage {
                src: u.src,
                dst: u.dst,
                bytes: 32,
                deps: inbound.get(&u.src).map(|&i| vec![i]).unwrap_or_default(),
                min_start: SimTime::ZERO,
            })
            .collect();
        let er = simulate(cube, Resolution::HighToLow, &cycle_params(), &event_w);
        // Flit run with each message starting when the event model says
        // its parent delivered (so both models see the same send times).
        let flit_w: Vec<FlitMessage> = tree
            .unicasts
            .iter()
            .map(|u| {
                let start = inbound
                    .get(&u.src)
                    .map(|&i| er.messages[i].delivered.as_ns())
                    .unwrap_or(0);
                FlitMessage {
                    src: u.src,
                    dst: u.dst,
                    flits: 32,
                    start_cycle: start,
                }
            })
            .collect();
        let fr = simulate_flits(cube, Resolution::HighToLow, &flit_w);
        for (i, (f, e)) in fr.iter().zip(&er.messages).enumerate() {
            assert_eq!(f.blocked_cycles, 0, "msg {i} blocked in flit model");
            let start = flit_w[i].start_cycle;
            // Same network latency modulo the +1 calibration constant.
            assert_eq!(
                f.delivered_cycle - start + 1,
                e.delivered.as_ns() - start,
                "msg {i}"
            );
        }
    }
}
