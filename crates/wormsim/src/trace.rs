//! Execution tracing: per-channel occupancy timelines and utilization
//! statistics.
//!
//! The engine's [`RunResult`] summarizes *when* messages arrived; a
//! [`ChannelTrace`] reconstructs *where they were* — which directed
//! channels each worm held, and for how long — enabling the utilization
//! accounting MultiSim-era studies reported and an ASCII occupancy
//! timeline for small runs.
//!
//! The trace is reconstructed from message results rather than recorded
//! inside the hot event loop: for an unblocked worm the occupancy of its
//! whole route is `[injected, network_done]`, and blocked intervals are
//! bounded by the same window, so the reconstruction is exact for
//! contention-free runs and a tight envelope otherwise.
//!
//! Reconstruction is topology-generic: channel indices and labels come
//! from the [`Router`]'s topology, so the same timeline renderer serves
//! the hypercube (`0101--3→`) and the torus (`2,1--d0+v1→`).

use crate::engine::{DepMessage, RunResult};
use crate::network::ChannelMap;
use crate::params::SimParams;
use crate::time::SimTime;
use hcube::{Cube, Ecube, Resolution, Router};
use std::fmt::Write as _;

/// One channel-holding interval of one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occupancy {
    /// Index of the message in the workload.
    pub message: usize,
    /// Dense channel index (see [`ChannelMap`]).
    pub channel: usize,
    /// When the worm acquired (at latest) the channel.
    pub from: SimTime,
    /// When the channel was released (tail drain).
    pub until: SimTime,
}

/// Reconstructed channel-occupancy view of a run.
#[derive(Clone, Debug)]
pub struct ChannelTrace {
    /// All occupancy intervals, ordered by message then hop.
    pub occupancies: Vec<Occupancy>,
    /// Total number of directed external channels in the topology.
    pub external_channels: usize,
    /// The run's makespan.
    pub makespan: SimTime,
    /// Human-readable labels of the channels appearing in
    /// `occupancies`, sorted by channel index (captured from the
    /// topology at reconstruction time).
    pub labels: Vec<(usize, String)>,
}

impl ChannelTrace {
    /// Builds the trace for a run completed on any routed topology.
    #[must_use]
    pub fn reconstruct_on<R: Router>(
        router: R,
        params: &SimParams,
        workload: &[DepMessage],
        run: &RunResult,
    ) -> ChannelTrace {
        let map = ChannelMap::new(router);
        let mut occupancies = Vec::new();
        let mut makespan = SimTime::ZERO;
        for (i, (m, r)) in workload.iter().zip(&run.messages).enumerate() {
            let route = map.route(params.port_model, m.src, m.dst);
            for ch in route {
                if map.is_virtual(ch) {
                    continue;
                }
                occupancies.push(Occupancy {
                    message: i,
                    channel: ch,
                    from: r.injected,
                    until: r.network_done,
                });
            }
            makespan = makespan.max(r.delivered);
        }
        let mut used: Vec<usize> = occupancies.iter().map(|o| o.channel).collect();
        used.sort_unstable();
        used.dedup();
        let labels = used.into_iter().map(|ch| (ch, map.label(ch))).collect();
        ChannelTrace {
            occupancies,
            external_channels: map.externals(),
            makespan,
            labels,
        }
    }

    /// Builds the trace for a completed hypercube run (the classic
    /// entry point; delegates to [`reconstruct_on`] with an E-cube
    /// router).
    ///
    /// [`reconstruct_on`]: ChannelTrace::reconstruct_on
    #[must_use]
    pub fn reconstruct(
        cube: Cube,
        resolution: Resolution,
        params: &SimParams,
        workload: &[DepMessage],
        run: &RunResult,
    ) -> ChannelTrace {
        ChannelTrace::reconstruct_on(Ecube::new(cube, resolution), params, workload, run)
    }

    /// Mean external-channel utilization over the run: the fraction of
    /// (channel × makespan) area covered by occupancy intervals.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.makespan == SimTime::ZERO || self.external_channels == 0 {
            return 0.0;
        }
        let held: u64 = self
            .occupancies
            .iter()
            .map(|o| o.until.saturating_sub(o.from).as_ns())
            .sum();
        held as f64 / (self.makespan.as_ns() as f64 * self.external_channels as f64)
    }

    /// The number of distinct external channels ever held.
    #[must_use]
    pub fn channels_used(&self) -> usize {
        self.labels.len()
    }

    /// Renders an ASCII occupancy timeline (one row per used channel,
    /// `width` time buckets; letters identify messages). Channel labels
    /// come from the topology the trace was reconstructed on. Intended
    /// for small illustrative runs.
    #[must_use]
    pub fn render_timeline(&self, width: usize) -> String {
        let mut rows: Vec<(usize, Vec<char>)> = self
            .labels
            .iter()
            .map(|&(ch, _)| (ch, vec!['.'; width]))
            .collect();
        let total = self.makespan.as_ns().max(1);
        for o in &self.occupancies {
            let glyph = char::from(b'A' + (o.message % 26) as u8);
            let lo = (o.from.as_ns() * width as u64 / total) as usize;
            let hi = (o.until.as_ns() * width as u64 / total) as usize;
            if let Some((_, row)) = rows.iter_mut().find(|(c, _)| *c == o.channel) {
                for cell in row
                    .iter_mut()
                    .take(hi.min(width - 1) + 1)
                    .skip(lo.min(width - 1))
                {
                    *cell = glyph;
                }
            }
        }
        let pad = self
            .labels
            .iter()
            .map(|(_, l)| l.chars().count())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(out, "channel occupancy (0 .. {}):", self.makespan);
        for ((_, row), (_, label)) in rows.into_iter().zip(&self.labels) {
            let line: String = row.into_iter().collect();
            let fill = pad - label.chars().count();
            let _ = writeln!(out, "  {label}{} |{line}|", " ".repeat(fill));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, simulate_on};
    use hcube::{NodeId, Torus, TorusRouter};
    use hypercast::PortModel;

    fn msg(src: u32, dst: u32, bytes: u32) -> DepMessage {
        DepMessage {
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            deps: Vec::new(),
            min_start: SimTime::ZERO,
        }
    }

    fn setup(workload: &[DepMessage]) -> (Cube, SimParams, ChannelTrace, RunResult) {
        let cube = Cube::of(4);
        let params = SimParams::ncube2(PortModel::AllPort);
        let run = simulate(cube, Resolution::HighToLow, &params, workload);
        let trace = ChannelTrace::reconstruct(cube, Resolution::HighToLow, &params, workload, &run);
        (cube, params, trace, run)
    }

    #[test]
    fn occupancy_covers_each_hop_once() {
        let w = vec![msg(0b0101, 0b1110, 4096)];
        let (_, _, trace, run) = setup(&w);
        assert_eq!(trace.occupancies.len(), 3);
        for o in &trace.occupancies {
            assert_eq!(o.from, run.messages[0].injected);
            assert_eq!(o.until, run.messages[0].network_done);
        }
        assert_eq!(trace.channels_used(), 3);
    }

    #[test]
    fn utilization_is_a_sane_fraction() {
        let w: Vec<DepMessage> = (1..16u32).map(|d| msg(0, d, 4096)).collect();
        let (_, _, trace, _) = setup(&w);
        let u = trace.utilization();
        assert!(u > 0.0 && u < 1.0, "utilization {u}");
    }

    #[test]
    fn timeline_renders_used_channels_only() {
        let w = vec![msg(0, 0b0011, 2048), msg(0b1000, 0b1100, 2048)];
        let (_, _, trace, _) = setup(&w);
        let s = trace.render_timeline(40);
        // 2 + 1 hops = 3 channel rows.
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('A'));
        assert!(s.contains('B'));
        // Labels are the cube's binary-address channel labels.
        assert!(s.contains("--1→"), "timeline:\n{s}");
    }

    #[test]
    fn empty_run_has_zero_utilization() {
        let (_, _, trace, _) = setup(&[]);
        assert_eq!(trace.utilization(), 0.0);
        assert_eq!(trace.channels_used(), 0);
    }

    #[test]
    fn virtual_channels_excluded_from_trace() {
        let cube = Cube::of(3);
        let params = SimParams::ncube2(PortModel::OnePort);
        let w = vec![msg(0, 0b111, 128)];
        let run = simulate(cube, Resolution::HighToLow, &params, &w);
        let trace = ChannelTrace::reconstruct(cube, Resolution::HighToLow, &params, &w, &run);
        assert_eq!(trace.occupancies.len(), 3, "injection/consumption excluded");
        assert!(trace
            .occupancies
            .iter()
            .all(|o| o.channel < cube.channel_count()));
    }

    #[test]
    fn torus_trace_uses_coordinate_labels() {
        let torus = Torus::of(4, 2);
        let router = TorusRouter::new(torus);
        let params = SimParams::ncube2(PortModel::AllPort);
        let w = vec![DepMessage {
            src: torus.node_at(&[3, 0]),
            dst: torus.node_at(&[1, 0]), // wraps: 3 → 0 → 1 in dim 0
            bytes: 512,
            deps: Vec::new(),
            min_start: SimTime::ZERO,
        }];
        let run = simulate_on(router, &params, &w);
        let trace = ChannelTrace::reconstruct_on(router, &params, &w, &run);
        assert_eq!(trace.occupancies.len(), 2);
        let s = trace.render_timeline(32);
        assert!(s.contains("3,0--d0+v0→"), "timeline:\n{s}");
        assert!(s.contains("0,0--d0+v1→"), "dateline VC visible:\n{s}");
    }
}
