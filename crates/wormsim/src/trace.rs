//! Execution tracing: per-channel occupancy timelines and utilization
//! statistics.
//!
//! The engine's [`RunResult`] summarizes *when* messages arrived; a
//! [`ChannelTrace`] reconstructs *where they were* — which directed
//! channels each worm held, and for how long — enabling the utilization
//! accounting MultiSim-era studies reported and an ASCII occupancy
//! timeline for small runs.
//!
//! The trace is reconstructed from message results rather than recorded
//! inside the hot event loop: for an unblocked worm the occupancy of its
//! whole route is `[injected, network_done]`, and blocked intervals are
//! bounded by the same window, so the reconstruction is exact for
//! contention-free runs and a tight envelope otherwise.

use crate::engine::{DepMessage, RunResult};
use crate::network::ChannelMap;
use crate::params::SimParams;
use crate::time::SimTime;
use hcube::{Cube, NodeId, Resolution};
use std::fmt::Write as _;

/// One channel-holding interval of one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occupancy {
    /// Index of the message in the workload.
    pub message: usize,
    /// Dense channel index (see [`ChannelMap`]).
    pub channel: usize,
    /// When the worm acquired (at latest) the channel.
    pub from: SimTime,
    /// When the channel was released (tail drain).
    pub until: SimTime,
}

/// Reconstructed channel-occupancy view of a run.
#[derive(Clone, Debug)]
pub struct ChannelTrace {
    /// All occupancy intervals, ordered by message then hop.
    pub occupancies: Vec<Occupancy>,
    /// Total number of directed external channels in the cube.
    pub external_channels: usize,
    /// The run's makespan.
    pub makespan: SimTime,
}

impl ChannelTrace {
    /// Builds the trace for a completed run.
    #[must_use]
    pub fn reconstruct(
        cube: Cube,
        resolution: Resolution,
        params: &SimParams,
        workload: &[DepMessage],
        run: &RunResult,
    ) -> ChannelTrace {
        let map = ChannelMap::new(cube);
        let mut occupancies = Vec::new();
        let mut makespan = SimTime::ZERO;
        for (i, (m, r)) in workload.iter().zip(&run.messages).enumerate() {
            let route = map.route(resolution, params.port_model, m.src, m.dst);
            for ch in route {
                if map.is_virtual(ch) {
                    continue;
                }
                occupancies.push(Occupancy {
                    message: i,
                    channel: ch,
                    from: r.injected,
                    until: r.network_done,
                });
            }
            makespan = makespan.max(r.delivered);
        }
        ChannelTrace {
            occupancies,
            external_channels: cube.channel_count(),
            makespan,
        }
    }

    /// Mean external-channel utilization over the run: the fraction of
    /// (channel × makespan) area covered by occupancy intervals.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.makespan == SimTime::ZERO || self.external_channels == 0 {
            return 0.0;
        }
        let held: u64 = self
            .occupancies
            .iter()
            .map(|o| o.until.saturating_sub(o.from).as_ns())
            .sum();
        held as f64 / (self.makespan.as_ns() as f64 * self.external_channels as f64)
    }

    /// The number of distinct external channels ever held.
    #[must_use]
    pub fn channels_used(&self) -> usize {
        let mut seen: Vec<usize> = self.occupancies.iter().map(|o| o.channel).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Renders an ASCII occupancy timeline (one row per used channel,
    /// `width` time buckets; letters identify messages). Intended for
    /// small illustrative runs.
    #[must_use]
    pub fn render_timeline(&self, cube: Cube, width: usize) -> String {
        let n = cube.dimension();
        let mut rows: Vec<(usize, Vec<char>)> = Vec::new();
        let mut used: Vec<usize> = self.occupancies.iter().map(|o| o.channel).collect();
        used.sort_unstable();
        used.dedup();
        for ch in used {
            rows.push((ch, vec!['.'; width]));
        }
        let total = self.makespan.as_ns().max(1);
        for o in &self.occupancies {
            let glyph = char::from(b'A' + (o.message % 26) as u8);
            let lo = (o.from.as_ns() * width as u64 / total) as usize;
            let hi = (o.until.as_ns() * width as u64 / total) as usize;
            if let Some((_, row)) = rows.iter_mut().find(|(c, _)| *c == o.channel) {
                for cell in row
                    .iter_mut()
                    .take(hi.min(width - 1) + 1)
                    .skip(lo.min(width - 1))
                {
                    *cell = glyph;
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "channel occupancy (0 .. {}):", self.makespan);
        for (ch, row) in rows {
            let node = NodeId((ch / n as usize) as u32);
            let dim = ch % n as usize;
            let line: String = row.into_iter().collect();
            let _ = writeln!(out, "  {}--{}→ |{line}|", node.binary(n), dim);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use hypercast::PortModel;

    fn msg(src: u32, dst: u32, bytes: u32) -> DepMessage {
        DepMessage {
            src: NodeId(src),
            dst: NodeId(dst),
            bytes,
            deps: Vec::new(),
            min_start: SimTime::ZERO,
        }
    }

    fn setup(workload: &[DepMessage]) -> (Cube, SimParams, ChannelTrace, RunResult) {
        let cube = Cube::of(4);
        let params = SimParams::ncube2(PortModel::AllPort);
        let run = simulate(cube, Resolution::HighToLow, &params, workload);
        let trace = ChannelTrace::reconstruct(cube, Resolution::HighToLow, &params, workload, &run);
        (cube, params, trace, run)
    }

    #[test]
    fn occupancy_covers_each_hop_once() {
        let w = vec![msg(0b0101, 0b1110, 4096)];
        let (_, _, trace, run) = setup(&w);
        assert_eq!(trace.occupancies.len(), 3);
        for o in &trace.occupancies {
            assert_eq!(o.from, run.messages[0].injected);
            assert_eq!(o.until, run.messages[0].network_done);
        }
        assert_eq!(trace.channels_used(), 3);
    }

    #[test]
    fn utilization_is_a_sane_fraction() {
        let w: Vec<DepMessage> = (1..16u32).map(|d| msg(0, d, 4096)).collect();
        let (_, _, trace, _) = setup(&w);
        let u = trace.utilization();
        assert!(u > 0.0 && u < 1.0, "utilization {u}");
    }

    #[test]
    fn timeline_renders_used_channels_only() {
        let w = vec![msg(0, 0b0011, 2048), msg(0b1000, 0b1100, 2048)];
        let (cube, _, trace, _) = setup(&w);
        let s = trace.render_timeline(cube, 40);
        // 2 + 1 hops = 3 channel rows.
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('A'));
        assert!(s.contains('B'));
    }

    #[test]
    fn empty_run_has_zero_utilization() {
        let (_, _, trace, _) = setup(&[]);
        assert_eq!(trace.utilization(), 0.0);
        assert_eq!(trace.channels_used(), 0);
    }

    #[test]
    fn virtual_channels_excluded_from_trace() {
        let cube = Cube::of(3);
        let params = SimParams::ncube2(PortModel::OnePort);
        let w = vec![msg(0, 0b111, 128)];
        let run = simulate(cube, Resolution::HighToLow, &params, &w);
        let trace = ChannelTrace::reconstruct(cube, Resolution::HighToLow, &params, &w, &run);
        assert_eq!(trace.occupancies.len(), 3, "injection/consumption excluded");
        assert!(trace
            .occupancies
            .iter()
            .all(|o| o.channel < cube.channel_count()));
    }
}
