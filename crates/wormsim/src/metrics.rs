//! A metrics registry sink: counters, gauges, and log-bucketed
//! histograms fed by the [`Probe`] event stream,
//! with JSON and Prometheus-text exporters.
//!
//! [`Metrics`] is the third shipped probe sink (next to
//! [`NoopProbe`](crate::probe::NoopProbe) and
//! [`EventRecorder`](crate::probe::EventRecorder)): it aggregates the
//! event stream into a small fixed vocabulary —
//!
//! * **counters** — `events_total`, `injected_total`, `delivered_total`,
//!   `channel_grants_total`, `channel_blocks_total`, `faults_total`,
//!   `timeouts_total`, `watchdog_alarms_total`, `blocked_ns_total`,
//!   `busy_ns_total`;
//! * **gauges** — `makespan_ns`, `max_queue_depth`,
//!   `events_per_sim_ms`;
//! * **histograms** (log₂ buckets) — `latency_ns` (injection→delivery),
//!   `blocked_episode_ns` (per completed blocking episode),
//!   `queue_depth` (FIFO depth at each enqueue).
//!
//! Export a snapshot with [`Metrics::snapshot`], then
//! [`MetricsRegistry::to_prometheus_text`] (the Prometheus exposition
//! format) or [`MetricsRegistry::to_json`].

use crate::engine::FaultCause;
use crate::probe::{json_escape, Probe};
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log₂ buckets in a [`Histogram`] (`le = 2^i` for
/// `i < BUCKETS`, plus the implicit `+Inf`).
pub const BUCKETS: usize = 40;

/// A log₂-bucketed histogram of `u64` samples: bucket `i` counts
/// samples `≤ 2^i`; larger samples land in the overflow (`+Inf`)
/// bucket. Tracks count and sum exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Cumulative-style storage: `buckets[i]` counts samples whose value
    /// is `> 2^(i-1)` and `≤ 2^i` (bucket 0: `≤ 1`).
    buckets: Vec<u64>,
    /// Samples larger than `2^(BUCKETS-1)`.
    overflow: u64,
    /// Total samples.
    count: u64,
    /// Exact sum of all samples.
    sum: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; BUCKETS],
            ..Histogram::default()
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let idx = (64 - v.saturating_sub(1).leading_zeros()) as usize; // ceil(log2(v)); 0,1 → 0
        if idx < BUCKETS {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Bucket counts in index order: `counts()[i]` samples fell in
    /// bucket `i` (values `≤ 2^i`, exclusive of bucket `i − 1`), plus
    /// the overflow count as the final element. Exposed so downstream
    /// telemetry can merge or serialize histograms without going
    /// through the cumulative view.
    #[must_use]
    pub fn counts(&self) -> Vec<u64> {
        let mut out = if self.buckets.is_empty() {
            vec![0; BUCKETS]
        } else {
            self.buckets.clone()
        };
        out.push(self.overflow);
        out
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) as the **upper bound** of the
    /// log₂ bucket the quantile sample falls in — i.e. the smallest
    /// `2^i` with at least `ceil(q · count)` samples at or below it.
    /// Returns `None` for an empty histogram; an overflow-bucket
    /// quantile reports `u64::MAX`. Being bucket-resolved, the result
    /// is conservative within a factor of 2, which is the price of the
    /// fixed-size deterministic representation.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(1u64 << i);
            }
        }
        Some(u64::MAX)
    }

    /// `(upper_bound, cumulative_count)` pairs for the non-empty prefix
    /// of buckets, ending with the implicit `+Inf` (upper bound `None`).
    #[must_use]
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut out = Vec::new();
        let mut acc = 0;
        let last_used = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        for (i, &c) in self.buckets.iter().enumerate().take(last_used) {
            acc += c;
            out.push((Some(1u64 << i), acc));
        }
        out.push((None, self.count));
        out
    }
}

/// A named bag of counters, gauges, and histograms with deterministic
/// (sorted) export order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Raises gauge `name` to `v` if `v` is larger (creating it at `v`).
    pub fn max_gauge(&mut self, name: &str, v: f64) {
        let g = self.gauges.entry(name.to_string()).or_insert(v);
        if v > *g {
            *g = v;
        }
    }

    /// Records `v` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Counter value (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Serializes in the Prometheus text exposition format (version
    /// 0.0.4): `# TYPE` headers, `_bucket{le=…}` / `_sum` / `_count`
    /// series for histograms. Metric names are emitted under the
    /// `wormsim_` namespace.
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE wormsim_{name} counter");
            let _ = writeln!(out, "wormsim_{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE wormsim_{name} gauge");
            let _ = writeln!(out, "wormsim_{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE wormsim_{name} histogram");
            for (le, acc) in h.cumulative() {
                match le {
                    Some(le) => {
                        let _ = writeln!(out, "wormsim_{name}_bucket{{le=\"{le}\"}} {acc}");
                    }
                    None => {
                        let _ = writeln!(out, "wormsim_{name}_bucket{{le=\"+Inf\"}} {acc}");
                    }
                }
            }
            let _ = writeln!(out, "wormsim_{name}_sum {}", h.sum());
            let _ = writeln!(out, "wormsim_{name}_count {}", h.count());
        }
        out
    }

    /// Serializes as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
    /// sorted keys (deterministic output for a deterministic run).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        write_map(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"gauges\": {");
        write_map(&mut out, self.gauges.iter(), |out, v| {
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        });
        out.push_str("},\n  \"histograms\": {");
        write_map(&mut out, self.histograms.iter(), |out, h| {
            let _ = write!(
                out,
                "{{\"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count(),
                h.sum()
            );
            for (i, (le, acc)) in h.cumulative().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match le {
                    Some(le) => {
                        let _ = write!(out, "{{\"le\": {le}, \"count\": {acc}}}");
                    }
                    None => {
                        let _ = write!(out, "{{\"le\": null, \"count\": {acc}}}");
                    }
                }
            }
            out.push_str("]}");
        });
        out.push_str("}\n}");
        out
    }
}

fn write_map<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut write_value: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": ", json_escape(k));
        write_value(out, v);
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// The metrics probe sink: aggregates the engine's event stream into a
/// [`MetricsRegistry`].
///
/// Keeps per-message open-wait state so blocking *episodes* (block →
/// grant/abort) are measured exactly, mirroring
/// [`EventRecorder`](crate::probe::EventRecorder)'s accounting.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    registry: MetricsRegistry,
    /// Open blocking episode per message: `(ch, since)`.
    waiting: Vec<Option<(usize, SimTime)>>,
    end_time: SimTime,
}

impl Metrics {
    /// An empty metrics sink.
    #[must_use]
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn close_wait(&mut self, msg: usize, t: SimTime) {
        if msg < self.waiting.len() {
            if let Some((_, since)) = self.waiting[msg].take() {
                let waited = t.saturating_sub(since).as_ns();
                self.registry.inc("blocked_ns_total", waited);
                self.registry.observe("blocked_episode_ns", waited);
            }
        }
    }

    /// A snapshot of the registry with derived gauges (`makespan_ns`,
    /// `events_per_sim_ms`) filled in.
    #[must_use]
    pub fn snapshot(&self) -> MetricsRegistry {
        let mut reg = self.registry.clone();
        reg.set_gauge("makespan_ns", self.end_time.as_ns() as f64);
        let ms = self.end_time.as_ms();
        if ms > 0.0 {
            reg.set_gauge("events_per_sim_ms", reg.counter("events_total") as f64 / ms);
        }
        reg
    }
}

impl Probe for Metrics {
    fn on_eligible(&mut self, t: SimTime, _msg: usize) {
        self.end_time = self.end_time.max(t);
        self.registry.inc("events_total", 1);
    }

    fn on_injected(&mut self, t: SimTime, _msg: usize, _route_len: usize) {
        self.end_time = self.end_time.max(t);
        self.registry.inc("events_total", 1);
        self.registry.inc("injected_total", 1);
    }

    fn on_channel_requested(&mut self, t: SimTime, _msg: usize, _ch: usize, _hop: usize) {
        self.end_time = self.end_time.max(t);
        self.registry.inc("events_total", 1);
    }

    fn on_channel_granted(&mut self, t: SimTime, msg: usize, _ch: usize, _hop: usize) {
        self.end_time = self.end_time.max(t);
        self.close_wait(msg, t);
        self.registry.inc("events_total", 1);
        self.registry.inc("channel_grants_total", 1);
    }

    fn on_channel_blocked(&mut self, t: SimTime, msg: usize, ch: usize, _hop: usize, depth: usize) {
        self.end_time = self.end_time.max(t);
        if msg >= self.waiting.len() {
            self.waiting.resize(msg + 1, None);
        }
        match self.waiting[msg] {
            Some((wch, _)) if wch == ch => {}
            _ => self.waiting[msg] = Some((ch, t)),
        }
        self.registry.inc("events_total", 1);
        self.registry.inc("channel_blocks_total", 1);
        self.registry.observe("queue_depth", depth as u64);
        self.registry.max_gauge("max_queue_depth", depth as f64);
    }

    fn on_channel_released(&mut self, t: SimTime, _msg: usize, _ch: usize, held_since: SimTime) {
        self.end_time = self.end_time.max(t);
        self.registry.inc("events_total", 1);
        self.registry
            .inc("busy_ns_total", t.saturating_sub(held_since).as_ns());
    }

    fn on_header_advanced(&mut self, t: SimTime, _msg: usize, _hop: usize) {
        self.end_time = self.end_time.max(t);
        self.registry.inc("events_total", 1);
    }

    fn on_tail_drained(&mut self, t: SimTime, _msg: usize) {
        self.end_time = self.end_time.max(t);
        self.registry.inc("events_total", 1);
    }

    fn on_delivered(&mut self, t: SimTime, _msg: usize, injected: SimTime) {
        self.end_time = self.end_time.max(t);
        self.registry.inc("events_total", 1);
        self.registry.inc("delivered_total", 1);
        self.registry
            .observe("latency_ns", t.saturating_sub(injected).as_ns());
    }

    fn on_fault(&mut self, t: SimTime, msg: usize, _cause: FaultCause) {
        self.end_time = self.end_time.max(t);
        self.close_wait(msg, t);
        self.registry.inc("events_total", 1);
        self.registry.inc("faults_total", 1);
    }

    fn on_timeout(&mut self, t: SimTime, msg: usize) {
        self.end_time = self.end_time.max(t);
        self.close_wait(msg, t);
        self.registry.inc("events_total", 1);
        self.registry.inc("timeouts_total", 1);
    }

    fn on_watchdog_alarm(&mut self, t: SimTime, _holders: &[usize], _waiters: &[usize]) {
        self.end_time = self.end_time.max(t);
        self.registry.inc("events_total", 1);
        self.registry.inc("watchdog_alarms_total", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        let cum = h.cumulative();
        // 0 and 1 land in le=1; 2 in le=2; 3 and 4 in le=4; 1024 in le=1024.
        let at = |le: u64| {
            cum.iter()
                .find(|(b, _)| *b == Some(le))
                .map(|&(_, c)| c)
                .unwrap()
        };
        assert_eq!(at(1), 2);
        assert_eq!(at(2), 3);
        assert_eq!(at(4), 5);
        assert_eq!(at(1024), 6);
        // +Inf picks up the overflow sample.
        assert_eq!(cum.last().unwrap(), &(None, 7));
    }

    #[test]
    fn prometheus_text_has_types_and_histogram_series() {
        let mut reg = MetricsRegistry::new();
        reg.inc("delivered_total", 3);
        reg.set_gauge("makespan_ns", 1.5e6);
        reg.observe("latency_ns", 1000);
        reg.observe("latency_ns", 3000);
        let text = reg.to_prometheus_text();
        assert!(text.contains("# TYPE wormsim_delivered_total counter"));
        assert!(text.contains("wormsim_delivered_total 3"));
        assert!(text.contains("# TYPE wormsim_makespan_ns gauge"));
        assert!(text.contains("# TYPE wormsim_latency_ns histogram"));
        assert!(text.contains("wormsim_latency_ns_bucket{le=\"1024\"} 1"));
        assert!(text.contains("wormsim_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("wormsim_latency_ns_sum 4000"));
        assert!(text.contains("wormsim_latency_ns_count 2"));
    }

    #[test]
    fn json_export_is_deterministic_and_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.inc("zeta", 1);
        reg.inc("alpha", 2);
        reg.observe("lat", 7);
        let a = reg.to_json();
        let b = reg.to_json();
        assert_eq!(a, b);
        assert!(a.find("\"alpha\"").unwrap() < a.find("\"zeta\"").unwrap());
        assert!(a.contains("\"histograms\""));
    }

    #[test]
    fn metrics_probe_tracks_blocking_episodes() {
        let mut m = Metrics::new();
        m.on_injected(SimTime::ZERO, 0, 2);
        m.on_channel_blocked(SimTime::from_ns(10), 0, 5, 1, 2);
        m.on_channel_granted(SimTime::from_ns(40), 0, 5, 1);
        m.on_delivered(SimTime::from_ns(100), 0, SimTime::ZERO);
        let reg = m.snapshot();
        assert_eq!(reg.counter("blocked_ns_total"), 30);
        assert_eq!(reg.counter("channel_blocks_total"), 1);
        assert_eq!(reg.counter("delivered_total"), 1);
        assert_eq!(reg.histogram("latency_ns").unwrap().count(), 1);
        assert_eq!(reg.gauge("makespan_ns"), Some(100.0));
    }
}
