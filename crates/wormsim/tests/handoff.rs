//! Regression suite for the FIFO hand-off contract.
//!
//! The paper's contention theory (Definitions 3–4, Theorem 3) assumes a
//! blocked header proceeds the moment its channel's holder releases it.
//! The engine once implemented release as *free the channel and push a
//! retry event for the popped waiter*: any already-queued same-time
//! acquisition attempt then popped **before** the waiter's retry, stole
//! the channel, and sent the waiter to the *back* of the FIFO — losing
//! the position its arrival order had earned. The fix grants the
//! channel to the FIFO head atomically at release (`Channels::handoff`).
//!
//! `fifo_waiter_is_not_stolen_by_a_same_time_arrival` constructs the
//! steal deterministically and pins the post-fix schedule; the other
//! tests pin the neighbouring invariants (hand-off chains, scratch
//! replay of the same scenario).

use hcube::{Cube, NodeId, Resolution};
use hypercast::PortModel;
use wormsim::{simulate, simulate_on_with_scratch, DepMessage, EngineScratch, SimParams, SimTime};

fn msg(src: u32, dst: u32, bytes: u32, min_start: u64) -> DepMessage {
    DepMessage {
        src: NodeId(src),
        dst: NodeId(dst),
        bytes,
        deps: vec![],
        min_start: SimTime::from_ns(min_start),
    }
}

/// The steal construction, on a 2-cube with ideal parameters
/// (`t_send_sw = t_recv_sw = 0`, `t_hop = t_byte = 1 ns`). All three
/// messages use the single external channel `0 → 1`:
///
/// * `A` (msg 0): starts at 0, acquires the channel at 0, tail drains
///   at `1 + 10 = 11` — so the channel releases at t = 11.
/// * `B` (msg 1): starts at 1, finds the channel busy, queues as the
///   FIFO head at t = 1.
/// * `D` (msg 2): `min_start = 11`. Its `Eligible` event was pushed at
///   setup (sequence 2) and therefore pops *before* A's `Complete`
///   (pushed later, at acquisition time) — so D's `TryAcquire` at
///   t = 11 is already in the heap when A releases the channel.
///
/// Pre-fix: the release freed the channel and re-queued B's retry
/// *behind* D's attempt; D stole the channel (delivered at 22) and B —
/// who had waited since t = 1 — was pushed to the back (delivered at
/// 33, with a second port-wait episode). Post-fix: B holds the channel
/// the instant A releases it.
#[test]
fn fifo_waiter_is_not_stolen_by_a_same_time_arrival() {
    let params = SimParams::ideal(PortModel::AllPort);
    let workload = [msg(0, 1, 10, 0), msg(0, 1, 10, 1), msg(0, 1, 10, 11)];
    let run = simulate(Cube::of(2), Resolution::HighToLow, &params, &workload);

    let a = &run.messages[0];
    let b = &run.messages[1];
    let d = &run.messages[2];
    assert_eq!(a.delivered, SimTime::from_ns(11));

    // B was the FIFO head: it is granted the channel atomically at
    // A's release and delivers first. (Pre-fix this asserted 33.)
    assert_eq!(
        b.delivered,
        SimTime::from_ns(22),
        "FIFO head must be granted the channel at release, not re-raced"
    );
    // D arrived while the channel was reserved for B; it waits its turn.
    assert_eq!(d.delivered, SimTime::from_ns(33));

    // B blocked exactly once (pre-fix the steal re-queued it: 2).
    assert_eq!(b.port_waits, 1, "the popped waiter must keep its grant");
    assert_eq!(b.blocked_time, SimTime::from_ns(10)); // 1 → 11
    assert_eq!(d.port_waits, 1);
    assert_eq!(d.blocked_time, SimTime::from_ns(11)); // 11 → 22
    assert_eq!(run.stats.port_waits, 2);
}

/// A three-deep wait queue drains strictly in arrival order, each
/// waiter granted at the previous holder's release instant.
#[test]
fn handoff_chain_preserves_arrival_order() {
    let params = SimParams::ideal(PortModel::AllPort);
    // Four same-channel messages arriving in a staggered order.
    let workload = [
        msg(0, 1, 10, 0),
        msg(0, 1, 10, 3),
        msg(0, 1, 10, 2),
        msg(0, 1, 10, 5),
    ];
    let run = simulate(Cube::of(2), Resolution::HighToLow, &params, &workload);
    // Holder delivers at 11; then waiters in arrival order 2, 1, 3 at
    // 22, 33, 44.
    assert_eq!(run.messages[0].delivered, SimTime::from_ns(11));
    assert_eq!(run.messages[2].delivered, SimTime::from_ns(22));
    assert_eq!(run.messages[1].delivered, SimTime::from_ns(33));
    assert_eq!(run.messages[3].delivered, SimTime::from_ns(44));
}

/// The steal scenario replayed through a reused scratch is
/// byte-identical to the fresh-allocation run — the hand-off fix and
/// the arena layer compose.
#[test]
fn handoff_semantics_survive_scratch_reuse() {
    let params = SimParams::ideal(PortModel::AllPort);
    let workload = [msg(0, 1, 10, 0), msg(0, 1, 10, 1), msg(0, 1, 10, 11)];
    let fresh = simulate(Cube::of(2), Resolution::HighToLow, &params, &workload);
    let router = hcube::Ecube::new(Cube::of(2), Resolution::HighToLow);
    let mut scratch = EngineScratch::new();
    for _ in 0..3 {
        let again = simulate_on_with_scratch(router, &params, &workload, &mut scratch);
        assert_eq!(fresh.messages, again.messages);
        assert_eq!(fresh.stats, again.stats);
    }
    assert!(scratch.route_memo().hits() > 0);
}
