//! Probe-layer soundness: the in-loop [`EventRecorder`]'s *exact*
//! accounting against the after-the-fact [`ChannelTrace`] envelope and
//! the engine's own `NetStats` aggregates.
//!
//! Three contracts, matching DESIGN.md §10:
//!
//! 1. **Envelope soundness** — every exact channel-holding interval the
//!    recorder observed is *contained* in the reconstructed envelope
//!    (same message, same channel, wider-or-equal window), and for
//!    contention-free runs with `t_hop = 0` the two coincide exactly.
//! 2. **Utilization exactness** — `NetStats` per-dimension busy time,
//!    contention blocked time, and port-wait time equal the recorder's
//!    per-channel sums, on the cube (both port models) and the torus.
//! 3. **Observation is passive** — an attached recorder never perturbs
//!    the schedule.

use hcube::{Cube, Dim, Ecube, NodeId, Resolution, Torus, TorusRouter};
use hypercast::{Algorithm, PortModel};
use proptest::prelude::*;
use wormsim::network::ChannelMap;
use wormsim::{
    multicast_workload, simulate, simulate_observed_on, simulate_observed_with_faults_on,
    ChannelTrace, DepMessage, EventRecorder, FaultPlan, ProbeEvent, SimError, SimParams, SimTime,
};

fn msg(src: u32, dst: u32, bytes: u32) -> DepMessage {
    DepMessage {
        src: NodeId(src),
        dst: NodeId(dst),
        bytes,
        deps: vec![],
        min_start: SimTime::ZERO,
    }
}

fn instance() -> impl Strategy<Value = (u8, u32, Vec<u32>)> {
    (3u8..=6).prop_flat_map(|n| {
        let m = 1u32 << n;
        (
            Just(n),
            0..m,
            prop::collection::btree_set(0..m, 1..=(m as usize - 1).min(20)),
        )
            .prop_map(|(n, src, set)| {
                let dests: Vec<u32> = set.into_iter().filter(|&d| d != src).collect();
                (n, src, dests)
            })
    })
}

/// Checks that every exact external-channel occupancy the recorder saw
/// is contained in the envelope's interval for the same (message,
/// channel) pair.
fn assert_envelope_contains(
    map: &ChannelMap<impl hcube::Router>,
    trace: &ChannelTrace,
    rec: &EventRecorder,
) {
    for exact in rec.occupancies() {
        if map.is_virtual(exact.channel) {
            continue; // the envelope covers external channels only
        }
        let env = trace
            .occupancies
            .iter()
            .find(|o| o.message == exact.message && o.channel == exact.channel)
            .unwrap_or_else(|| {
                panic!(
                    "exact occupancy (msg {}, ch {}) missing from envelope",
                    exact.message, exact.channel
                )
            });
        assert!(
            env.from <= exact.from && env.until >= exact.until,
            "envelope [{}, {}] does not contain exact [{}, {}] (msg {}, ch {})",
            env.from,
            env.until,
            exact.from,
            exact.until,
            exact.message,
            exact.channel
        );
    }
}

proptest! {
    /// Envelope soundness: for any multicast (any algorithm, any port
    /// model), the reconstructed `ChannelTrace` envelope contains every
    /// exact occupancy interval recorded in-loop.
    #[test]
    fn envelope_contains_exact_occupancies(
        (n, src, dests) in instance(),
        algo_idx in 0usize..4,
        allport in any::<bool>(),
        bytes in 64u32..8192,
    ) {
        prop_assume!(!dests.is_empty());
        let port = if allport { PortModel::AllPort } else { PortModel::OnePort };
        let params = SimParams::ncube2(port);
        let cube = Cube::of(n);
        let dests: Vec<NodeId> = dests.into_iter().map(NodeId).collect();
        let tree = Algorithm::PAPER[algo_idx]
            .build(cube, Resolution::HighToLow, port, NodeId(src), &dests)
            .unwrap();
        let workload = multicast_workload(&tree, bytes);
        let router = Ecube::new(cube, Resolution::HighToLow);
        let mut rec = EventRecorder::new();
        let run = simulate_observed_on(router, &params, &workload, &mut rec);
        let trace = ChannelTrace::reconstruct_on(router, &params, &workload, &run);
        let map = ChannelMap::new(router);
        // One exact interval per held channel: route lengths add up.
        prop_assert_eq!(
            rec.occupancies().len(),
            workload
                .iter()
                .map(|m| map.route(port, m.src, m.dst).len())
                .sum::<usize>()
        );
        assert_envelope_contains(&map, &trace, &rec);
    }

    /// Envelope exactness: with `t_hop = 0` a contention-free run's
    /// envelope *equals* the exact record — every hop of a worm is
    /// acquired at injection and released at tail drain, which is
    /// precisely the `[injected, network_done]` window the
    /// reconstruction assumes.
    #[test]
    fn envelope_is_exact_for_contention_free_zero_hop_runs(
        (n, src, dests) in instance(),
        bytes in 64u32..8192,
    ) {
        prop_assume!(!dests.is_empty());
        let params = SimParams {
            t_hop: SimTime::ZERO,
            ..SimParams::ncube2(PortModel::AllPort)
        };
        let cube = Cube::of(n);
        let dests: Vec<NodeId> = dests.into_iter().map(NodeId).collect();
        // W-sort on all-port: contention-free by Theorem 6.
        let tree = Algorithm::WSort
            .build(cube, Resolution::HighToLow, PortModel::AllPort, NodeId(src), &dests)
            .unwrap();
        let workload = multicast_workload(&tree, bytes);
        let router = Ecube::new(cube, Resolution::HighToLow);
        let mut rec = EventRecorder::new();
        let run = simulate_observed_on(router, &params, &workload, &mut rec);
        prop_assert_eq!(run.stats.blocks, 0);
        let trace = ChannelTrace::reconstruct_on(router, &params, &workload, &run);
        let mut exact: Vec<(usize, usize, SimTime, SimTime)> = rec
            .occupancies()
            .iter()
            .map(|o| (o.message, o.channel, o.from, o.until))
            .collect();
        let mut envelope: Vec<(usize, usize, SimTime, SimTime)> = trace
            .occupancies
            .iter()
            .map(|o| (o.message, o.channel, o.from, o.until))
            .collect();
        exact.sort_unstable();
        envelope.sort_unstable();
        prop_assert_eq!(exact, envelope);
    }

    /// Observation is passive: attaching a recorder yields the exact
    /// same per-message results as the unobserved run.
    #[test]
    fn recorder_does_not_perturb_the_schedule((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty());
        let params = SimParams::ncube2(PortModel::AllPort);
        let cube = Cube::of(n);
        let dests: Vec<NodeId> = dests.into_iter().map(NodeId).collect();
        let tree = Algorithm::UCube
            .build(cube, Resolution::HighToLow, PortModel::AllPort, NodeId(src), &dests)
            .unwrap();
        let workload = multicast_workload(&tree, 4096);
        let plain = simulate(cube, Resolution::HighToLow, &params, &workload);
        let mut rec = EventRecorder::new();
        let observed = simulate_observed_on(
            Ecube::new(cube, Resolution::HighToLow),
            &params,
            &workload,
            &mut rec,
        );
        prop_assert_eq!(plain.messages, observed.messages);
        prop_assert_eq!(plain.stats, observed.stats);
        prop_assert_eq!(rec.latencies().len(), observed.delivered_count());
    }
}

// ---------------------------------------------------------------------
// NetStats utilization exactness against in-loop channel-hold events
// (the "validate and fix any drift" satellite). Three configurations.
// ---------------------------------------------------------------------

/// Asserts that `NetStats`' aggregate time accounting equals the
/// recorder's exact per-channel sums under the engine's classification
/// rule: blocking on a virtual channel or at hop 0 is port waiting,
/// everything else is genuine contention; busy time is charged to the
/// dimension of each external channel.
fn assert_stats_match_recorder(
    map: &ChannelMap<impl hcube::Router>,
    stats: &wormsim::NetStats,
    rec: &EventRecorder,
) {
    let ext = map.externals();
    let contention: u64 = (0..ext).map(|ch| rec.contention_blocked_ns(ch)).sum();
    assert_eq!(
        stats.blocked_time.as_ns(),
        contention,
        "NetStats.blocked_time drifts from exact in-loop accounting"
    );
    let port_wait: u64 = (0..ext)
        .map(|ch| rec.blocked_ns(ch) - rec.contention_blocked_ns(ch))
        .sum::<u64>()
        + (ext..map.len()).map(|ch| rec.blocked_ns(ch)).sum::<u64>();
    assert_eq!(
        stats.port_wait_time.as_ns(),
        port_wait,
        "NetStats.port_wait_time drifts from exact in-loop accounting"
    );
    let dims = map.dimensions() as usize;
    let mut busy = vec![0u64; dims];
    for ch in 0..ext {
        busy[map.dim_of(ch) as usize] += rec.busy_ns(ch);
    }
    assert_eq!(stats.dim_busy.len(), dims);
    for (d, (&expected, got)) in busy.iter().zip(&stats.dim_busy).enumerate() {
        assert_eq!(
            got.as_ns(),
            expected,
            "NetStats.dim_busy[{d}] drifts from exact per-channel holds"
        );
    }
    // The deepest FIFO queue the run saw is the max over channels.
    let depth = (0..map.len()).map(|ch| rec.max_queue_depth(ch)).max();
    assert_eq!(stats.max_queue_depth, depth.unwrap_or(0));
}

/// Hot-spot workload: every other node sends to node 0 at t = 0.
fn hot_spot(nodes: u32, bytes: u32) -> Vec<DepMessage> {
    (1..nodes).map(|v| msg(v, 0, bytes)).collect()
}

#[test]
fn netstats_matches_recorder_cube_all_port() {
    let cube = Cube::of(4);
    let params = SimParams::ncube2(PortModel::AllPort);
    let router = Ecube::new(cube, Resolution::HighToLow);
    let map = ChannelMap::new(router);
    let mut rec = EventRecorder::new();
    let run = simulate_observed_on(router, &params, &hot_spot(16, 2048), &mut rec);
    assert!(run.stats.blocks > 0, "hot-spot must contend");
    assert_stats_match_recorder(&map, &run.stats, &rec);
}

#[test]
fn netstats_matches_recorder_cube_one_port() {
    let cube = Cube::of(4);
    let params = SimParams::ncube2(PortModel::OnePort);
    let router = Ecube::new(cube, Resolution::HighToLow);
    let map = ChannelMap::new(router);
    let mut rec = EventRecorder::new();
    let run = simulate_observed_on(router, &params, &hot_spot(16, 2048), &mut rec);
    assert!(
        run.stats.port_waits > 0,
        "one-port hot-spot must serialize on the consumption channel"
    );
    assert_stats_match_recorder(&map, &run.stats, &rec);
}

#[test]
fn netstats_matches_recorder_torus() {
    let torus = Torus::of(4, 2);
    let router = TorusRouter::new(torus);
    let params = SimParams::ncube2(PortModel::AllPort);
    let map = ChannelMap::new(router);
    let workload = hot_spot(16, 2048);
    let mut rec = EventRecorder::new();
    let run = simulate_observed_on(router, &params, &workload, &mut rec);
    assert!(run.stats.blocks > 0, "torus hot-spot must contend");
    assert_stats_match_recorder(&map, &run.stats, &rec);
    // Cross-check the separately computed utilization against a direct
    // recompute from the recorder.
    let util = run.stats.dim_utilization();
    for (d, &u) in util.iter().enumerate() {
        let chans = f64::from(run.stats.dim_channels[d]);
        let busy: u64 = (0..map.externals())
            .filter(|&ch| map.dim_of(ch) as usize == d)
            .map(|ch| rec.busy_ns(ch))
            .sum();
        let expect = busy as f64 / (run.stats.makespan.as_ns() as f64 * chans);
        assert!((u - expect).abs() < 1e-12, "dim {d}: {u} vs {expect}");
    }
}

#[test]
fn netstats_matches_recorder_under_multicast_contention() {
    // A fourth configuration: genuine multicast traffic (U-cube all-port
    // funnels same-dimension sends) rather than a synthetic hot-spot.
    let cube = Cube::of(5);
    let params = SimParams::ncube2(PortModel::AllPort);
    let dests: Vec<NodeId> = (1..32).map(NodeId).collect();
    let tree = Algorithm::UCube
        .build(
            cube,
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests,
        )
        .unwrap();
    let router = Ecube::new(cube, Resolution::HighToLow);
    let map = ChannelMap::new(router);
    let mut rec = EventRecorder::new();
    let run = simulate_observed_on(router, &params, &multicast_workload(&tree, 4096), &mut rec);
    assert_stats_match_recorder(&map, &run.stats, &rec);
}

// ---------------------------------------------------------------------
// Multi-lane reconciliation: NetStats' per-lane busy/blocked accounting
// equals the recorder's exact per-channel sums when the router runs
// several lanes per link and the engine picks lanes adaptively.
// ---------------------------------------------------------------------

/// Per-lane exactness: `lane_busy[l]` is the sum of exact hold time over
/// the external channels of lane `l`, blocked time parks only on class
/// representatives, and the totals still reconcile.
fn assert_lane_stats_match_recorder(
    map: &ChannelMap<impl hcube::Router>,
    stats: &wormsim::NetStats,
    rec: &EventRecorder,
) {
    assert_eq!(stats.lane_busy.len(), map.lanes());
    assert_eq!(stats.lane_links as usize, map.links());
    for l in 0..map.lanes() {
        let expect: u64 = (0..map.externals())
            .filter(|&ch| map.lane_of(ch) as usize == l)
            .map(|ch| rec.busy_ns(ch))
            .sum();
        assert_eq!(
            stats.lane_busy[l].as_ns(),
            expect,
            "NetStats.lane_busy[{l}] drifts from exact per-channel holds"
        );
    }
    // Worms queue on the class representative, so non-representative
    // lanes never accrue blocked time.
    for ch in 0..map.externals() {
        if map.class_rep(ch) != ch {
            assert_eq!(
                rec.blocked_ns(ch),
                0,
                "blocked time must park on class representatives (ch {ch})"
            );
        }
    }
    // Busy time is conserved across the two decompositions.
    let by_lane: u64 = stats.lane_busy.iter().map(|t| t.as_ns()).sum();
    let by_dim: u64 = stats.dim_busy.iter().map(|t| t.as_ns()).sum();
    assert_eq!(
        by_lane, by_dim,
        "lane and dimension busy must both sum to total"
    );
}

#[test]
fn netstats_matches_recorder_multi_lane_cube() {
    let cube = Cube::of(4);
    let router = Ecube::with_lanes(cube, Resolution::HighToLow, 4);
    let map = ChannelMap::new(router);
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut rec = EventRecorder::new();
    let run = simulate_observed_on(router, &params, &hot_spot(16, 2048), &mut rec);
    assert_eq!(run.delivered_count(), 15);
    assert_stats_match_recorder(&map, &run.stats, &rec);
    assert_lane_stats_match_recorder(&map, &run.stats, &rec);
    // The hot-spot actually spreads onto the extra lanes: some hold time
    // lands outside lane 0.
    assert!(
        run.stats.lane_busy[1..].iter().any(|t| t.as_ns() > 0),
        "adaptive selection must use a lane other than 0 under a hot-spot"
    );
    let util = run.stats.lane_utilization();
    assert_eq!(util.len(), 4);
    assert!(util.iter().all(|&u| (0.0..=1.0).contains(&u)));
    assert!(util[0] >= util[3], "lowest lane is scanned first");
}

#[test]
fn netstats_matches_recorder_multi_lane_torus() {
    let torus = Torus::of(4, 2);
    let router = TorusRouter::with_lane_multiplier(torus, 2);
    let map = ChannelMap::new(router);
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut rec = EventRecorder::new();
    let run = simulate_observed_on(router, &params, &hot_spot(16, 2048), &mut rec);
    assert_eq!(run.delivered_count(), 15);
    assert_stats_match_recorder(&map, &run.stats, &rec);
    assert_lane_stats_match_recorder(&map, &run.stats, &rec);
}

// ---------------------------------------------------------------------
// Watchdog / deadlock paths: the probe sees the same wedge the typed
// error reports.
// ---------------------------------------------------------------------

#[test]
fn deadlock_emits_matching_watchdog_alarm_and_blocked_events() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut plan = FaultPlan::none();
    plan.stick(NodeId(0b010), Dim(0));
    // msg 0 holds 0→0b010 then queues forever on the stuck channel;
    // msg 1 queues behind msg 0's held channel (the engine test-suite's
    // canonical wedge).
    let workload = [msg(0, 0b011, 4096), msg(0b100, 0b010, 4096)];
    let router = Ecube::new(Cube::of(3), Resolution::HighToLow);
    let mut rec = EventRecorder::new();
    let err = simulate_observed_with_faults_on(router, &params, &workload, &plan, &mut rec)
        .expect_err("stuck channel must deadlock");
    let SimError::Deadlock {
        at,
        holders,
        waiters,
    } = err
    else {
        panic!("expected deadlock, got {err}");
    };

    // The recorder survived the Err return and holds exactly one alarm
    // naming the same holders and waiters at the same time.
    assert_eq!(rec.alarms().len(), 1, "one watchdog alarm");
    let alarm = &rec.alarms()[0];
    assert_eq!(alarm.at, at);
    assert_eq!(alarm.holders, holders);
    assert_eq!(alarm.waiters, waiters);

    // Every waiter blocked on a channel and was never granted it: the
    // ring holds its ChannelBlocked event and no later grant for the
    // same channel.
    for &w in &waiters {
        let blocked_ch = rec.events().find_map(|&(_, e)| match e {
            ProbeEvent::ChannelBlocked { msg, ch, .. } if msg == w => Some(ch),
            _ => None,
        });
        let ch = blocked_ch.unwrap_or_else(|| panic!("waiter {w} has no blocked event"));
        let granted_after = rec.events().any(|&(_, e)| {
            matches!(e, ProbeEvent::ChannelGranted { msg, ch: g, .. } if msg == w && g == ch)
        });
        assert!(!granted_after, "waiter {w} must never be granted ch {ch}");
    }
    // The alarm also appears in the ring with the right set sizes.
    assert!(rec.events().any(|&(t, e)| matches!(
        e,
        ProbeEvent::WatchdogAlarm { holders: h, waiters: w }
            if h == holders.len() && w == waiters.len() && t == at
    )));
}

#[test]
fn deadline_rescue_emits_timeout_events_not_alarms() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut plan = FaultPlan::none();
    plan.stick(NodeId(0b010), Dim(0));
    plan.deadline_all(SimTime::from_ms(10));
    let workload = [msg(0, 0b011, 4096), msg(0b100, 0b010, 4096)];
    let router = Ecube::new(Cube::of(3), Resolution::HighToLow);
    let mut rec = EventRecorder::new();
    let run = simulate_observed_with_faults_on(router, &params, &workload, &plan, &mut rec)
        .expect("deadline converts the wedge into timeouts");
    assert_eq!(run.stats.timed_out, 2);
    assert!(rec.alarms().is_empty(), "no deadlock alarm when rescued");
    let timeouts = rec
        .events()
        .filter(|&&(_, e)| matches!(e, ProbeEvent::TimedOut { .. }))
        .count();
    assert_eq!(timeouts, 2);
    // The wedged wait shows up as closed blocked intervals ending at the
    // abort time.
    assert!(rec
        .blocked_intervals()
        .iter()
        .any(|b| b.until == SimTime::from_ms(10)));
}

#[test]
fn one_port_blocking_is_port_wait_not_contention() {
    // Two same-source sends on a one-port node serialize on the virtual
    // injection channel: the recorder must classify all of that blocked
    // time as hop-0/virtual (port wait), mirroring NetStats.
    let cube = Cube::of(3);
    let params = SimParams::ncube2(PortModel::OnePort);
    let router = Ecube::new(cube, Resolution::HighToLow);
    let map = ChannelMap::new(router);
    let workload = [msg(0, 0b001, 4096), msg(0, 0b010, 4096)];
    let mut rec = EventRecorder::new();
    let run = simulate_observed_on(router, &params, &workload, &mut rec);
    assert!(run.stats.port_waits > 0);
    assert_eq!(run.stats.blocks, 0);
    let contention: u64 = (0..map.externals())
        .map(|ch| rec.contention_blocked_ns(ch))
        .sum();
    assert_eq!(contention, 0);
    let inj = map.injection(NodeId(0));
    assert!(rec.blocked_ns(inj) > 0, "injection channel serialized");
}
