//! Deadlock freedom of the [`MinimalAdaptive`] mesh router under the
//! engine's adaptive lane selection — the lane tentpole's safety
//! property, tested the same way `torus_properties.rs` pins the
//! dateline argument.
//!
//! West-first routing forbids exactly the turns (`y± → x−`) that could
//! close a cycle in the channel-dependency graph, and lanes within a
//! class are interchangeable, so the CDG acyclicity argument (checked
//! exhaustively in `hcube/tests/mesh_properties.rs`) survives the
//! engine grabbing *any* free lane of the next link. Here we drive the
//! actual simulator: arbitrary workloads, lane counts, and fault plans
//! must never produce [`SimError::Deadlock`] — faults may abort
//! individual worms (`Failed`), never wedge the network.

use hcube::{Mesh, MeshXY, MinimalAdaptive, NodeId};
use hypercast::PortModel;
use proptest::prelude::*;
use wormsim::{
    simulate_on, simulate_with_faults_on, DepMessage, FaultPlan, SimError, SimParams, SimTime,
};

fn msg(src: NodeId, dst: NodeId, bytes: u32) -> DepMessage {
    DepMessage {
        src,
        dst,
        bytes,
        deps: vec![],
        min_start: SimTime::ZERO,
    }
}

/// A mesh shape plus a random workload over it: up to 24 messages with
/// `src != dst` endpoints, drawn as `(src, offset)` so self-sends are
/// impossible by construction.
fn instance() -> impl Strategy<Value = (u16, u16, Vec<(u32, u32)>)> {
    (2u16..=5, 1u16..=4).prop_flat_map(|(w, h)| {
        let nodes = u32::from(w) * u32::from(h);
        let pair = (0..nodes, 1..nodes).prop_map(move |(s, off)| (s, (s + off) % nodes));
        (Just(w), Just(h), prop::collection::vec(pair, 1..=24usize))
    })
}

proptest! {
    /// Fault-free runs on the adaptive router always drain: every
    /// message delivers, no deadlock — at 1, 2, and 4 lanes, under both
    /// port models.
    #[test]
    fn adaptive_mesh_runs_never_deadlock(
        (w, h, pairs) in instance(),
        lanes_idx in 0usize..3,
        one_port in any::<bool>(),
        bytes in 64u32..4096,
    ) {
        let mesh = Mesh::of(w, h);
        let lanes = [1u8, 2, 4][lanes_idx];
        let port = if one_port { PortModel::OnePort } else { PortModel::AllPort };
        let params = SimParams::ncube2(port);
        let workload: Vec<DepMessage> = pairs
            .iter()
            .map(|&(s, d)| msg(NodeId(s), NodeId(d), bytes))
            .collect();
        let run = simulate_on(MinimalAdaptive::with_lanes(mesh, lanes), &params, &workload);
        prop_assert_eq!(run.delivered_count(), workload.len());
        // The deterministic XY baseline drains the same workload (same
        // delivery set; timings may differ).
        let xy = simulate_on(MeshXY::with_lanes(mesh, lanes), &params, &workload);
        prop_assert_eq!(xy.delivered_count(), workload.len());
    }

    /// Faulted runs may abort worms but must never wedge: random dead
    /// links and dead nodes produce `Failed` outcomes, not
    /// `SimError::Deadlock`. (Stuck channels are excluded — a phantom
    /// holder is *injected* deadlock and the watchdog must report it.)
    #[test]
    fn adaptive_mesh_fault_plans_never_deadlock(
        (w, h, pairs) in instance(),
        lanes_idx in 0usize..3,
        dead_links in 0usize..6,
        dead_nodes in 0usize..2,
        seed in any::<u64>(),
        bytes in 64u32..4096,
    ) {
        let mesh = Mesh::of(w, h);
        let lanes = [1u8, 2, 4][lanes_idx];
        let params = SimParams::ncube2(PortModel::AllPort);
        let workload: Vec<DepMessage> = pairs
            .iter()
            .map(|&(s, d)| msg(NodeId(s), NodeId(d), bytes))
            .collect();
        let mut plan = FaultPlan::random_links_on(&mesh, dead_links, seed);
        for v in FaultPlan::random_nodes_on(&mesh, dead_nodes, seed, &[]).dead_nodes() {
            plan.fail_node(v);
        }
        // Kill a random single lane too: lane-granular faults must be
        // routed around inside the class, or abort the worm — never
        // wedge it.
        if lanes > 1 {
            let v = NodeId((seed % u64::from(mesh.width())) as u32);
            plan.fail_lane(v, hcube::Dim(0), (seed % u64::from(lanes)) as u8);
        }
        let router = MinimalAdaptive::with_lanes(mesh, lanes);
        match simulate_with_faults_on(router, &params, &workload, &plan) {
            Ok(run) => {
                // Every message either delivered or was aborted by the
                // plan — nothing is left in limbo.
                let failed = run
                    .messages
                    .iter()
                    .filter(|m| !m.outcome.is_delivered())
                    .count();
                prop_assert_eq!(run.delivered_count() + failed, workload.len());
            }
            Err(SimError::Deadlock { .. }) => {
                prop_assert!(false, "west-first adaptive routing must not deadlock");
            }
            Err(e) => prop_assert!(false, "unexpected workload error: {e}"),
        }
    }
}

/// A dense all-to-all on a small mesh at one lane — the harshest
/// blocking pattern the turn model must survive without the extra lanes
/// hiding anything.
#[test]
fn single_lane_all_to_all_drains() {
    let mesh = Mesh::of(4, 4);
    let params = SimParams::ncube2(PortModel::AllPort);
    let workload: Vec<DepMessage> = mesh
        .nodes()
        .flat_map(|s| {
            mesh.nodes()
                .filter(move |&d| d != s)
                .map(move |d| msg(s, d, 1024))
        })
        .collect();
    let run = simulate_on(MinimalAdaptive::new(mesh), &params, &workload);
    assert_eq!(run.delivered_count(), workload.len());
    assert!(run.stats.blocks > 0, "all-to-all must actually contend");
}
