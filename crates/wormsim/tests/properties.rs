//! Property tests tying the simulator to the paper's theory: schedules
//! proved contention-free must never block a channel in the physical
//! model, and the timing model must respect basic monotonicity.

use hcube::{Cube, NodeId, Resolution, Topology};
use hypercast::{Algorithm, PortModel};
use proptest::prelude::*;
use wormsim::{simulate, simulate_multicast, DepMessage, SimParams, SimTime};

fn instance() -> impl Strategy<Value = (u8, u32, Vec<u32>)> {
    (3u8..=7).prop_flat_map(|n| {
        let m = 1u32 << n;
        (
            Just(n),
            0..m,
            prop::collection::btree_set(0..m, 1..=(m as usize - 1).min(30)),
        )
            .prop_map(|(n, src, set)| {
                let dests: Vec<u32> = set.into_iter().filter(|&d| d != src).collect();
                (n, src, dests)
            })
    })
}

fn build(
    algo: Algorithm,
    n: u8,
    port: PortModel,
    src: u32,
    dests: &[u32],
) -> hypercast::MulticastTree {
    let dests: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
    algo.build(
        Cube::of(n),
        Resolution::HighToLow,
        port,
        NodeId(src),
        &dests,
    )
    .unwrap()
}

proptest! {
    /// Theorem 6 made physical: W-sort (and Maxport, separate addressing,
    /// the dimensional tree) never block an external channel, for any
    /// destination set, message size, or port model.
    #[test]
    fn contention_free_schedules_never_block((n, src, dests) in instance(),
                                             bytes in 1u32..16384,
                                             allport in any::<bool>()) {
        prop_assume!(!dests.is_empty());
        let port = if allport { PortModel::AllPort } else { PortModel::OnePort };
        let params = SimParams::ncube2(port);
        for algo in Algorithm::ALL {
            let guaranteed = match port {
                PortModel::AllPort => algo.contention_free_all_port(),
                PortModel::OnePort => true, // all are contention-free one-port
                PortModel::KPort(_) => false, // not exercised here
            };
            if !guaranteed {
                continue;
            }
            let tree = build(algo, n, port, src, &dests);
            let report = simulate_multicast(&tree, &params, bytes);
            prop_assert_eq!(
                report.blocks, 0,
                "{} {:?} blocked {} times", algo, port, report.blocks
            );
        }
    }

    /// Every destination's delay is at least the unblocked unicast latency
    /// for its distance, and max ≥ avg.
    #[test]
    fn delays_respect_unicast_floor((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty());
        let params = SimParams::ncube2(PortModel::AllPort);
        let tree = build(Algorithm::WSort, n, PortModel::AllPort, src, &dests);
        let report = simulate_multicast(&tree, &params, 4096);
        prop_assert!(report.max_delay >= report.avg_delay);
        for &(dst, t) in &report.deliveries {
            let hops = NodeId(src).distance(dst);
            // The actual route may go through intermediates, but delay is
            // floored by a direct unicast of at least one hop.
            prop_assert!(t >= params.unicast_latency(hops.min(1), 4096));
        }
    }

    /// Larger payloads never arrive earlier.
    #[test]
    fn delay_monotone_in_message_size((n, src, dests) in instance(),
                                      small in 1u32..2048) {
        prop_assume!(!dests.is_empty());
        let params = SimParams::ncube2(PortModel::AllPort);
        let tree = build(Algorithm::Combine, n, PortModel::AllPort, src, &dests);
        let a = simulate_multicast(&tree, &params, small);
        let b = simulate_multicast(&tree, &params, small * 2);
        prop_assert!(b.max_delay >= a.max_delay);
        prop_assert!(b.avg_delay >= a.avg_delay);
    }

    /// One-port execution of the same tree is never faster than all-port
    /// (for contention-free trees, where FIFO ordering can't flip).
    #[test]
    fn one_port_never_faster((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty());
        let tree = build(Algorithm::WSort, n, PortModel::AllPort, src, &dests);
        let all = simulate_multicast(&tree, &SimParams::ncube2(PortModel::AllPort), 4096);
        let one = simulate_multicast(&tree, &SimParams::ncube2(PortModel::OnePort), 4096);
        prop_assert!(one.max_delay >= all.max_delay);
        prop_assert!(one.avg_delay >= all.avg_delay);
    }

    /// The simulation is a pure function of its inputs.
    #[test]
    fn deterministic((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty());
        let params = SimParams::ncube2(PortModel::AllPort);
        let tree = build(Algorithm::UCube, n, PortModel::AllPort, src, &dests);
        let a = simulate_multicast(&tree, &params, 4096);
        let b = simulate_multicast(&tree, &params, 4096);
        prop_assert_eq!(a.deliveries, b.deliveries);
        prop_assert_eq!(a.blocks, b.blocks);
    }

    /// Dateline virtual channels make dimension-ordered torus routing
    /// deadlock-free: any random unicast workload — including dense
    /// wrap-heavy patterns — must complete with every message delivered,
    /// never tripping the engine's deadlock watchdog.
    #[test]
    fn torus_random_workloads_never_deadlock(
        (k, n) in (2u16..=5, 1u8..=3),
        raw in prop::collection::vec((0u32..1000, 0u32..1000, 64u32..4096), 1..40),
        allport in any::<bool>()
    ) {
        let torus = hcube::Torus::of(k, n);
        let router = hcube::TorusRouter::new(torus);
        let nodes = torus.node_count() as u32;
        let workload: Vec<DepMessage> = raw.iter().map(|&(s, d, bytes)| {
            let src = NodeId(s % nodes);
            let mut dst = NodeId(d % nodes);
            if dst == src {
                dst = NodeId((dst.0 + 1) % nodes);
            }
            DepMessage { src, dst, bytes, deps: vec![], min_start: SimTime::ZERO }
        }).collect();
        let port = if allport { PortModel::AllPort } else { PortModel::OnePort };
        let run = wormsim::try_simulate_on(router, &SimParams::ncube2(port), &workload)
            .expect("dateline VCs must prevent deadlock");
        prop_assert_eq!(run.delivered_count(), workload.len());
        for (m, r) in workload.iter().zip(&run.messages) {
            // No delivery beats the unblocked latency for its distance.
            let hops = torus.distance(m.src, m.dst);
            prop_assert!(
                r.delivered >= SimParams::ncube2(port).unicast_latency(hops, m.bytes)
            );
        }
    }

    /// U-cube's schedule steps upper-bound the simulated makespan: with
    /// nCUBE-2 parameters each step costs at most one send-startup +
    /// transfer + receive, plus per-hop terms; the self-timed execution
    /// cannot exceed steps × (that envelope) when contention-free.
    #[test]
    fn makespan_bounded_by_step_envelope((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty());
        let params = SimParams::ncube2(PortModel::OnePort);
        let tree = build(Algorithm::UCube, n, PortModel::OnePort, src, &dests);
        let report = simulate_multicast(&tree, &params, 4096);
        // Envelope per step on one-port: every node sends at most
        // (its sends) serially, but across the whole tree a step costs at
        // most the full unicast latency of the slowest send plus the CPU
        // serialization of earlier sends in the same node.
        let per_step = params.unicast_latency(u32::from(n), 4096)
            + params.t_send_sw * u64::from(n);
        prop_assert!(
            report.max_delay <= per_step * u64::from(tree.steps.max(1)),
            "max {} > {} × {}", report.max_delay, tree.steps, per_step
        );
    }
}

/// One raw random message: (src, dst, bytes, dep indices, start µs).
type RawMessage = (u32, u32, u32, Vec<usize>, u64);

/// Random acyclic dependency workloads: arbitrary senders/receivers,
/// arbitrary payloads, dependencies only on earlier messages (acyclic by
/// construction).
fn random_workload() -> impl Strategy<Value = (u8, Vec<RawMessage>)> {
    (2u8..=6).prop_flat_map(|n| {
        let nodes = 1u32 << n;
        let raw = prop::collection::vec(
            (
                0..nodes,
                0..nodes,
                1u32..8192,
                prop::collection::vec(0usize..64, 0..3),
                0u64..1000,
            ),
            1..24,
        );
        (Just(n), raw)
    })
}

proptest! {
    /// Engine fuzz: every well-formed workload completes, with delivery
    /// times after injection, blocked time consistent, and determinism.
    #[test]
    fn engine_handles_arbitrary_acyclic_workloads(
        (n, raw) in random_workload(),
        allport in any::<bool>()
    ) {
        let port = if allport { PortModel::AllPort } else { PortModel::OnePort };
        let params = SimParams::ncube2(port);
        let cube = Cube::of(n);
        let workload: Vec<DepMessage> = raw
            .iter()
            .enumerate()
            .map(|(i, (src, dst, bytes, deps, start_us))| {
                let src = NodeId(*src);
                let mut dst = NodeId(*dst);
                if dst == src {
                    dst = NodeId(dst.0 ^ 1); // avoid self-sends
                }
                DepMessage {
                    src,
                    dst,
                    bytes: *bytes,
                    // Dependencies point strictly backwards: acyclic.
                    deps: deps.iter().filter(|&&d| d < i).map(|&d| d % i.max(1)).collect(),
                    min_start: SimTime::from_us(*start_us),
                }
            })
            .collect();
        let run = simulate(cube, Resolution::HighToLow, &params, &workload);
        prop_assert_eq!(run.messages.len(), workload.len());
        for (m, r) in workload.iter().zip(&run.messages) {
            // Injection respects min_start and the send software cost.
            prop_assert!(r.injected >= m.min_start + params.t_send_sw);
            // Network time covers hops and drain.
            let floor = params.t_hop * u64::from(m.src.distance(m.dst))
                + params.t_byte * u64::from(m.bytes);
            prop_assert!(r.network_done >= r.injected + floor);
            prop_assert_eq!(r.delivered, r.network_done + params.t_recv_sw);
            // Dependencies delivered before this message was injected.
            for &d in &m.deps {
                prop_assert!(run.messages[d].delivered + params.t_send_sw <= r.injected);
            }
        }
        // Makespan is the max delivery.
        let max = run.messages.iter().map(|r| r.delivered).max().unwrap();
        prop_assert_eq!(run.stats.makespan, max);
        // Determinism.
        let again = simulate(cube, Resolution::HighToLow, &params, &workload);
        prop_assert_eq!(run.messages, again.messages);
    }

    /// Concurrent multicasts: total blocking is zero when the trees'
    /// sources live in disjoint half-cubes with their destinations.
    #[test]
    fn concurrent_half_cube_multicasts_are_independent(
        n in 3u8..=7,
        lo_set in prop::collection::btree_set(1u32..64, 1..10),
        hi_set in prop::collection::btree_set(1u32..64, 1..10),
    ) {
        let cube = Cube::of(n);
        let half = cube.node_count() as u32 / 2;
        let lo: Vec<NodeId> = lo_set.iter().map(|&v| NodeId(v % half)).filter(|&v| v != NodeId(0))
            .collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        let hi: Vec<NodeId> = hi_set.iter().map(|&v| NodeId(half + v % half))
            .filter(|&v| v != NodeId(half))
            .collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        prop_assume!(!lo.is_empty() && !hi.is_empty());
        let params = SimParams::ncube2(PortModel::AllPort);
        let t_lo = Algorithm::WSort
            .build(cube, Resolution::HighToLow, PortModel::AllPort, NodeId(0), &lo)
            .unwrap();
        let t_hi = Algorithm::WSort
            .build(cube, Resolution::HighToLow, PortModel::AllPort, NodeId(half), &hi)
            .unwrap();
        let reports = wormsim::simulate_concurrent_multicasts(&[&t_lo, &t_hi], &params, 2048);
        // Theorem 2 (inside/outside subcube separation) made physical:
        // paths within each half never meet.
        prop_assert_eq!(reports.trees[0].blocks + reports.trees[1].blocks, 0);
        prop_assert_eq!(reports.stats.blocks, 0);
        let solo_lo = simulate_multicast(&t_lo, &params, 2048);
        prop_assert_eq!(&reports.trees[0].deliveries, &solo_lo.deliveries);
    }
}

proptest! {
    /// Cross-model validation: on contention-free trees the flit-level
    /// engine and the channel-holding event engine agree exactly (modulo
    /// the +1 calibration constant) for every constituent unicast.
    #[test]
    fn flit_and_event_models_agree_when_contention_free((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty() && dests.len() <= 20);
        let cube = Cube::of(n);
        let tree = build(Algorithm::WSort, n, PortModel::AllPort, src, &dests);
        let cycle_params = SimParams {
            t_send_sw: SimTime::ZERO,
            t_recv_sw: SimTime::ZERO,
            t_hop: SimTime::from_ns(1),
            t_byte: SimTime::from_ns(1),
            port_model: PortModel::AllPort,
            cpu_serialized_startup: false,
        };
        let mut inbound = std::collections::HashMap::new();
        for (i, u) in tree.unicasts.iter().enumerate() {
            inbound.insert(u.dst, i);
        }
        let event_w: Vec<DepMessage> = tree.unicasts.iter().map(|u| DepMessage {
            src: u.src, dst: u.dst, bytes: 16,
            deps: inbound.get(&u.src).map(|&i| vec![i]).unwrap_or_default(),
            min_start: SimTime::ZERO,
        }).collect();
        let er = wormsim::simulate(cube, Resolution::HighToLow, &cycle_params, &event_w);
        let flit_w: Vec<wormsim::FlitMessage> = tree.unicasts.iter().map(|u| {
            let start = inbound.get(&u.src).map(|&i| er.messages[i].delivered.as_ns()).unwrap_or(0);
            wormsim::FlitMessage { src: u.src, dst: u.dst, flits: 16, start_cycle: start }
        }).collect();
        let fr = wormsim::simulate_flits(cube, Resolution::HighToLow, &flit_w);
        for (i, (f, e)) in fr.iter().zip(&er.messages).enumerate() {
            prop_assert_eq!(f.blocked_cycles, 0, "msg {} blocked", i);
            let start = flit_w[i].start_cycle;
            prop_assert_eq!(
                f.delivered_cycle - start + 1,
                e.delivered.as_ns() - start,
                "msg {}", i
            );
        }
    }

    /// Under contention the event model is conservative: no message
    /// finishes later in the flit model than the event model predicts
    /// (same-time injection, shared channels, FIFO in both).
    #[test]
    fn event_model_is_conservative_under_contention(
        n in 3u8..=5,
        pairs in prop::collection::vec((0u32..32, 0u32..32), 2..6),
        flits in 4u32..64,
    ) {
        let cube = Cube::of(n);
        let nodes = 1u32 << n;
        let w: Vec<(NodeId, NodeId)> = pairs.iter()
            .map(|&(s, d)| {
                let s = NodeId(s % nodes);
                let mut d = NodeId(d % nodes);
                if d == s { d = NodeId(d.0 ^ 1); }
                (s, d)
            })
            .collect();
        let cycle_params = SimParams {
            t_send_sw: SimTime::ZERO,
            t_recv_sw: SimTime::ZERO,
            t_hop: SimTime::from_ns(1),
            t_byte: SimTime::from_ns(1),
            port_model: PortModel::AllPort,
            cpu_serialized_startup: false,
        };
        let event_w: Vec<DepMessage> = w.iter().map(|&(s, d)| DepMessage {
            src: s, dst: d, bytes: flits, deps: vec![], min_start: SimTime::ZERO,
        }).collect();
        let flit_w: Vec<wormsim::FlitMessage> = w.iter().map(|&(s, d)| wormsim::FlitMessage {
            src: s, dst: d, flits, start_cycle: 0,
        }).collect();
        let er = wormsim::simulate(cube, Resolution::HighToLow, &cycle_params, &event_w);
        let fr = wormsim::simulate_flits(cube, Resolution::HighToLow, &flit_w);
        let event_makespan = er.messages.iter().map(|m| m.delivered.as_ns()).max().unwrap();
        let flit_makespan = fr.iter().map(|f| f.delivered_cycle).max().unwrap();
        prop_assert!(
            flit_makespan < event_makespan + u64::from(flits),
            "flit {} vs event {}", flit_makespan, event_makespan
        );
    }
}
