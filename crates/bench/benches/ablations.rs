//! Criterion wrappers for the ablation experiments (DESIGN.md §6) at
//! reduced trial counts; full artifacts come from
//! `cargo run -p bench --release --bin all_figures`.

use criterion::{criterion_group, criterion_main, Criterion};
use workloads::ablations;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("ports_trials2", |b| {
        b.iter(|| std::hint::black_box(ablations::ablation_ports(2)))
    });
    g.bench_function("message_size_trials2", |b| {
        b.iter(|| std::hint::black_box(ablations::ablation_message_size(2)))
    });
    g.bench_function("sensitivity_trials2", |b| {
        b.iter(|| std::hint::black_box(ablations::ablation_sensitivity(2)))
    });
    g.bench_function("optimality_trials2", |b| {
        b.iter(|| std::hint::black_box(ablations::ablation_optimality(2)))
    });
    g.bench_function("contention_trials2", |b| {
        b.iter(|| std::hint::black_box(ablations::ablation_contention(2)))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
