//! Criterion bench regenerating Figures 11-12 (5-cube delays, nCUBE-2
//! parameters) at a reduced trial count.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig11_12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_12");
    g.sample_size(10);
    g.bench_function("delay_5cube_trials3", |b| {
        b.iter(|| std::hint::black_box(workloads::figures::fig11_12(3)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig11_12);
criterion_main!(benches);
