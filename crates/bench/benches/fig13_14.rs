//! Criterion bench regenerating Figures 13-14 (10-cube simulated delays)
//! at a reduced trial count.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig13_14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_14");
    g.sample_size(10);
    g.bench_function("delay_10cube_trials2", |b| {
        b.iter(|| std::hint::black_box(workloads::figures::fig13_14(2)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig13_14);
criterion_main!(benches);
