//! Costs of the verification machinery: the quadratic Definition-4
//! contention checker and the distributed-protocol executor, per
//! destination count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcube::{Cube, NodeId, Resolution};
use hypercast::contention::contention_witnesses;
use hypercast::{protocol, Algorithm, PortModel};
use workloads::destsets::{random_dests, trial_rng};

fn bench_verification(c: &mut Criterion) {
    let cube = Cube::of(8);
    let mut g = c.benchmark_group("verification");
    for &m in &[15usize, 63, 255] {
        let mut rng = trial_rng("bench_verification", m, 0);
        let dests = random_dests(&mut rng, cube, NodeId(0), m);
        let tree = Algorithm::WSort
            .build(
                cube,
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests,
            )
            .unwrap();
        g.bench_with_input(BenchmarkId::new("contention_checker", m), &tree, |b, t| {
            b.iter(|| std::hint::black_box(contention_witnesses(t)))
        });
        g.bench_with_input(BenchmarkId::new("protocol_execute", m), &dests, |b, d| {
            b.iter(|| {
                std::hint::black_box(
                    protocol::execute(Algorithm::WSort, cube, Resolution::HighToLow, NodeId(0), d)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
