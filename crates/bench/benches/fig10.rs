//! Criterion bench regenerating Figure 10 (stepwise, 10-cube) at a
//! reduced trial count.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("steps_10cube_trials3", |b| {
        b.iter(|| std::hint::black_box(workloads::figures::fig10(3)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
