//! Criterion bench regenerating Figure 9 (stepwise, 6-cube) at a reduced
//! trial count. `cargo run -p bench --release --bin fig09` produces the
//! full-trial artifact.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig09(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    g.bench_function("steps_6cube_trials3", |b| {
        b.iter(|| std::hint::black_box(workloads::figures::fig09(3)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig09);
criterion_main!(benches);
