//! Microbenchmarks of multicast tree construction: cost per algorithm as
//! the destination count grows (the paper's centralized preprocessing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcube::{Cube, NodeId, Resolution};
use hypercast::{Algorithm, PortModel};
use workloads::destsets::{random_dests, trial_rng};

fn bench_construction(c: &mut Criterion) {
    let cube = Cube::of(10);
    let mut g = c.benchmark_group("tree_construction");
    for &m in &[15usize, 127, 1023] {
        let mut rng = trial_rng("bench_construction", m, 0);
        let dests = random_dests(&mut rng, cube, NodeId(0), m);
        for algo in Algorithm::PAPER {
            g.bench_with_input(BenchmarkId::new(algo.name(), m), &dests, |b, dests| {
                b.iter(|| {
                    std::hint::black_box(
                        algo.build(
                            cube,
                            Resolution::HighToLow,
                            PortModel::AllPort,
                            NodeId(0),
                            dests,
                        )
                        .unwrap(),
                    )
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
