//! Simulator throughput: full-broadcast wormhole simulation cost per cube
//! size (the substrate the delay figures stand on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcube::{Cube, NodeId, Resolution};
use hypercast::{collectives::broadcast, Algorithm, PortModel};
use wormsim::{simulate_multicast, SimParams};

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_broadcast");
    let params = SimParams::ncube2(PortModel::AllPort);
    for &n in &[6u8, 8, 10] {
        let tree = broadcast(
            Algorithm::WSort,
            Cube::of(n),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("wsort_4096B", n), &tree, |b, tree| {
            b.iter(|| std::hint::black_box(simulate_multicast(tree, &params, 4096)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
