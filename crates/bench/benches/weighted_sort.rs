//! Ablation bench: the in-place `weighted_sort` vs the allocating
//! literal transcription of Figure 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcube::chain::relative_chain;
use hcube::{Cube, NodeId, Resolution};
use hypercast::algorithms::weighted_sort::{weighted_sort, weighted_sort_reference};
use workloads::destsets::{random_dests, trial_rng};

fn bench_weighted_sort(c: &mut Criterion) {
    let cube = Cube::of(10);
    let mut g = c.benchmark_group("weighted_sort");
    for &m in &[15usize, 127, 1023] {
        let mut rng = trial_rng("bench_wsort", m, 0);
        let dests = random_dests(&mut rng, cube, NodeId(0), m);
        let chain = relative_chain(Resolution::HighToLow, 10, NodeId(0), &dests).unwrap();
        g.bench_with_input(BenchmarkId::new("in_place", m), &chain, |b, chain| {
            b.iter(|| {
                let mut d = chain.clone();
                weighted_sort(&mut d, 10);
                std::hint::black_box(d)
            })
        });
        g.bench_with_input(BenchmarkId::new("reference", m), &chain, |b, chain| {
            b.iter(|| {
                let mut d = chain.clone();
                weighted_sort_reference(&mut d, 10);
                std::hint::black_box(d)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_weighted_sort);
criterion_main!(benches);
