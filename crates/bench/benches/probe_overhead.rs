//! Probe overhead: cost of the in-loop observability layer on the
//! fig11-style multicast workload (6-cube, all-port, 32 destinations,
//! 4 KB), comparing
//!
//! - `baseline` — plain `simulate` (no probe parameter at all),
//! - `noop_probe` — `simulate_observed` with [`wormsim::NoopProbe`]
//!   (must monomorphize away: within noise of baseline, the tentpole's
//!   acceptance bar),
//! - `event_recorder` — full ring-buffer + occupancy accounting,
//! - `metrics` — counter/histogram registry.

use criterion::{criterion_group, criterion_main, Criterion};
use hcube::{Cube, NodeId, Resolution};
use hypercast::{Algorithm, PortModel};
use wormsim::{
    multicast_workload, simulate, simulate_observed, DepMessage, EventRecorder, Metrics, NoopProbe,
    SimParams,
};

/// Fig. 11 operating point: 6-cube, 32 random destinations, 4 KB.
fn fig11_workload() -> (Cube, Resolution, SimParams, Vec<DepMessage>) {
    let cube = Cube::of(6);
    let resolution = Resolution::HighToLow;
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut rng = workloads::destsets::trial_rng("probe_overhead", 0, 0);
    let dests = workloads::destsets::random_dests(&mut rng, cube, NodeId(0), 32);
    let tree = Algorithm::UCube
        .build(cube, resolution, PortModel::AllPort, NodeId(0), &dests)
        .unwrap();
    (cube, resolution, params, multicast_workload(&tree, 4096))
}

fn bench_probe_overhead(c: &mut Criterion) {
    let (cube, resolution, params, workload) = fig11_workload();
    let mut g = c.benchmark_group("probe_overhead");

    g.bench_function("baseline", |b| {
        b.iter(|| std::hint::black_box(simulate(cube, resolution, &params, &workload)))
    });
    g.bench_function("noop_probe", |b| {
        b.iter(|| {
            let mut probe = NoopProbe;
            std::hint::black_box(simulate_observed(
                cube, resolution, &params, &workload, &mut probe,
            ))
        })
    });
    g.bench_function("event_recorder", |b| {
        b.iter(|| {
            let mut probe = EventRecorder::new();
            std::hint::black_box(simulate_observed(
                cube, resolution, &params, &workload, &mut probe,
            ))
        })
    });
    g.bench_function("metrics", |b| {
        b.iter(|| {
            let mut probe = Metrics::new();
            std::hint::black_box(simulate_observed(
                cube, resolution, &params, &workload, &mut probe,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_probe_overhead);
criterion_main!(benches);
