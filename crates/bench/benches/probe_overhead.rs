//! Probe overhead: cost of the in-loop observability layer on the
//! fig11-style multicast workload (6-cube, all-port, 32 destinations,
//! 4 KB), comparing
//!
//! - `baseline` — plain `simulate` (no probe parameter at all),
//! - `noop_probe` — `simulate_observed` with [`wormsim::NoopProbe`]
//!   (must monomorphize away: within noise of baseline, the tentpole's
//!   acceptance bar),
//! - `event_recorder` — full ring-buffer + occupancy accounting,
//! - `metrics` — counter/histogram registry,
//! - `telemetry_probe` — the traffic flight recorder's blocking-interval
//!   sink ([`traffic::TelemetryProbe`]),
//! - `telemetry_full` — an entire observed traffic run with span +
//!   time-series assembly vs `traffic_plain`, the same run unobserved
//!   (the telemetry layer's end-to-end cost).

use criterion::{criterion_group, criterion_main, Criterion};
use hcube::{Cube, NodeId, Resolution};
use hypercast::{Algorithm, PortModel};
use traffic::{
    ArrivalProcess, Arrivals, DestPattern, TelemetryConfig, TelemetryProbe, TrafficSpec,
};
use wormsim::{
    multicast_workload, simulate, simulate_observed, DepMessage, EventRecorder, Metrics, NoopProbe,
    SimParams,
};

/// Fig. 11 operating point: 6-cube, 32 random destinations, 4 KB.
fn fig11_workload() -> (Cube, Resolution, SimParams, Vec<DepMessage>) {
    let cube = Cube::of(6);
    let resolution = Resolution::HighToLow;
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut rng = workloads::destsets::trial_rng("probe_overhead", 0, 0);
    let dests = workloads::destsets::random_dests(&mut rng, cube, NodeId(0), 32);
    let tree = Algorithm::UCube
        .build(cube, resolution, PortModel::AllPort, NodeId(0), &dests)
        .unwrap();
    (cube, resolution, params, multicast_workload(&tree, 4096))
}

fn bench_probe_overhead(c: &mut Criterion) {
    let (cube, resolution, params, workload) = fig11_workload();
    let mut g = c.benchmark_group("probe_overhead");

    g.bench_function("baseline", |b| {
        b.iter(|| std::hint::black_box(simulate(cube, resolution, &params, &workload)))
    });
    g.bench_function("noop_probe", |b| {
        b.iter(|| {
            let mut probe = NoopProbe;
            std::hint::black_box(simulate_observed(
                cube, resolution, &params, &workload, &mut probe,
            ))
        })
    });
    g.bench_function("event_recorder", |b| {
        b.iter(|| {
            let mut probe = EventRecorder::new();
            std::hint::black_box(simulate_observed(
                cube, resolution, &params, &workload, &mut probe,
            ))
        })
    });
    g.bench_function("metrics", |b| {
        b.iter(|| {
            let mut probe = Metrics::new();
            std::hint::black_box(simulate_observed(
                cube, resolution, &params, &workload, &mut probe,
            ))
        })
    });
    g.bench_function("telemetry_probe", |b| {
        b.iter(|| {
            let mut probe = TelemetryProbe::new();
            let run = simulate_observed(cube, resolution, &params, &workload, &mut probe);
            std::hint::black_box((run, probe.take_intervals()))
        })
    });
    g.finish();
}

/// Open-loop operating point for the end-to-end comparison: a loaded
/// 5-cube pool run, small enough for criterion, contended enough that
/// the blocking-interval sink sees real traffic.
fn traffic_spec() -> TrafficSpec {
    let mut rng = workloads::destsets::trial_rng("probe_overhead", 1, 0);
    let pool = DestPattern::uniform_pool(&mut rng, &Cube::of(5), 4, 6);
    let mut spec = TrafficSpec::new(Arrivals::new(ArrivalProcess::Poisson, 20.0), pool, 40, 7);
    spec.cache_capacity = 8;
    spec
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let cube = Cube::of(5);
    let params = SimParams::ncube2(PortModel::AllPort);
    let spec = traffic_spec();
    let cfg = TelemetryConfig::default();
    let mut g = c.benchmark_group("telemetry_overhead");

    g.bench_function("traffic_plain", |b| {
        b.iter(|| {
            std::hint::black_box(traffic::run_cube(
                &spec,
                cube,
                Resolution::HighToLow,
                Algorithm::WSort,
                &params,
            ))
        })
    });
    g.bench_function("telemetry_full", |b| {
        b.iter(|| {
            std::hint::black_box(traffic::run_cube_with_telemetry(
                &spec,
                cube,
                Resolution::HighToLow,
                Algorithm::WSort,
                &params,
                &cfg,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_probe_overhead, bench_telemetry_overhead);
criterion_main!(benches);
