//! Shared output plumbing for the figure-regeneration binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use workloads::Figure;

/// Directory the regeneration binaries write their artifacts to
/// (`results/` at the workspace root, created on demand).
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Prints a figure (table + ASCII plot) to stdout and archives it as
/// `results/<id>.txt` and `results/<id>.json`.
pub fn emit(figure: &Figure) {
    let table = figure.to_table();
    let plot = figure.to_ascii_plot(72, 18);
    println!("{table}");
    println!("{plot}");
    let dir = results_dir();
    let mut artifact = table;
    artifact.push('\n');
    artifact.push_str(&plot);
    std::fs::write(dir.join(format!("{}.txt", figure.id)), artifact).expect("write txt");
    std::fs::write(dir.join(format!("{}.json", figure.id)), figure.to_json()).expect("write json");
    eprintln!("[saved results/{0}.txt results/{0}.json]", figure.id);
}

/// Parses a `--trials N` override from argv, falling back to `default`.
#[must_use]
pub fn trials_arg(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--trials")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}
