//! `mcast` — command-line front end: build, verify, and simulate one
//! multicast.
//!
//! ```text
//! cargo run -p bench --release --bin mcast -- \
//!     --n 6 --algo wsort --port all --source 0 --dests 3,9,17,33,60 \
//!     --bytes 4096 [--random 20] [--seed 7] [--trace] [--json] \
//!     [--faults K] [--fail-link V:D]... [--fail-node V]...
//! ```
//!
//! With any fault flag, each tree is additionally replayed over the
//! faulty network (delivery ratio, makespan) and then repaired with
//! `hypercast::repair` and replayed again.
//!
//! `--topology torus --arity K` switches to a k-ary n-cube: the tree
//! algorithms are hypercube-specific, so the torus path simulates
//! separate addressing (one dimension-ordered unicast per destination)
//! on the dateline-VC router and reports the same delay/utilization
//! summary. `--topology mesh --width W --height H` does the same on a
//! 2D mesh, where `--router ecube|adaptive` picks deterministic XY or
//! the west-first minimal-adaptive router. `--lanes N` runs any backend
//! with N virtual lanes per physical link (the torus needs an even N —
//! its lanes come in dateline pairs).

use hcube::{
    Cube, Dim, Ecube, Mesh, MeshXY, MinimalAdaptive, NodeId, Resolution, Router, Topology, Torus,
    TorusRouter,
};
use hypercast::collectives::{
    allgather, allgather_separate, allreduce, allreduce_separate, reduce_scatter,
    reduce_scatter_separate,
};
use hypercast::contention::contention_witnesses;
use hypercast::oracle::verify_collective;
use hypercast::repair::{repair, NetworkFaults};
use hypercast::{Algorithm, CollectiveKind, CollectiveSchedule, PortModel, TreeFamily};
use traffic::{
    ArrivalProcess, ChaosReport, ChaosSpec, DestPattern, Telemetry, TelemetryConfig, TrafficReport,
    TrafficSpec,
};
use wormsim::network::ChannelMap;
use wormsim::{
    simulate_observed_on, simulate_on, ChannelTrace, DepMessage, EventRecorder, FaultPlan, Metrics,
    NetStats, SimParams, SimTime, Tee,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum TopologyKind {
    Cube,
    Torus,
    Mesh,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum RouterKind {
    /// Deterministic dimension-ordered routing (E-cube / XY).
    Ecube,
    /// West-first minimal-adaptive routing (mesh only).
    Adaptive,
}

struct Args {
    n: u8,
    topology: TopologyKind,
    arity: u16,
    width: u16,
    height: u16,
    router: RouterKind,
    lanes: Option<u8>,
    collective: Option<CollectiveKind>,
    bine: bool,
    algo: Option<Algorithm>,
    port: PortModel,
    source: u32,
    dests: Vec<u32>,
    random: Option<usize>,
    seed: u64,
    bytes: u32,
    trace: bool,
    json: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    spans_out: Option<String>,
    timeseries_out: Option<String>,
    faults: usize,
    fail_links: Vec<(u32, u8)>,
    fail_nodes: Vec<u32>,
    load: Option<f64>,
    arrivals: ArrivalProcess,
    sessions: usize,
    chaos: Option<(f64, f64)>,
    retries: u32,
    backoff_us: u64,
    workers: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 6,
        topology: TopologyKind::Cube,
        arity: 4,
        width: 4,
        height: 4,
        router: RouterKind::Ecube,
        lanes: None,
        collective: None,
        bine: false,
        algo: None,
        port: PortModel::AllPort,
        source: 0,
        dests: Vec::new(),
        random: None,
        seed: 1,
        bytes: 4096,
        trace: false,
        json: false,
        trace_out: None,
        metrics_out: None,
        spans_out: None,
        timeseries_out: None,
        faults: 0,
        fail_links: Vec::new(),
        fail_nodes: Vec::new(),
        load: None,
        arrivals: ArrivalProcess::Poisson,
        sessions: 100,
        chaos: None,
        retries: 3,
        backoff_us: 500,
        workers: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<&str, String> {
            *i += 1;
            argv.get(*i)
                .map(String::as_str)
                .ok_or_else(|| format!("missing value for {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--n" => args.n = take(&mut i)?.parse().map_err(|e| format!("--n: {e}"))?,
            "--topology" => {
                args.topology = match take(&mut i)? {
                    "cube" | "hypercube" => TopologyKind::Cube,
                    "torus" => TopologyKind::Torus,
                    "mesh" => TopologyKind::Mesh,
                    other => return Err(format!("unknown topology {other}")),
                }
            }
            "--arity" => args.arity = take(&mut i)?.parse().map_err(|e| format!("--arity: {e}"))?,
            "--width" => args.width = take(&mut i)?.parse().map_err(|e| format!("--width: {e}"))?,
            "--height" => {
                args.height = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--height: {e}"))?
            }
            "--router" => {
                args.router = match take(&mut i)? {
                    "ecube" | "xy" | "deterministic" => RouterKind::Ecube,
                    "adaptive" | "west-first" => RouterKind::Adaptive,
                    other => return Err(format!("unknown router {other}")),
                }
            }
            "--lanes" => {
                let l: u8 = take(&mut i)?.parse().map_err(|e| format!("--lanes: {e}"))?;
                if l == 0 {
                    return Err("--lanes must be >= 1".into());
                }
                args.lanes = Some(l);
            }
            "--algo" => {
                let v = take(&mut i)?.to_lowercase();
                args.algo = Some(match v.as_str() {
                    "ucube" | "u-cube" => Algorithm::UCube,
                    "maxport" => Algorithm::Maxport,
                    "combine" => Algorithm::Combine,
                    "wsort" | "w-sort" => Algorithm::WSort,
                    "separate" => Algorithm::Separate,
                    "dimtree" => Algorithm::DimTree,
                    "bine" => {
                        args.bine = true;
                        args.algo = None;
                        i += 1;
                        continue;
                    }
                    "all" => {
                        args.algo = None;
                        i += 1;
                        continue;
                    }
                    other => return Err(format!("unknown algorithm {other}")),
                });
            }
            "--collective" => {
                args.collective = Some(match take(&mut i)?.to_lowercase().as_str() {
                    "allgather" => CollectiveKind::Allgather,
                    "reducescatter" | "reduce-scatter" => CollectiveKind::ReduceScatter,
                    "allreduce" => CollectiveKind::Allreduce,
                    other => return Err(format!("unknown collective {other}")),
                });
            }
            "--port" => {
                args.port = match take(&mut i)? {
                    "one" | "one-port" => PortModel::OnePort,
                    "all" | "all-port" => PortModel::AllPort,
                    other => return Err(format!("unknown port model {other}")),
                }
            }
            "--source" => {
                args.source = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--source: {e}"))?
            }
            "--dests" => {
                args.dests = take(&mut i)?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--dests: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--random" => {
                args.random = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("--random: {e}"))?,
                )
            }
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--bytes" => args.bytes = take(&mut i)?.parse().map_err(|e| format!("--bytes: {e}"))?,
            "--trace" => args.trace = true,
            "--json" => args.json = true,
            "--trace-out" => args.trace_out = Some(take(&mut i)?.to_string()),
            "--metrics-out" => args.metrics_out = Some(take(&mut i)?.to_string()),
            "--spans-out" => args.spans_out = Some(take(&mut i)?.to_string()),
            "--timeseries-out" => args.timeseries_out = Some(take(&mut i)?.to_string()),
            "--faults" => {
                args.faults = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--faults: {e}"))?
            }
            "--fail-link" => {
                let v = take(&mut i)?;
                let (node, dim) = v
                    .split_once(':')
                    .ok_or_else(|| format!("--fail-link: expected V:D, got {v}"))?;
                args.fail_links.push((
                    node.trim()
                        .parse()
                        .map_err(|e| format!("--fail-link node: {e}"))?,
                    dim.trim()
                        .parse()
                        .map_err(|e| format!("--fail-link dim: {e}"))?,
                ));
            }
            "--fail-node" => args.fail_nodes.push(
                take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--fail-node: {e}"))?,
            ),
            "--load" => {
                let rate: f64 = take(&mut i)?.parse().map_err(|e| format!("--load: {e}"))?;
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(format!("--load must be a positive rate, got {rate}"));
                }
                args.load = Some(rate);
            }
            "--arrivals" => args.arrivals = ArrivalProcess::parse(take(&mut i)?)?,
            "--chaos" => {
                let v = take(&mut i)?;
                let (mtbf, mttr) = v
                    .split_once(':')
                    .ok_or_else(|| format!("--chaos: expected MTBF:MTTR in ms, got {v}"))?;
                let mtbf: f64 = mtbf
                    .trim()
                    .parse()
                    .map_err(|e| format!("--chaos mtbf: {e}"))?;
                let mttr: f64 = mttr
                    .trim()
                    .parse()
                    .map_err(|e| format!("--chaos mttr: {e}"))?;
                if !(mtbf > 0.0 && mttr > 0.0) {
                    return Err(format!("--chaos: MTBF and MTTR must be positive, got {v}"));
                }
                args.chaos = Some((mtbf, mttr));
            }
            "--retries" => {
                args.retries = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            "--backoff" => {
                let b: u64 = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--backoff: {e}"))?;
                if b == 0 {
                    return Err("--backoff must be >= 1 µs".into());
                }
                args.backoff_us = b;
            }
            "--sessions" => {
                args.sessions = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?;
                if args.sessions == 0 {
                    return Err("--sessions must be >= 1".into());
                }
            }
            "--workers" => {
                let w: usize = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if w == 0 {
                    return Err("--workers must be >= 1".into());
                }
                args.workers = Some(w);
            }
            "--help" | "-h" => {
                println!(
                    "usage: mcast --n <dim> [--topology cube|torus|mesh] [--arity K]\n\
                     \x20             [--width W --height H] [--router ecube|adaptive] [--lanes N]\n\
                     \x20             [--algo ucube|maxport|combine|wsort|separate|dimtree|bine|all]\n\
                     \x20             [--collective allgather|reduce-scatter|allreduce]\n\
                     \x20             [--port one|all] [--source A] [--dests a,b,c | --random M [--seed S]]\n\
                     \x20             [--bytes B] [--trace] [--json]\n\
                     \x20             [--trace-out FILE.json] [--metrics-out FILE.prom|FILE.json]\n\
                     \x20             [--spans-out FILE.json] [--timeseries-out FILE.json]\n\
                     \x20             [--faults K] [--fail-link V:D]... [--fail-node V]...\n\
                     \x20             [--load R [--arrivals det|poisson|bursty[:B]] [--sessions N]\n\
                     \x20              [--workers W]]\n\
                     \x20             [--chaos MTBF:MTTR [--retries N] [--backoff B]]\n\
                     \x20      mcast serve [--max-inflight N]\n\
                     \n\
                     flag summary:\n\
                     \x20 topology    --n DIM, --topology cube|torus|mesh, --arity K (torus radix),\n\
                     \x20             --width W --height H (mesh shape)\n\
                     \x20 routing     --router ecube|adaptive (adaptive = west-first, mesh only),\n\
                     \x20             --lanes N (virtual lanes per link; torus needs an even N)\n\
                     \x20 multicast   --algo ..., --port one|all, --source A,\n\
                     \x20             --dests a,b,c | --random M, --seed S, --bytes B\n\
                     \x20 collective  --collective allgather|reduce-scatter|allreduce\n\
                     \x20             (--algo picks the tree family, bine = the Jacobsthal\n\
                     \x20              bine tree, default compares all; composes with --load)\n\
                     \x20 output      --json, --trace, --trace-out FILE, --metrics-out FILE,\n\
                     \x20             --spans-out FILE, --timeseries-out FILE (need --load)\n\
                     \x20 faults      --faults K, --fail-link V:D, --fail-node V\n\
                     \x20 open loop   --load R (sessions/ms), --arrivals det|poisson|bursty[:B],\n\
                     \x20             --sessions N, --workers W (sharded session driver)\n\
                     \x20 churn       --chaos MTBF:MTTR (per-link, ms), --retries N, --backoff B (µs)\n\
                     \n\
                     observability: --trace-out writes a Chrome/Perfetto trace of the run's\n\
                     exact channel holds and blocking episodes (open in ui.perfetto.dev);\n\
                     --metrics-out writes the in-loop metrics registry, Prometheus text\n\
                     exposition if the file ends in .prom, JSON otherwise. On the cube both\n\
                     require a single --algo. --spans-out and --timeseries-out attach the\n\
                     session-level flight recorder to an open-loop run (they require\n\
                     --load, and a single --algo on the cube): spans-out writes one trace\n\
                     per session — every attempt with its exact queueing/blocked/transit\n\
                     decomposition, chained through retries — and timeseries-out writes the\n\
                     windowed series (goodput, latency quantiles, cache hit rate, live\n\
                     faults, per-dimension blocked time per bucket). Both compose with\n\
                     --chaos; the reported numbers are byte-identical with or without the\n\
                     recorder attached.\n\
                     \n\
                     collectives: --collective KIND builds the full-machine collective\n\
                     (allgather, reduce-scatter, or allreduce; --bytes is the per-node\n\
                     block, --source the allreduce root), certifies its data movement\n\
                     with the symbolic oracle, and replays it on the idle network —\n\
                     or, with --load R, injects whole collectives as open-loop sessions.\n\
                     On the cube --algo picks the tree family (including `bine`); the\n\
                     torus runs separate addressing. See DESIGN.md section 17.\n\
                     \n\
                     fault injection: --faults K kills K random directed links (seeded by --seed);\n\
                     --fail-link V:D kills the channel leaving node V in dimension D;\n\
                     --fail-node V kills node V. Each tree is then replayed over the faulty\n\
                     network, repaired with hypercast::repair, and replayed again.\n\
                     \n\
                     open-loop traffic: --load R switches from a single multicast to a\n\
                     sustained open-loop run at R sessions/ms (--arrivals picks the point\n\
                     process, default poisson; --sessions the session count, default 100;\n\
                     --seed the schedule seed). Each session replays the configured\n\
                     multicast (--dests => a fixed group, --random M => a fresh uniform\n\
                     draw per session); trees are built through the LRU tree cache and the\n\
                     report includes steady-state latency (batch-means 95% CI),\n\
                     completion ratio, throughput, and cache hit rate. Incompatible with\n\
                     fault and trace flags.\n\
                     \n\
                     fault churn: --chaos MTBF:MTTR (requires --load) runs the open-loop\n\
                     traffic under a seed-deterministic failure/repair process: each link\n\
                     fails with the given per-link MTBF and revives after ~MTTR ms (nodes\n\
                     churn too, at 4x the link MTBF and 1.5x the MTTR); failures strike in\n\
                     the first 60% of the window, then the network heals. Faulted sessions\n\
                     retry up to --retries times (default 3) under exponential backoff\n\
                     starting at --backoff µs (default 500, x4 per attempt); retries on the\n\
                     cube rebuild their trees through hypercast::repair. The report adds\n\
                     delivery ratio, goodput, the retry-attempt histogram, losses, and\n\
                     time-to-recover.\n\
                     \n\
                     sharded runs: --workers W (requires --load) partitions the sessions\n\
                     across W threads, each session simulated alone — the paper's\n\
                     contention-free trees make sessions independent, so this drops only\n\
                     cross-session channel contention. The report is byte-identical at any\n\
                     W and echoes \"workers\":W in the JSON line. Incompatible with\n\
                     --spans-out/--timeseries-out (the flight recorder is single-threaded).\n\
                     \n\
                     service mode: `mcast serve` runs a long-lived daemon reading one JSON\n\
                     request per stdin line and writing one JSON response per line, with a\n\
                     persistent tree store kept warm across requests and per-request\n\
                     worker pools; --max-inflight N bounds the request queue (default 16,\n\
                     backpressures the client through the pipe). Ops: traffic, chaos,\n\
                     multicast, stats, shutdown. See DESIGN.md section 16.\n\
                     \n\
                     --topology torus simulates separate addressing on a K-ary n-cube with\n\
                     dateline virtual channels; --topology mesh does the same on a WxH mesh\n\
                     under XY (--router ecube) or west-first minimal-adaptive routing\n\
                     (--router adaptive). Tree algorithms and fault repair are\n\
                     hypercube-specific. --lanes N threads every backend's physical links\n\
                     with N virtual lanes; the JSON report then carries per-lane\n\
                     utilization."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
        i += 1;
    }
    Ok(args)
}

/// One-line network-statistics summary shared by the cube and torus
/// paths: per-dimension external-channel utilization plus the deepest
/// FIFO queue the run ever saw.
fn stats_line(stats: &NetStats) -> String {
    let util: Vec<String> = stats
        .dim_utilization()
        .iter()
        .map(|u| format!("{:.1}%", u * 100.0))
        .collect();
    format!(
        "dim util [{}], max queue depth {}",
        util.join(" "),
        stats.max_queue_depth
    )
}

/// Re-runs the workload with an in-loop `Tee(EventRecorder, Metrics)`
/// probe and writes the requested observability artifacts: a
/// Chrome/Perfetto trace (`--trace-out`) and/or a metrics export
/// (`--metrics-out`; Prometheus text for `.prom`, JSON otherwise).
///
/// The observed replay is byte-deterministic, so its schedule is
/// identical to the reporting run that preceded it.
fn write_observability<R: Router + Copy>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    trace_out: Option<&str>,
    metrics_out: Option<&str>,
) {
    let mut probe = Tee(EventRecorder::new(), Metrics::new());
    let _run = simulate_observed_on(router, params, workload, &mut probe);
    let Tee(recorder, metrics) = probe;
    if let Some(path) = trace_out {
        let map = ChannelMap::new(router);
        write_artifact(path, &recorder.to_chrome_trace(&map), "--trace-out");
        eprintln!(
            "[saved {path}: {} events ({} dropped from the ring), open in ui.perfetto.dev]",
            recorder.total_events(),
            recorder.dropped()
        );
    }
    if let Some(path) = metrics_out {
        let registry = metrics.snapshot();
        let text = if path.ends_with(".prom") {
            registry.to_prometheus_text()
        } else {
            registry.to_json()
        };
        write_artifact(path, &text, "--metrics-out");
        eprintln!("[saved {path}]");
    }
}

/// Writes the flight-recorder artifacts of an open-loop run: session
/// spans (`--spans-out`) and/or the windowed time-series
/// (`--timeseries-out`).
fn write_telemetry(args: &Args, tel: &Telemetry) {
    if let Some(path) = args.spans_out.as_deref() {
        write_artifact(path, &tel.spans_to_json_string(), "--spans-out");
        eprintln!(
            "[saved {path}: {} session traces across {} waves]",
            tel.sessions.len(),
            tel.waves
        );
    }
    if let Some(path) = args.timeseries_out.as_deref() {
        write_artifact(path, &tel.series.to_json_string(), "--timeseries-out");
        eprintln!(
            "[saved {path}: {} buckets of {:.3} ms]",
            tel.series.buckets.len(),
            tel.series.bucket_ns as f64 / 1e6
        );
    }
}

/// Writes an observability artifact, creating parent directories as
/// needed; exits with status 2 on I/O failure.
fn write_artifact(path: &str, contents: &str, flag: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: {flag} {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: {flag} {path}: {e}");
        std::process::exit(2);
    }
}

/// Validates the source and assembles the destination set for a
/// separate-addressing backend (torus or mesh).
fn separate_dests<T: Topology>(args: &Args, topo: &T, what: &str) -> Vec<NodeId> {
    let source = NodeId(args.source);
    if !topo.contains(source) {
        eprintln!("error: --source {} outside the {what}", args.source);
        std::process::exit(2);
    }
    let dests: Vec<NodeId> = if let Some(m) = args.random {
        let mut rng = workloads::destsets::trial_rng("mcast-cli", 0, args.seed as usize);
        workloads::destsets::random_dests_on(&mut rng, topo, source, m)
    } else if args.dests.is_empty() {
        eprintln!("error: provide --dests or --random (try --help)");
        std::process::exit(2);
    } else {
        args.dests.iter().copied().map(NodeId).collect()
    };
    for &d in &dests {
        if !topo.contains(d) || d == source {
            eprintln!("error: destination {} invalid for this {what}", d.0);
            std::process::exit(2);
        }
    }
    dests
}

/// Simulates one-unicast-per-destination separate addressing on `router`
/// and prints the shared summary, JSON (with lane accounting), trace,
/// and observability artifacts. `json_head` carries the topology-shaped
/// JSON prefix (`"topology":...` fields, no trailing comma).
fn run_separate<R: Router + Copy>(router: R, args: &Args, dests: &[NodeId], json_head: &str) {
    let params = SimParams::ncube2(args.port);
    let source = NodeId(args.source);
    let workload: Vec<DepMessage> = dests
        .iter()
        .map(|&dst| DepMessage {
            src: source,
            dst,
            bytes: args.bytes,
            deps: vec![],
            min_start: SimTime::ZERO,
        })
        .collect();
    let run = simulate_on(router, &params, &workload);
    let avg = SimTime(
        run.messages
            .iter()
            .map(|m| m.delivered.as_ns())
            .sum::<u64>()
            / run.messages.len() as u64,
    );
    println!(
        " separate: {} messages, sim avg {} max {} (blocks {})",
        run.messages.len(),
        avg,
        run.stats.makespan,
        run.stats.blocks
    );
    println!("           net: {}", stats_line(&run.stats));
    if args.json {
        let util: Vec<String> = run
            .stats
            .dim_utilization()
            .iter()
            .map(|u| format!("{u:.6}"))
            .collect();
        let lane_util: Vec<String> = run
            .stats
            .lane_utilization()
            .iter()
            .map(|u| format!("{u:.6}"))
            .collect();
        println!(
            "{{{json_head},\"dests\":{},\"bytes\":{},\
             \"avg_delay_ns\":{},\"makespan_ns\":{},\"blocks\":{},\
             \"dim_utilization\":[{}],\"lanes\":{},\"lane_utilization\":[{}],\
             \"max_queue_depth\":{}}}",
            dests.len(),
            args.bytes,
            avg.as_ns(),
            run.stats.makespan.as_ns(),
            run.stats.blocks,
            util.join(","),
            run.stats.lane_busy.len(),
            lane_util.join(","),
            run.stats.max_queue_depth
        );
    }
    if args.trace {
        let trace = ChannelTrace::reconstruct_on(router, &params, &workload, &run);
        println!("\n{}", trace.render_timeline(64));
        println!(
            "external-channel utilization: {:.1}% across {} channels",
            trace.utilization() * 100.0,
            trace.channels_used()
        );
    }
    if args.trace_out.is_some() || args.metrics_out.is_some() {
        write_observability(
            router,
            &params,
            &workload,
            args.trace_out.as_deref(),
            args.metrics_out.as_deref(),
        );
    }
}

/// Separate-addressing multicast on the k-ary n-cube torus backend.
fn run_torus(args: &Args) {
    if args.faults > 0 || !args.fail_links.is_empty() || !args.fail_nodes.is_empty() {
        eprintln!("error: fault injection/repair flags are hypercube-only");
        std::process::exit(2);
    }
    if args.router == RouterKind::Adaptive {
        eprintln!("error: --router adaptive is mesh-only (the torus routes dimension-ordered)");
        std::process::exit(2);
    }
    let torus = match Torus::new(args.arity, args.n) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let router = match args.lanes {
        None => TorusRouter::new(torus),
        Some(l) if l >= 2 && l % 2 == 0 => TorusRouter::with_lane_multiplier(torus, l / 2),
        Some(l) => {
            eprintln!("error: --lanes {l}: torus lanes come in dateline pairs (use an even N)");
            std::process::exit(2);
        }
    };
    let dests = separate_dests(args, &torus, &format!("{}-ary {}-cube", args.arity, args.n));
    println!(
        "{}-ary {}-cube torus | {} | source {} | {} destinations | {} bytes\n",
        args.arity,
        args.n,
        args.port.label(),
        torus.node_label(NodeId(args.source)),
        dests.len(),
        args.bytes
    );
    let json_head = format!(
        "\"topology\":\"torus\",\"arity\":{},\"n\":{}",
        args.arity, args.n
    );
    run_separate(router, args, &dests, &json_head);
}

/// Separate-addressing multicast on the 2D mesh backend, under XY or
/// west-first minimal-adaptive routing.
fn run_mesh(args: &Args) {
    if args.faults > 0 || !args.fail_links.is_empty() || !args.fail_nodes.is_empty() {
        eprintln!("error: fault injection/repair flags are hypercube-only");
        std::process::exit(2);
    }
    let mesh = match Mesh::new(args.width, args.height) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let lanes = args.lanes.unwrap_or(1);
    let dests = separate_dests(args, &mesh, &format!("{}x{} mesh", args.width, args.height));
    let router_name = match args.router {
        RouterKind::Ecube => "xy",
        RouterKind::Adaptive => "west-first adaptive",
    };
    println!(
        "{}x{} mesh | {router_name} | {} | source {} | {} destinations | {} bytes\n",
        args.width,
        args.height,
        args.port.label(),
        mesh.node_label(NodeId(args.source)),
        dests.len(),
        args.bytes
    );
    let json_head = format!(
        "\"topology\":\"mesh\",\"width\":{},\"height\":{},\"router\":\"{}\"",
        args.width,
        args.height,
        match args.router {
            RouterKind::Ecube => "ecube",
            RouterKind::Adaptive => "adaptive",
        }
    );
    match args.router {
        RouterKind::Ecube => {
            run_separate(MeshXY::with_lanes(mesh, lanes), args, &dests, &json_head)
        }
        RouterKind::Adaptive => run_separate(
            MinimalAdaptive::with_lanes(mesh, lanes),
            args,
            &dests,
            &json_head,
        ),
    }
}

/// The tree families a `--collective` run compares: `--algo X` pins one,
/// `--algo bine` the bine tree, no flag sweeps the whole family set.
fn collective_families(args: &Args) -> Vec<TreeFamily> {
    if args.bine {
        vec![TreeFamily::Bine]
    } else {
        match args.algo {
            Some(a) => vec![TreeFamily::Alg(a)],
            None => TreeFamily::SWEEP.to_vec(),
        }
    }
}

/// Prints one collective schedule's idle-network measurement (and the
/// `--json` line), after certifying it with the data oracle.
fn report_collective(
    label: &str,
    sched: &CollectiveSchedule,
    report: &wormsim::SimReport,
    json: bool,
) {
    let verified = match verify_collective(sched) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("{label:>9}  ORACLE FAILURE: {e}");
            false
        }
    };
    println!(
        "{label:>9}: {} steps, {} ops, {} payload bytes, sim avg {} max {} (blocks {}), oracle {}",
        sched.steps,
        sched.ops.len(),
        sched.payload_bytes(),
        report.avg_delay,
        report.max_delay,
        report.blocks,
        if verified { "ok" } else { "FAIL" },
    );
    if json {
        println!(
            "{{\"collective\":\"{}\",\"family\":\"{label}\",\"nodes\":{},\"steps\":{},\
             \"ops\":{},\"payload_bytes\":{},\"avg_delay_ns\":{},\"makespan_ns\":{},\
             \"blocks\":{},\"verified\":{verified}}}",
            sched.kind.name(),
            sched.nodes,
            sched.steps,
            sched.ops.len(),
            sched.payload_bytes(),
            report.avg_delay.as_ns(),
            report.max_delay.as_ns(),
            report.blocks,
        );
    }
}

/// `--collective KIND` without `--load`: build, oracle-verify, and
/// replay one full-machine collective on the idle network.
fn run_collective(args: &Args, kind: CollectiveKind) {
    if args.faults > 0
        || !args.fail_links.is_empty()
        || !args.fail_nodes.is_empty()
        || args.trace
        || args.trace_out.is_some()
        || args.metrics_out.is_some()
        || args.lanes.is_some()
    {
        eprintln!("error: --collective is incompatible with fault, trace, and lane flags");
        std::process::exit(2);
    }
    let params = SimParams::ncube2(args.port);
    match args.topology {
        TopologyKind::Mesh => {
            eprintln!("error: --collective supports cube and torus backends");
            std::process::exit(2);
        }
        TopologyKind::Torus => {
            let torus = match Torus::new(args.arity, args.n) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            if args.source >= torus.node_count() as u32 {
                eprintln!("error: --source {} outside the torus", args.source);
                std::process::exit(2);
            }
            println!(
                "{}-ary {}-cube torus | {} | {} | block {} bytes\n",
                args.arity,
                args.n,
                args.port.label(),
                kind.name(),
                args.bytes
            );
            let sched = match kind {
                CollectiveKind::Allgather => allgather_separate(&torus, args.bytes),
                CollectiveKind::ReduceScatter => reduce_scatter_separate(&torus, args.bytes),
                CollectiveKind::Allreduce => {
                    allreduce_separate(&torus, NodeId(args.source), args.bytes)
                }
            };
            let report = wormsim::simulate_collective_on(&sched, TorusRouter::new(torus), &params);
            report_collective("Separate", &sched, &report, args.json);
        }
        TopologyKind::Cube => {
            let cube = match Cube::new(args.n) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            if args.source >= cube.node_count() as u32 {
                eprintln!(
                    "error: --source {} outside the {}-cube",
                    args.source, args.n
                );
                std::process::exit(2);
            }
            println!(
                "{}-cube | {} | {} | block {} bytes\n",
                args.n,
                args.port.label(),
                kind.name(),
                args.bytes
            );
            for family in collective_families(args) {
                let built = match kind {
                    CollectiveKind::Allgather => allgather(
                        family,
                        cube,
                        Resolution::HighToLow,
                        args.port,
                        args.bytes,
                        None,
                    ),
                    CollectiveKind::ReduceScatter => reduce_scatter(
                        family,
                        cube,
                        Resolution::HighToLow,
                        args.port,
                        args.bytes,
                        None,
                    ),
                    CollectiveKind::Allreduce => allreduce(
                        family,
                        cube,
                        Resolution::HighToLow,
                        args.port,
                        NodeId(args.source),
                        args.bytes,
                        None,
                    ),
                };
                let sched = match built {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    }
                };
                let report =
                    wormsim::simulate_collective(&sched, cube, Resolution::HighToLow, &params);
                report_collective(family.name(), &sched, &report, args.json);
            }
        }
    }
}

/// Builds the per-session destination pattern of an open-loop run:
/// explicit `--dests` fixes the group (every session replays it; the
/// tree cache turns repeats into pointer hits), `--random M` draws a
/// fresh uniform group per session.
fn traffic_pattern(args: &Args, source: NodeId) -> DestPattern {
    if let Some(m) = args.random {
        DestPattern::UniformRandom { m }
    } else {
        DestPattern::Fixed {
            source,
            dests: args.dests.iter().copied().map(NodeId).collect(),
        }
    }
}

fn traffic_spec(args: &Args, rate: f64, pattern: DestPattern) -> TrafficSpec {
    workloads::serve::load_spec(
        args.arrivals,
        rate,
        pattern,
        args.sessions,
        args.seed,
        args.bytes,
    )
}

fn print_traffic_report(label: &str, r: &TrafficReport, json: bool, workers: Option<usize>) {
    println!(
        "{label:>9}: {} sessions ({} measured), completed {:.3}, \
         latency {:.4} ms ±{:.4} (95% CI), thru {:.3}/ms, cache hit {:.3}",
        r.sessions.len(),
        r.measured_sessions,
        r.completion_ratio,
        r.latency.mean,
        r.latency.ci_half_width,
        r.throughput_per_ms,
        r.cache.hit_rate(),
    );
    println!(
        "{:>9}  net: {} (timed out {})",
        "",
        stats_line(&r.net),
        r.net.timed_out
    );
    if json {
        println!(
            "{}",
            workloads::serve::traffic_report_json(label, r, workers)
        );
    }
}

/// Wraps the open-loop spec with the `--chaos` churn process and the
/// retry policy (the conventions live in [`workloads::serve`], shared
/// with the service mode).
fn chaos_spec(args: &Args, traffic: TrafficSpec, mtbf_ms: f64, mttr_ms: f64) -> ChaosSpec {
    workloads::serve::chaos_wrap(traffic, mtbf_ms, mttr_ms, args.retries, args.backoff_us)
}

fn print_chaos_report(label: &str, r: &ChaosReport, json: bool, workers: Option<usize>) {
    let hist: Vec<String> = r
        .retry_histogram
        .iter()
        .enumerate()
        .map(|(k, n)| format!("{}x{n}", k + 1))
        .collect();
    let recover = match r.time_to_recover {
        Some(t) => format!("{t}"),
        None => "-".into(),
    };
    println!(
        "{label:>9}: {} sessions ({} measured), delivered {:.3}, goodput {:.3}/ms, \
         latency {:.4} ms ±{:.4} (95% CI)",
        r.sessions.len(),
        r.measured_sessions,
        r.delivery_ratio,
        r.goodput_per_ms,
        r.latency.mean,
        r.latency.ci_half_width,
    );
    println!(
        "{:>9}  churn: {} fault events over {} epochs, attempts [{}], \
         lost {}, window-cut {}, recover {}",
        "",
        r.fault_events,
        r.epochs,
        hist.join(" "),
        r.lost,
        r.window_cut,
        recover,
    );
    println!(
        "{:>9}  net: {} (timed out {}), cache {}h/{}m/{}e/{}i",
        "",
        stats_line(&r.net),
        r.net.timed_out,
        r.cache.hits,
        r.cache.misses,
        r.cache.evictions,
        r.cache.invalidations,
    );
    if json {
        println!("{}", workloads::serve::chaos_report_json(label, r, workers));
    }
}

/// `--load R --collective KIND`: open-loop collective traffic — every
/// session is one full-machine collective (the destination flags are
/// irrelevant; allreduce roots rotate round-robin across sessions).
fn run_collective_traffic(args: &Args, rate: f64, kind: CollectiveKind) {
    if args.chaos.is_some() || args.workers.is_some() {
        eprintln!("error: collective traffic does not support --chaos/--workers");
        std::process::exit(2);
    }
    if args.spans_out.is_some() || args.timeseries_out.is_some() {
        eprintln!("error: collective traffic does not support the flight recorder");
        std::process::exit(2);
    }
    if args.lanes.is_some() {
        eprintln!("error: --lanes applies to single-shot runs (drop --load)");
        std::process::exit(2);
    }
    let params = SimParams::ncube2(args.port);
    // Collective sessions span the whole machine: the pattern slot of
    // the spec is unused but the engine needs one.
    let pattern = DestPattern::UniformRandom { m: 1 };
    match args.topology {
        TopologyKind::Mesh => {
            eprintln!("error: --collective supports cube and torus backends");
            std::process::exit(2);
        }
        TopologyKind::Torus => {
            let torus = match Torus::new(args.arity, args.n) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            println!(
                "{}-ary {}-cube torus | {} | open loop {}: {} arrivals at {} sessions/ms | block {} bytes\n",
                args.arity,
                args.n,
                args.port.label(),
                kind.name(),
                args.arrivals,
                rate,
                args.bytes
            );
            let spec = traffic_spec(args, rate, pattern);
            let r =
                traffic::run_collective_separate_on(&spec, TorusRouter::new(torus), kind, &params);
            print_traffic_report("Separate", &r, args.json, None);
        }
        TopologyKind::Cube => {
            let cube = match Cube::new(args.n) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            println!(
                "{}-cube | {} | open loop {}: {} arrivals at {} sessions/ms | block {} bytes\n",
                args.n,
                args.port.label(),
                kind.name(),
                args.arrivals,
                rate,
                args.bytes
            );
            for family in collective_families(args) {
                let spec = traffic_spec(args, rate, pattern.clone());
                let r = traffic::run_collective_cube(
                    &spec,
                    cube,
                    Resolution::HighToLow,
                    kind,
                    family,
                    &params,
                );
                print_traffic_report(family.name(), &r, args.json, None);
            }
        }
    }
}

/// `--load R`: open-loop steady-state traffic instead of a single shot.
fn run_traffic(args: &Args, rate: f64) {
    if args.faults > 0
        || !args.fail_links.is_empty()
        || !args.fail_nodes.is_empty()
        || args.trace
        || args.trace_out.is_some()
        || args.metrics_out.is_some()
    {
        eprintln!("error: --load is incompatible with fault and trace flags");
        std::process::exit(2);
    }
    if let Some(kind) = args.collective {
        run_collective_traffic(args, rate, kind);
        return;
    }
    if args.random.is_none() && args.dests.is_empty() {
        eprintln!("error: provide --dests or --random (try --help)");
        std::process::exit(2);
    }
    if args.lanes.is_some() {
        eprintln!("error: --lanes applies to single-shot runs (drop --load)");
        std::process::exit(2);
    }
    let telemetry = args.spans_out.is_some() || args.timeseries_out.is_some();
    if telemetry && args.workers.is_some() {
        eprintln!("error: --workers is incompatible with --spans-out/--timeseries-out");
        std::process::exit(2);
    }
    let tcfg = TelemetryConfig::default();
    let params = SimParams::ncube2(args.port);
    match args.topology {
        TopologyKind::Mesh => {
            eprintln!("error: --load supports cube and torus backends");
            std::process::exit(2);
        }
        TopologyKind::Torus => {
            let torus = match Torus::new(args.arity, args.n) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            let spec = traffic_spec(args, rate, traffic_pattern(args, NodeId(args.source)));
            println!(
                "{}-ary {}-cube torus | {} | open loop: {} arrivals at {} sessions/ms | {} bytes\n",
                args.arity,
                args.n,
                args.port.label(),
                args.arrivals,
                rate,
                args.bytes
            );
            if let Some((mtbf, mttr)) = args.chaos {
                let spec = chaos_spec(args, spec, mtbf, mttr);
                if telemetry {
                    let (r, tel) = traffic::run_chaos_separate_with_telemetry_on(
                        &spec,
                        TorusRouter::new(torus),
                        &params,
                        &tcfg,
                    );
                    print_chaos_report("Separate", &r, args.json, None);
                    write_telemetry(args, &tel);
                } else {
                    let r = match args.workers {
                        Some(w) => traffic::run_chaos_separate_sharded_on(
                            &spec,
                            TorusRouter::new(torus),
                            &params,
                            w,
                        ),
                        None => {
                            traffic::run_chaos_separate_on(&spec, TorusRouter::new(torus), &params)
                        }
                    };
                    print_chaos_report("Separate", &r, args.json, args.workers);
                }
            } else if telemetry {
                let (r, tel) = traffic::run_separate_with_telemetry_on(
                    &spec,
                    TorusRouter::new(torus),
                    &params,
                    &tcfg,
                );
                print_traffic_report("Separate", &r, args.json, None);
                write_telemetry(args, &tel);
            } else {
                let r = match args.workers {
                    Some(w) => {
                        traffic::run_separate_sharded_on(&spec, TorusRouter::new(torus), &params, w)
                    }
                    None => traffic::run_separate_on(&spec, TorusRouter::new(torus), &params),
                };
                print_traffic_report("Separate", &r, args.json, args.workers);
            }
        }
        TopologyKind::Cube => {
            let cube = match Cube::new(args.n) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            if telemetry && args.algo.is_none() {
                eprintln!("error: --spans-out/--timeseries-out need a single --algo (not `all`)");
                std::process::exit(2);
            }
            let algos: Vec<Algorithm> = match args.algo {
                Some(a) => vec![a],
                None => Algorithm::PAPER.to_vec(),
            };
            println!(
                "{}-cube | {} | open loop: {} arrivals at {} sessions/ms | {} bytes\n",
                args.n,
                args.port.label(),
                args.arrivals,
                rate,
                args.bytes
            );
            let pattern = traffic_pattern(args, NodeId(args.source));
            for algo in algos {
                let spec = traffic_spec(args, rate, pattern.clone());
                if let Some((mtbf, mttr)) = args.chaos {
                    let spec = chaos_spec(args, spec, mtbf, mttr);
                    if telemetry {
                        let (r, tel) = traffic::run_chaos_cube_with_telemetry(
                            &spec,
                            cube,
                            Resolution::HighToLow,
                            algo,
                            &params,
                            &tcfg,
                        );
                        print_chaos_report(algo.name(), &r, args.json, None);
                        write_telemetry(args, &tel);
                    } else {
                        let r = match args.workers {
                            Some(w) => traffic::run_chaos_cube_sharded(
                                &spec,
                                cube,
                                Resolution::HighToLow,
                                algo,
                                &params,
                                w,
                            ),
                            None => traffic::run_chaos_cube(
                                &spec,
                                cube,
                                Resolution::HighToLow,
                                algo,
                                &params,
                            ),
                        };
                        print_chaos_report(algo.name(), &r, args.json, args.workers);
                    }
                } else if telemetry {
                    let (r, tel) = traffic::run_cube_with_telemetry(
                        &spec,
                        cube,
                        Resolution::HighToLow,
                        algo,
                        &params,
                        &tcfg,
                    );
                    print_traffic_report(algo.name(), &r, args.json, None);
                    write_telemetry(args, &tel);
                } else {
                    let r = match args.workers {
                        Some(w) => traffic::run_cube_sharded(
                            &spec,
                            cube,
                            Resolution::HighToLow,
                            algo,
                            &params,
                            w,
                        ),
                        None => {
                            traffic::run_cube(&spec, cube, Resolution::HighToLow, algo, &params)
                        }
                    };
                    print_traffic_report(algo.name(), &r, args.json, args.workers);
                }
            }
        }
    }
}

/// `mcast serve`: the long-running service mode. Flags after the
/// subcommand configure the queue and caps; the request loop itself
/// lives in [`workloads::serve`].
fn run_serve(flags: &[String]) {
    let mut opts = workloads::serve::ServeOptions::default();
    let mut i = 0;
    while i < flags.len() {
        let take = |i: &mut usize| -> &str {
            *i += 1;
            flags.get(*i).map(String::as_str).unwrap_or_else(|| {
                eprintln!("error: missing value for {}", flags[*i - 1]);
                std::process::exit(2);
            })
        };
        match flags[i].as_str() {
            "--max-inflight" => {
                opts.max_inflight = take(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("error: --max-inflight: {e}");
                    std::process::exit(2);
                });
                if opts.max_inflight == 0 {
                    eprintln!("error: --max-inflight must be >= 1");
                    std::process::exit(2);
                }
            }
            "--max-sessions" => {
                opts.max_sessions = take(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("error: --max-sessions: {e}");
                    std::process::exit(2);
                });
            }
            "--max-workers" => {
                opts.max_workers = take(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("error: --max-workers: {e}");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("error: unknown serve flag {other} (serve takes --max-inflight, --max-sessions, --max-workers)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // StdinLock is !Send and the reader runs on its own thread, so wrap
    // the unlocked handle in a BufReader instead.
    let input = std::io::BufReader::new(std::io::stdin());
    let mut stdout = std::io::stdout().lock();
    match workloads::serve::serve_loop(input, &mut stdout, &opts) {
        Ok(summary) => {
            eprintln!(
                "mcast serve: {} served, {} errors, {}",
                summary.served,
                summary.errors,
                if summary.shutdown {
                    "shutdown requested"
                } else {
                    "input closed"
                }
            );
        }
        Err(e) => {
            eprintln!("error: serve output: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("serve") {
        run_serve(&argv[1..]);
        return;
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Some(rate) = args.load {
        run_traffic(&args, rate);
        return;
    }
    if args.workers.is_some() {
        eprintln!("error: --workers requires --load (it shards the open-loop session driver)");
        std::process::exit(2);
    }
    if args.chaos.is_some() {
        eprintln!("error: --chaos requires --load (churn acts on open-loop traffic)");
        std::process::exit(2);
    }
    if args.spans_out.is_some() || args.timeseries_out.is_some() {
        eprintln!(
            "error: --spans-out/--timeseries-out require --load (the flight recorder is session-level)"
        );
        std::process::exit(2);
    }
    if let Some(kind) = args.collective {
        run_collective(&args, kind);
        return;
    }
    if args.topology == TopologyKind::Torus {
        run_torus(&args);
        return;
    }
    if args.topology == TopologyKind::Mesh {
        run_mesh(&args);
        return;
    }
    if args.router == RouterKind::Adaptive {
        eprintln!("error: --router adaptive is mesh-only (the cube routes E-cube)");
        std::process::exit(2);
    }
    let cube = match Cube::new(args.n) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let dests: Vec<NodeId> = if let Some(m) = args.random {
        let mut rng = workloads::destsets::trial_rng("mcast-cli", 0, args.seed as usize);
        workloads::destsets::random_dests(&mut rng, cube, NodeId(args.source), m)
    } else if args.dests.is_empty() {
        eprintln!("error: provide --dests or --random (try --help)");
        std::process::exit(2);
    } else {
        args.dests.iter().copied().map(NodeId).collect()
    };

    // Assemble the fault plan, if any fault flag was given.
    let mut plan = FaultPlan::random_links(cube, args.faults, args.seed);
    for &(v, d) in &args.fail_links {
        if v >= cube.node_count() as u32 || d >= args.n {
            eprintln!("error: --fail-link {v}:{d} outside the {}-cube", args.n);
            std::process::exit(2);
        }
        plan.fail_link(NodeId(v), Dim(d));
    }
    for &v in &args.fail_nodes {
        if v >= cube.node_count() as u32 {
            eprintln!("error: --fail-node {v} outside the {}-cube", args.n);
            std::process::exit(2);
        }
        plan.fail_node(NodeId(v));
    }
    let faulty = !plan.is_empty();

    let params = SimParams::ncube2(args.port);
    if (args.trace_out.is_some() || args.metrics_out.is_some()) && args.algo.is_none() {
        eprintln!("error: --trace-out/--metrics-out need a single --algo (not `all`)");
        std::process::exit(2);
    }
    let algos: Vec<Algorithm> = match args.algo {
        Some(a) => vec![a],
        None => Algorithm::ALL.to_vec(),
    };
    println!(
        "{}-cube | {} | source {} | {} destinations | {} bytes\n",
        args.n,
        args.port.label(),
        NodeId(args.source).binary(args.n),
        dests.len(),
        args.bytes
    );
    for algo in algos {
        let tree = match algo.build(
            cube,
            Resolution::HighToLow,
            args.port,
            NodeId(args.source),
            &dests,
        ) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let witnesses = contention_witnesses(&tree);
        let lanes = args.lanes.unwrap_or(1);
        let report = wormsim::simulate_multicast_lanes(&tree, &params, args.bytes, lanes);
        println!(
            "{:>9}: {} steps, {} messages, def-4 witnesses {}, sim avg {} max {} (blocks {})",
            algo.name(),
            tree.steps,
            tree.message_count(),
            witnesses.len(),
            report.avg_delay,
            report.max_delay,
            report.blocks
        );
        println!("{:>9}  net: {}", "", stats_line(&report.stats));
        if faulty {
            match wormsim::simulate_multicast_with_faults(&tree, &params, args.bytes, &plan) {
                Ok(r) => println!(
                    "{:>9}  faulty net: delivered {}/{} (ratio {:.3}), makespan {}",
                    "",
                    r.deliveries.len(),
                    r.deliveries.len() + r.lost.len(),
                    r.delivery_ratio,
                    r.makespan
                ),
                Err(e) => println!("{:>9}  faulty net: {e}", ""),
            }
            let fixed = repair(&tree, &NetworkFaults::from(&plan));
            match wormsim::simulate_multicast_with_faults(&fixed.tree, &params, args.bytes, &plan) {
                Ok(r) => println!(
                    "{:>9}  repaired:   delivered {}/{} (ratio {:.3}), makespan {}, \
                     {} rerouted, {} dropped, {} unreachable, +{} steps",
                    "",
                    r.deliveries.len(),
                    r.deliveries.len() + r.lost.len(),
                    r.delivery_ratio,
                    r.makespan,
                    fixed.rerouted.len(),
                    fixed.dropped.len(),
                    fixed.unreachable.len(),
                    fixed.extra_steps
                ),
                Err(e) => println!("{:>9}  repaired:   {e}", ""),
            }
        }
        if args.json {
            println!("{}", tree.to_json());
            println!(
                "{}",
                workloads::serve::multicast_report_json(algo.name(), &report, lanes)
            );
        }
        if args.algo.is_some() && !args.json {
            println!("\n{}", tree.render());
            if args.trace {
                let workload: Vec<DepMessage> = tree
                    .unicasts
                    .iter()
                    .map(|u| DepMessage {
                        src: u.src,
                        dst: u.dst,
                        bytes: args.bytes,
                        deps: tree
                            .unicasts
                            .iter()
                            .position(|p| p.dst == u.src)
                            .map(|i| vec![i])
                            .unwrap_or_default(),
                        min_start: SimTime::ZERO,
                    })
                    .collect();
                let router = Ecube::with_lanes(cube, Resolution::HighToLow, lanes);
                let run = simulate_on(router, &params, &workload);
                let trace = ChannelTrace::reconstruct_on(router, &params, &workload, &run);
                println!("{}", trace.render_timeline(64));
                println!(
                    "external-channel utilization: {:.1}% across {} channels",
                    trace.utilization() * 100.0,
                    trace.channels_used()
                );
            }
        }
        if args.trace_out.is_some() || args.metrics_out.is_some() {
            let workload = wormsim::multicast_workload(&tree, args.bytes);
            write_observability(
                Ecube::with_lanes(cube, Resolution::HighToLow, lanes),
                &params,
                &workload,
                args.trace_out.as_deref(),
                args.metrics_out.as_deref(),
            );
        }
    }
}
