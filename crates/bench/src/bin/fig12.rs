//! Regenerates the paper's Figure 12: maximum delay on a 5-cube,
//! 4096-byte messages, nCUBE-2 parameters (simulated testbed stand-in).

fn main() {
    let trials = bench::trials_arg(workloads::figures::PAPER_TRIALS_NCUBE);
    let (_, max) = workloads::figures::fig11_12(trials);
    bench::emit(&max);
}
