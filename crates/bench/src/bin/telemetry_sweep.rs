//! Regenerates the telemetry sweep: the flight recorder's windowed
//! time-series for all four tree algorithms on a 64-node 6-cube (plus
//! separate addressing on a 64-node 4-ary 3-cube torus) across a
//! churn-and-recover window — goodput dips while faults are live and
//! refills as the retry tail drains. Archives
//! `results/telemetry_sweep.{txt,json}`.
//!
//! Flags:
//! * `--smoke` — the short CI configuration (same schema, less work);
//! * `--sessions N` — override sessions per series;
//! * `--seed S` — override the master seed;
//! * `--workers W` — worker threads (default 4; byte-identical output
//!   for any count);
//! * `--check FILE` — no simulation: parse and schema-validate an
//!   existing artifact with the first-party parser **and** re-verify
//!   the recovery shape (goodput dip below the post-churn refill in
//!   every series), exit non-zero on violation.

use workloads::telemetrysweep::{
    telemetry_sweep_with_workers, TelemetrySweep, TelemetrySweepConfig,
};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = arg_value(&args, "--check") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let sweep = match TelemetrySweep::from_json(&text) {
            Ok(sweep) => sweep,
            Err(e) => {
                eprintln!("{path}: schema violation: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = sweep.check_recovery() {
            eprintln!("{path}: recovery shape violation: {e}");
            std::process::exit(1);
        }
        println!(
            "{path}: valid telemetry sweep ({} series, {} buckets each, dip-and-refill holds)",
            sweep.series.len(),
            sweep.config.buckets
        );
        return;
    }

    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        TelemetrySweepConfig::smoke()
    } else {
        TelemetrySweepConfig::full()
    };
    if let Some(n) = arg_value(&args, "--sessions").and_then(|v| v.parse().ok()) {
        cfg.sessions = n;
    }
    if let Some(s) = arg_value(&args, "--seed").and_then(|v| v.parse().ok()) {
        cfg.seed = s;
    }
    let workers: usize = arg_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    let sweep = telemetry_sweep_with_workers(&cfg, workers);
    if let Err(e) = sweep.check_recovery() {
        eprintln!("warning: recovery shape not visible at this config: {e}");
    }
    let table = sweep.to_table();
    println!("{table}");
    let dir = bench::results_dir();
    std::fs::write(dir.join("telemetry_sweep.txt"), &table).expect("write txt");
    std::fs::write(dir.join("telemetry_sweep.json"), sweep.to_json()).expect("write json");
    eprintln!("[saved results/telemetry_sweep.txt results/telemetry_sweep.json]");
}
