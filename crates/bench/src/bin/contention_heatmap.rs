//! Regenerates `results/contention_heatmap.{txt,json}`: measured
//! per-dimension blocked time per algorithm, recorded by the engine's
//! in-loop `EventRecorder` (see `workloads::heatmap`).

fn main() {
    bench::emit(&workloads::heatmap::contention_heatmap(bench::trials_arg(
        20,
    )));
}
