//! Regenerates the fault-churn sweep: delivery degradation, retry
//! distributions, and time-to-recover for all four tree algorithms on a
//! 64-node 6-cube and a 256-node 8-cube (plus separate addressing on a
//! 64-node 4-ary 3-cube torus) while an MTBF/MTTR process kills and
//! revives links and nodes under open-loop load. Archives
//! `results/chaos_sweep.{txt,json}`.
//!
//! Flags:
//! * `--smoke` — the short CI configuration (same schema, less work);
//! * `--sessions N` — override sessions per grid point;
//! * `--seed S` — override the master seed;
//! * `--workers W` — worker threads (default 4; byte-identical output
//!   for any count);
//! * `--check FILE` — no simulation: parse and schema-validate an
//!   existing artifact with the first-party parser, exit non-zero on
//!   violation.

use workloads::chaossweep::{chaos_sweep_with_workers, ChaosSweep, ChaosSweepConfig};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = arg_value(&args, "--check") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match ChaosSweep::from_json(&text) {
            Ok(sweep) => {
                println!(
                    "{path}: valid chaos sweep ({} series, {} grid points)",
                    sweep.series.len(),
                    sweep.series.iter().map(|s| s.points.len()).sum::<usize>()
                );
                return;
            }
            Err(e) => {
                eprintln!("{path}: schema violation: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        ChaosSweepConfig::smoke()
    } else {
        ChaosSweepConfig::full()
    };
    if let Some(n) = arg_value(&args, "--sessions").and_then(|v| v.parse().ok()) {
        cfg.sessions = n;
    }
    if let Some(s) = arg_value(&args, "--seed").and_then(|v| v.parse().ok()) {
        cfg.seed = s;
    }
    let workers: usize = arg_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    let sweep = chaos_sweep_with_workers(&cfg, workers);
    let table = sweep.to_table();
    println!("{table}");
    let dir = bench::results_dir();
    std::fs::write(dir.join("chaos_sweep.txt"), &table).expect("write txt");
    std::fs::write(dir.join("chaos_sweep.json"), sweep.to_json()).expect("write json");
    eprintln!("[saved results/chaos_sweep.txt results/chaos_sweep.json]");
}
