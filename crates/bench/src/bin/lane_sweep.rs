//! Regenerates the virtual-lane ladder: contention (blocks, blocked
//! time, per-lane utilization) of naive multicast trees vs lanes per
//! physical link, replayed on four 64-node networks — E-cube on the
//! 6-cube, dimension-ordered routing on a 4-ary×3-ary torus, and
//! west-first minimal-adaptive plus deterministic XY on an 8×8 mesh —
//! for all four paper tree algorithms. Archives
//! `results/lane_sweep.{txt,json}`.
//!
//! Flags:
//! * `--smoke` — the short CI configuration (same schema, less work);
//! * `--trials N` — override destination draws per cell;
//! * `--seed S` — override the master seed;
//! * `--check FILE` — no simulation: parse and schema-validate an
//!   existing artifact with the first-party parser, exit non-zero on
//!   violation.

use workloads::lanesweep::{lane_sweep, LaneSweep, LaneSweepConfig};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = arg_value(&args, "--check") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match LaneSweep::from_json(&text) {
            Ok(sweep) => {
                println!(
                    "{path}: valid lane sweep ({} series, {} lane points)",
                    sweep.series.len(),
                    sweep.series.iter().map(|s| s.points.len()).sum::<usize>()
                );
                return;
            }
            Err(e) => {
                eprintln!("{path}: schema violation: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        LaneSweepConfig::smoke()
    } else {
        LaneSweepConfig::full()
    };
    if let Some(n) = arg_value(&args, "--trials").and_then(|v| v.parse().ok()) {
        cfg.trials = n;
    }
    if let Some(s) = arg_value(&args, "--seed").and_then(|v| v.parse().ok()) {
        cfg.seed = s;
    }

    let sweep = lane_sweep(&cfg);
    let table = sweep.to_table();
    println!("{table}");
    let dir = bench::results_dir();
    std::fs::write(dir.join("lane_sweep.txt"), &table).expect("write txt");
    std::fs::write(dir.join("lane_sweep.json"), sweep.to_json()).expect("write json");
    eprintln!("[saved results/lane_sweep.txt results/lane_sweep.json]");
}
