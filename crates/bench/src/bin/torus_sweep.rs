//! Regenerates the torus-vs-hypercube sweep (topology extension):
//! separate-addressing average delay and makespan on a 64-node 6-cube
//! vs a 64-node 4-ary 3-cube torus, as the destination count grows.
//! Archives `results/torus_sweep.{txt,json}`.

fn main() {
    let trials = bench::trials_arg(20);
    bench::emit(&workloads::torussweep::torus_sweep(trials));
}
