//! Regenerates the open-loop traffic sweep: steady-state multicast
//! session latency vs offered load for all four tree algorithms on a
//! 64-node 6-cube and a 256-node 8-cube, plus separate addressing on a
//! 64-node 4-ary 3-cube torus, with per-algorithm saturation detection
//! and tree-cache hit rates. Archives `results/traffic_sweep.{txt,json}`.
//!
//! Flags:
//! * `--smoke` — the short CI configuration (same schema, less work);
//! * `--sessions N` — override sessions per load point;
//! * `--seed S` — override the master seed;
//! * `--check FILE` — no simulation: parse and schema-validate an
//!   existing artifact with the first-party parser, exit non-zero on
//!   violation.

use workloads::trafficsweep::{traffic_sweep, SweepConfig, TrafficSweep};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = arg_value(&args, "--check") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match TrafficSweep::from_json(&text) {
            Ok(sweep) => {
                println!(
                    "{path}: valid traffic sweep ({} series, {} load points)",
                    sweep.series.len(),
                    sweep.series.iter().map(|s| s.points.len()).sum::<usize>()
                );
                return;
            }
            Err(e) => {
                eprintln!("{path}: schema violation: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        SweepConfig::smoke()
    } else {
        SweepConfig::full()
    };
    if let Some(n) = arg_value(&args, "--sessions").and_then(|v| v.parse().ok()) {
        cfg.sessions = n;
    }
    if let Some(s) = arg_value(&args, "--seed").and_then(|v| v.parse().ok()) {
        cfg.seed = s;
    }

    let sweep = traffic_sweep(&cfg);
    let table = sweep.to_table();
    println!("{table}");
    let dir = bench::results_dir();
    std::fs::write(dir.join("traffic_sweep.txt"), &table).expect("write txt");
    std::fs::write(dir.join("traffic_sweep.json"), sweep.to_json()).expect("write json");
    eprintln!("[saved results/traffic_sweep.txt results/traffic_sweep.json]");
}
