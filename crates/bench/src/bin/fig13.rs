//! Regenerates the paper's Figure 13: average delay on a 10-cube,
//! 4096-byte messages (large-system simulation).

fn main() {
    let trials = bench::trials_arg(workloads::figures::PAPER_TRIALS_STEPS);
    let (avg, _) = workloads::figures::fig13_14(trials);
    bench::emit(&avg);
}
