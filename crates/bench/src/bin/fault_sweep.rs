//! Regenerates the fault-injection sweep (robustness extension):
//! delivery ratio and makespan of a W-sort multicast vs number of dead
//! directed links, unrepaired vs repaired with `hypercast::repair`.
//! Archives `results/fault_sweep.{txt,json}`.

fn main() {
    let trials = bench::trials_arg(20);
    bench::emit(&workloads::faultsweep::fault_sweep(trials));
}
