//! Regenerates every paper figure (9-14) plus all ablation experiments at
//! the paper's trial counts, archiving tables, plots, and JSON under
//! `results/`. Pass `--trials N` to override the per-point trial count
//! (applied to all experiments) for a quicker pass.

use workloads::{ablations, faultsweep, figures};

fn main() {
    let steps_trials = bench::trials_arg(figures::PAPER_TRIALS_STEPS);
    let ncube_trials = bench::trials_arg(figures::PAPER_TRIALS_NCUBE).min(steps_trials);

    eprintln!("== paper figures ==");
    bench::emit(&figures::fig09(steps_trials));
    bench::emit(&figures::fig10(steps_trials));
    let (f11, f12) = figures::fig11_12(ncube_trials);
    bench::emit(&f11);
    bench::emit(&f12);
    let (f13, f14) = figures::fig13_14(steps_trials);
    bench::emit(&f13);
    bench::emit(&f14);

    eprintln!("== ablations (extensions) ==");
    bench::emit(&ablations::ablation_ports(ncube_trials));
    bench::emit(&ablations::ablation_message_size(ncube_trials));
    bench::emit(&ablations::ablation_sensitivity(ncube_trials));
    bench::emit(&ablations::ablation_optimality(ncube_trials));
    bench::emit(&ablations::ablation_contention(ncube_trials));
    bench::emit(&ablations::ablation_background_load(ncube_trials));
    bench::emit(&ablations::ablation_pipelining());
    bench::emit(&ablations::ablation_scatter(ncube_trials));
    bench::emit(&ablations::ablation_scaling(ncube_trials));
    bench::emit(&ablations::ablation_concurrency(ncube_trials));
    bench::emit(&ablations::ablation_model_fidelity(ncube_trials));
    bench::emit(&ablations::ablation_kport(ncube_trials));

    eprintln!("== fault injection (robustness) ==");
    bench::emit(&faultsweep::fault_sweep(ncube_trials));
}
