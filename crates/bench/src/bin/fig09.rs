//! Regenerates the paper's Figure 9: stepwise comparisons on a 6-cube
//! (average over 100 random destination sets of the maximum step count).

fn main() {
    let trials = bench::trials_arg(workloads::figures::PAPER_TRIALS_STEPS);
    bench::emit(&workloads::figures::fig09(trials));
}
