//! Regenerates the paper's Figure 11: average delay on a 5-cube,
//! 4096-byte messages, nCUBE-2 parameters (simulated testbed stand-in).

fn main() {
    let trials = bench::trials_arg(workloads::figures::PAPER_TRIALS_NCUBE);
    let (avg, _) = workloads::figures::fig11_12(trials);
    bench::emit(&avg);
}
