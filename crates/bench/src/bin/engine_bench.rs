//! First-party engine micro/macro benchmark: the perf baseline behind
//! the scratch-reuse work. Emits `BENCH_engine.json` at the workspace
//! root — the first point of the repo's committed perf trajectory.
//!
//! Two families of cases, each measured **cold** (a fresh
//! [`wormsim::EngineScratch`] allocated per run, as the plain entry
//! points do) and **warm** (one persistent scratch replayed into, so
//! the event heap, message table, channel state, and route memo are
//! reused):
//!
//! * **traffic** — the open-loop smoke sweep configuration
//!   (recurring-pool Poisson sessions) on the 6-cube, the 8-cube, and
//!   the 4-ary 3-cube torus, replayed **one engine run per session**:
//!   the tentpole's "one scratch per worker, sessions replayed into it"
//!   shape. The assembly is built once (via
//!   [`traffic::assemble_cube_sessions`]) and split into per-session
//!   workloads ([`SessionWorkload::session_workload`]); the timed loop
//!   drives each session through the engine, cold allocating a fresh
//!   arena per session (the pre-scratch allocation storm) and warm
//!   replaying every session into one persistent scratch whose route
//!   memo carries the recurring pool's routes across sessions. Tree
//!   construction and report assembly are identical in both paths and
//!   stay outside the timing. Metric: engine **sessions/sec** of
//!   wall-clock time.
//! * **replay** — a fixed multicast (cube) or separate-addressing
//!   (torus) workload replayed back-to-back; metric: **ns per
//!   flit-hop**, where flit-hops = Σ bytes × route length is the work
//!   the wormhole model fundamentally has to move.
//!
//! A third family, **scaling**, measures the sharded session driver
//! ([`traffic::run_trials`]) at 1/2/4/8 workers on the warm 8-cube
//! recurring-pool case: aggregate sessions/sec, speedup over one
//! worker, and the host-portable **efficiency** (speedup /
//! `min(workers, host_parallelism)`), which is what `--check` tracks —
//! plus an absolute ≥ 4× speedup bar at 8 workers that applies only on
//! hosts that actually have 8 cores.
//!
//! Cold and warm repetitions are interleaved in small batch pairs so
//! CPU frequency drift hits both sides equally instead of biasing
//! whichever phase ran second; pairs that the scheduler preempted
//! mid-measurement (detected via `/proc/self/schedstat` runqueue-wait
//! growth) are excluded; and the reported ratio is the **median** of
//! the surviving per-pair ratios, which discards residual one-sided
//! outliers. The aggregate rates are machine-dependent context only.
//!
//! The committed artifact is a measurement, not a deterministic
//! fixture: absolute numbers vary by machine, but the `warm_over_cold`
//! ratios are the point — scratch reuse must keep paying for itself
//! (the acceptance bar is ≥ 1.25× on the 8-cube recurring-pool case).
//!
//! Flags:
//! * `--quick` — fewer repetitions (CI smoke; noisier ratios);
//! * `--out FILE` — write somewhere other than `BENCH_engine.json`;
//! * `--check [FILE]` — the perf-regression gate: re-run every case at
//!   quick repetitions and fail (exit 1) if any measured warm/cold
//!   ratio drops below [`CHECK_FLOOR_FRACTION`] of the committed
//!   baseline's ratio (default baseline: `BENCH_engine.json`). Writes
//!   nothing.

use hcube::{Cube, NodeId, Resolution, Router, Torus, TorusRouter};
use hypercast::{Algorithm, PortModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use traffic::{ArrivalProcess, Arrivals, DestPattern, SessionWorkload, TrafficSpec};
use workloads::json::Value;
use wormsim::{
    multicast_workload, simulate_on, simulate_on_with_scratch, DepMessage, EngineScratch,
    SimParams, SimTime,
};

/// Number of alternating cold/warm batch pairs per case. Small batches
/// (a few ms each) keep any one scheduler preemption inside a single
/// batch, where the median across pairs discards it.
const BATCHES: usize = 40;

/// Runqueue-wait nanoseconds accumulated by this process so far
/// (`/proc/self/schedstat` field 1). A batch whose wait counter moved
/// was preempted by a co-tenant mid-measurement — its wall-clock time
/// lies about the work done.
fn wait_ns() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/self/schedstat").ok()?;
    s.split_whitespace().nth(1)?.parse().ok()
}

/// Runqueue wait a batch may accumulate before it counts as preempted
/// (scheduler bookkeeping blips stay under this).
const PREEMPT_EPSILON_NS: u64 = 100_000;

/// Times `reps` calls of `f`: returns wall-clock seconds plus whether
/// the scheduler preempted the batch (when the kernel exposes
/// schedstat; otherwise batches are assumed clean).
fn time_reps<F: FnMut()>(reps: usize, mut f: F) -> (f64, bool) {
    let w0 = wait_ns();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    let wall = t0.elapsed().as_secs_f64();
    let preempted = match (w0, wait_ns()) {
        (Some(a), Some(b)) => b.saturating_sub(a) > PREEMPT_EPSILON_NS,
        _ => false,
    };
    (wall, preempted)
}

/// Times `reps` repetitions of `cold` and of `warm`, interleaved in
/// [`BATCHES`] alternating cold/warm batch pairs. Returns `(cold_secs,
/// warm_secs, median_ratio)` where the ratio is the **median** of the
/// per-pair `cold/warm` time ratios over pairs the scheduler left
/// alone: adjacent pairing cancels slow frequency drift, preempted
/// pairs (detected via schedstat runqueue-wait) are excluded outright,
/// and the median discards residual outliers. When co-tenants taint
/// nearly every pair, the median falls back to all of them. The summed
/// times feed the (machine-dependent) absolute rates; the median ratio
/// is the tracked quantity.
fn time_interleaved<C: FnMut(), W: FnMut()>(
    reps: usize,
    mut cold: C,
    mut warm: W,
) -> (f64, f64, f64) {
    let per = (reps / BATCHES).max(1);
    let batches = reps.div_ceil(per);
    let mut pairs = Vec::with_capacity(batches);
    for _ in 0..batches {
        let (c, c_pre) = time_reps(per, &mut cold);
        let (w, w_pre) = time_reps(per, &mut warm);
        pairs.push((c, w, c_pre || w_pre));
    }
    let cold_s: f64 = pairs.iter().map(|p| p.0).sum();
    let warm_s: f64 = pairs.iter().map(|p| p.1).sum();
    let mut ratios: Vec<f64> = pairs
        .iter()
        .filter(|p| !p.2)
        .map(|&(c, w, _)| c / w)
        .collect();
    if ratios.len() < BATCHES / 4 {
        // Too few clean pairs to be meaningful; use everything.
        ratios = pairs.iter().map(|&(c, w, _)| c / w).collect();
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite batch times"));
    let median = if ratios.len() % 2 == 1 {
        ratios[ratios.len() / 2]
    } else {
        (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
    };
    (cold_s, warm_s, median)
}

/// Rounds to 3 decimal places for a stable, readable artifact.
fn r3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn num(x: f64) -> Value {
    Value::Number(x)
}

/// The smoke traffic spec used by every traffic case: recurring-pool
/// Poisson sessions, mirroring `SweepConfig::smoke()` at a mid-ladder
/// offered load.
fn smoke_spec(pattern: &DestPattern, seed: u64) -> TrafficSpec {
    let sessions = 30;
    // The lightest point of the smoke-ladder for 256 nodes
    // (`SweepConfig::smoke().loads_256 = [2, 8, 32]`): per-session
    // engine overhead — exactly what scratch reuse targets — dominates
    // here, before contention-resolution events (identical in both
    // paths) take over the profile.
    let rate = 2.0;
    let mut spec = TrafficSpec::new(
        Arrivals::new(ArrivalProcess::Poisson, rate),
        pattern.clone(),
        sessions,
        seed,
    );
    spec.bytes = 1024;
    spec.horizon = SimTime::from_ms((sessions as f64 / rate * 1.25 + 30.0) as u64);
    spec.cache_capacity = 8;
    spec
}

/// One traffic case: the pre-assembled sessions replayed through the
/// engine **one run per session** — cold allocates a fresh scratch for
/// every session (the pre-scratch allocation storm), warm replays all
/// of them into one persistent scratch, route memo included. Only the
/// engine runs are timed — assembly, session splitting, and report
/// statistics are identical in both paths and stay outside the loop.
/// Returns the JSON object for the artifact.
fn traffic_case<R: Router + Copy>(
    name: &str,
    router: R,
    sessions: &SessionWorkload,
    params: &SimParams,
    reps: usize,
) -> Value {
    let per_session: Vec<Vec<DepMessage>> = (0..sessions.sessions())
        .map(|i| sessions.session_workload(i))
        .collect();
    // Prime the persistent scratch (arenas sized, routes memoized).
    let mut warm_scratch = EngineScratch::new();
    for w in &per_session {
        let _ = simulate_on_with_scratch(router, params, w, &mut warm_scratch);
    }
    let (cold_s, warm_s, ratio) = time_interleaved(
        reps,
        || {
            for w in &per_session {
                let mut fresh = EngineScratch::new();
                std::hint::black_box(simulate_on_with_scratch(router, params, w, &mut fresh));
            }
        },
        || {
            for w in &per_session {
                std::hint::black_box(simulate_on_with_scratch(
                    router,
                    params,
                    w,
                    &mut warm_scratch,
                ));
            }
        },
    );
    let total_sessions = (sessions.sessions() * reps) as f64;
    let cold_rate = total_sessions / cold_s;
    let warm_rate = total_sessions / warm_s;
    eprintln!(
        "[traffic/{name}] cold {cold_rate:.0} sessions/s, warm {warm_rate:.0} sessions/s \
         (median {ratio:.2}x)",
    );
    Value::Object(vec![
        ("name".into(), Value::String(format!("traffic-{name}"))),
        ("kind".into(), Value::String("traffic".into())),
        ("network".into(), Value::String(name.into())),
        (
            "workload".into(),
            Value::String(
                "recurring-pool smoke (Poisson, 30 sessions, 1 KB); one engine run \
                 per session; cold = fresh arena per session, warm = one persistent \
                 scratch + route memo"
                    .into(),
            ),
        ),
        ("runs".into(), num(reps as f64)),
        ("sessions_per_run".into(), num(sessions.sessions() as f64)),
        ("cold_sessions_per_sec".into(), num(r3(cold_rate))),
        ("warm_sessions_per_sec".into(), num(r3(warm_rate))),
        ("warm_over_cold".into(), num(r3(ratio))),
    ])
}

/// One replay case: a fixed workload replayed `reps` times through a
/// router, cold vs warm; normalized to ns per flit-hop.
fn replay_case<R: Router + Copy>(
    name: &str,
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    reps: usize,
) -> Value {
    // Flit-hops of one replay: bytes × route length, summed.
    let mut hops = Vec::new();
    let flit_hops: f64 = workload
        .iter()
        .map(|m| {
            hops.clear();
            router.route_hops(m.src, m.dst, &mut hops);
            f64::from(m.bytes) * hops.len() as f64
        })
        .sum();
    let mut scratch = EngineScratch::new();
    // Populate the arenas and the route memo before timing.
    let _ = simulate_on_with_scratch(router, params, workload, &mut scratch);
    let (cold_s, warm_s, ratio) = time_interleaved(
        reps,
        || {
            std::hint::black_box(simulate_on(router, params, workload));
        },
        || {
            std::hint::black_box(simulate_on_with_scratch(
                router,
                params,
                workload,
                &mut scratch,
            ));
        },
    );
    let total = flit_hops * reps as f64;
    let cold_ns = cold_s * 1e9 / total;
    let warm_ns = warm_s * 1e9 / total;
    eprintln!(
        "[replay/{name}] cold {cold_ns:.3} ns/flit-hop, warm {warm_ns:.3} ns/flit-hop \
         (median {ratio:.2}x)",
    );
    Value::Object(vec![
        ("name".into(), Value::String(format!("replay-{name}"))),
        ("kind".into(), Value::String("replay".into())),
        ("network".into(), Value::String(name.into())),
        ("messages".into(), num(workload.len() as f64)),
        ("flit_hops_per_run".into(), num(flit_hops)),
        ("runs".into(), num(reps as f64)),
        ("cold_ns_per_flit_hop".into(), num(r3(cold_ns))),
        ("warm_ns_per_flit_hop".into(), num(r3(warm_ns))),
        ("cold_over_warm".into(), num(r3(ratio))),
    ])
}

/// The sharded-driver scaling curve: whole passes over the warm 8-cube
/// recurring-pool assembly distributed across N workers through
/// [`traffic::run_trials`] — each worker owns one [`EngineScratch`]
/// whose route memo stays warm across its trials, exactly the shape
/// `chaos_sweep`, `telemetry_sweep`, and `mcast serve` run on. Metric:
/// aggregate **sessions/sec**; per worker count the artifact records
/// the speedup over one worker and the **efficiency** — speedup divided
/// by `min(workers, host_parallelism)` — which is the host-portable
/// tracked ratio (a 1-core container honestly reports speedup ~1 and
/// efficiency ~1; an 8-core host must deliver real speedup to hold
/// efficiency). The absolute >= 4x bar at 8 workers is enforced by
/// `--check` only where `host_parallelism >= 8` makes it physically
/// meaningful.
fn scaling_cases(reps: usize) -> Vec<Value> {
    let params = SimParams::ncube2(PortModel::AllPort);
    let cube = Cube::of(8);
    let mut rng = StdRng::seed_from_u64(93);
    let pattern = DestPattern::uniform_pool(&mut rng, &cube, 4, 16);
    let spec = smoke_spec(&pattern, 93);
    let sessions = traffic::assemble_cube_sessions(
        &spec,
        cube,
        Resolution::HighToLow,
        Algorithm::WSort,
        &params,
    );
    let per_session: Vec<Vec<DepMessage>> = (0..sessions.sessions())
        .map(|i| sessions.session_workload(i))
        .collect();
    let router = hcube::Ecube::new(cube, Resolution::HighToLow);
    let trials = (reps / 10).max(16);
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let mut rate1 = f64::NAN;
    let mut cases = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        // Best of three passes: scaling wants the attainable rate, not
        // the co-tenant-noise-averaged one.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let (wall, _) = time_reps(1, || {
                std::hint::black_box(traffic::run_trials(workers, trials, |_, scratch| {
                    for w in &per_session {
                        std::hint::black_box(simulate_on_with_scratch(router, &params, w, scratch));
                    }
                }));
            });
            best = best.min(wall);
        }
        let rate = (trials * sessions.sessions()) as f64 / best;
        if workers == 1 {
            rate1 = rate;
        }
        let speedup = rate / rate1;
        let efficiency = speedup / workers.min(host) as f64;
        eprintln!(
            "[scaling/cube8 w{workers}] {rate:.0} sessions/s, speedup {speedup:.2}x, \
             efficiency {efficiency:.2} (host parallelism {host})",
        );
        cases.push(Value::Object(vec![
            (
                "name".into(),
                Value::String(format!("scaling-cube8-w{workers}")),
            ),
            ("kind".into(), Value::String("scaling".into())),
            ("network".into(), Value::String("cube8".into())),
            (
                "workload".into(),
                Value::String(
                    "sharded run_trials passes over the warm recurring-pool smoke \
                     assembly; one EngineScratch per worker, trial-indexed merge"
                        .into(),
                ),
            ),
            ("workers".into(), num(workers as f64)),
            ("trials".into(), num(trials as f64)),
            ("sessions_per_trial".into(), num(sessions.sessions() as f64)),
            ("sessions_per_sec".into(), num(r3(rate))),
            ("speedup_over_1".into(), num(r3(speedup))),
            ("host_parallelism".into(), num(host as f64)),
            ("efficiency".into(), num(r3(efficiency))),
        ]));
    }
    cases
}

/// How much of the committed baseline ratio a quick re-measurement must
/// retain to pass `--check`. Quick repetitions are noisy, so the gate
/// flags sustained regressions (a lost optimization, an accidental
/// per-run allocation), not run-to-run jitter.
const CHECK_FLOOR_FRACTION: f64 = 0.7;

/// The absolute scaling bar of the sharded driver: >= this speedup at 8
/// workers, enforced by `--check` on hosts with >= 8 cores.
const SCALING_SPEEDUP_FLOOR_AT_8: f64 = 4.0;

/// Runs every benchmark case and returns the artifact's `cases` array.
fn run_cases(reps: usize, replay_reps: usize) -> Vec<Value> {
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut cases = Vec::new();

    // --- traffic cases: cube6, cube8 (the acceptance case), torus ----
    for (name, dim) in [("cube6", 6u8), ("cube8", 8u8)] {
        let cube = Cube::of(dim);
        let m = if dim == 6 { 8 } else { 16 };
        let mut rng = StdRng::seed_from_u64(93);
        let pattern = DestPattern::uniform_pool(&mut rng, &cube, 4, m);
        let spec = smoke_spec(&pattern, 93);
        let sessions = traffic::assemble_cube_sessions(
            &spec,
            cube,
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        cases.push(traffic_case(
            name,
            hcube::Ecube::new(cube, Resolution::HighToLow),
            &sessions,
            &params,
            reps,
        ));
    }
    {
        let torus = Torus::of(4, 3);
        let router = TorusRouter::new(torus);
        let mut rng = StdRng::seed_from_u64(93);
        let pattern = DestPattern::uniform_pool(&mut rng, &torus, 4, 8);
        let spec = smoke_spec(&pattern, 93);
        let sessions = traffic::assemble_separate_sessions_on(&spec, &router);
        cases.push(traffic_case("torus4x3", router, &sessions, &params, reps));
    }

    // --- replay cases: fixed workloads, ns/flit-hop ------------------
    for (name, dim) in [("cube6", 6u8), ("cube8", 8u8)] {
        let cube = Cube::of(dim);
        let m = if dim == 6 { 16 } else { 40 };
        let mut rng = StdRng::seed_from_u64(7);
        let dests = workloads::destsets::random_dests(&mut rng, cube, NodeId(0), m);
        let tree = Algorithm::WSort
            .build(
                cube,
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests,
            )
            .expect("valid tree");
        let workload = multicast_workload(&tree, 1024);
        cases.push(replay_case(
            name,
            hcube::Ecube::new(cube, Resolution::HighToLow),
            &params,
            &workload,
            replay_reps,
        ));
    }
    {
        let torus = Torus::of(4, 3);
        let router = TorusRouter::new(torus);
        let mut rng = StdRng::seed_from_u64(7);
        let dests = workloads::destsets::random_dests_on(&mut rng, &torus, NodeId(0), 16);
        let workload: Vec<DepMessage> = dests
            .iter()
            .map(|&d| DepMessage {
                src: NodeId(0),
                dst: d,
                bytes: 1024,
                deps: Vec::new(),
                min_start: SimTime::ZERO,
            })
            .collect();
        cases.push(replay_case(
            "torus4x3",
            router,
            &params,
            &workload,
            replay_reps,
        ));
    }

    // --- scaling cases: the sharded driver at 1/2/4/8 workers ---------
    cases.extend(scaling_cases(reps));
    cases
}

/// The ratio field a case is tracked by: `warm_over_cold` for traffic
/// cases, `efficiency` for scaling cases, `cold_over_warm` for replay
/// cases — all read "how much the optimization pays", larger is better.
///
/// Scaling cases whose worker count exceeds the host's parallelism are
/// untracked: their wall time measures the scheduler's time-slicing of
/// oversubscribed threads, not the sharded driver, and jitters far
/// beyond the check floor. (They still appear in the artifact as the
/// scaling curve's data points, and the absolute 8-worker speedup bar
/// in `--check` gates hosts that really have the cores.)
fn tracked_ratio(case: &Value) -> Option<(String, f64)> {
    let name = case.get("name").and_then(Value::as_str)?.to_string();
    let key = match case.get("kind").and_then(Value::as_str)? {
        "traffic" => "warm_over_cold",
        "scaling" => {
            let workers = case.get("workers").and_then(Value::as_f64)?;
            let host = case.get("host_parallelism").and_then(Value::as_f64)?;
            if workers > host {
                return None;
            }
            "efficiency"
        }
        _ => "cold_over_warm",
    };
    Some((name, case.get(key).and_then(Value::as_f64)?))
}

/// `--check`: re-measures every case at quick repetitions and compares
/// against the committed baseline's ratios. Exits 1 on regression.
fn run_check(baseline_path: &str) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read {baseline_path}: {e}"));
    let baseline = workloads::json::parse(&text)
        .unwrap_or_else(|e| panic!("{baseline_path}: invalid JSON: {e}"));
    let schema = baseline.get("schema").and_then(Value::as_str);
    assert_eq!(
        schema,
        Some("engine-bench/v1"),
        "{baseline_path}: unexpected schema {schema:?}"
    );
    let committed: Vec<(String, f64)> = baseline
        .get("cases")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("{baseline_path}: missing cases array"))
        .iter()
        .filter_map(tracked_ratio)
        .collect();
    assert!(!committed.is_empty(), "{baseline_path}: no tracked cases");

    eprintln!(
        "[check] re-measuring {} cases at quick repetitions (floor = {CHECK_FLOOR_FRACTION} x baseline)",
        committed.len()
    );
    let cases = run_cases(40, 400);
    let measured: Vec<(String, f64)> = cases.iter().filter_map(tracked_ratio).collect();

    let mut failed = false;
    // The absolute scaling bar: where the host actually has >= 8 cores,
    // 8 workers must deliver >= SCALING_SPEEDUP_FLOOR_AT_8 x over 1.
    // Smaller hosts cannot physically exhibit parallel speedup, so only
    // the host-portable efficiency ratio gates there.
    if let Some(w8) = cases
        .iter()
        .find(|c| c.get("name").and_then(Value::as_str) == Some("scaling-cube8-w8"))
    {
        let host = w8.get("host_parallelism").and_then(Value::as_f64);
        let speedup = w8.get("speedup_over_1").and_then(Value::as_f64);
        if let (Some(host), Some(speedup)) = (host, speedup) {
            if host >= 8.0 && speedup < SCALING_SPEEDUP_FLOOR_AT_8 {
                eprintln!(
                    "[check] FAIL scaling-cube8-w8: speedup {speedup:.2}x < \
                     {SCALING_SPEEDUP_FLOOR_AT_8}x on a {host}-way host"
                );
                failed = true;
            } else {
                eprintln!(
                    "[check]   ok scaling-cube8-w8: speedup {speedup:.2}x on a {host}-way host \
                     (absolute {SCALING_SPEEDUP_FLOOR_AT_8}x bar {})",
                    if host >= 8.0 {
                        "enforced"
                    } else {
                        "not applicable"
                    }
                );
            }
        }
    }
    for (name, base) in &committed {
        let Some((_, now)) = measured.iter().find(|(n, _)| n == name) else {
            eprintln!("[check] FAIL {name}: case missing from this build");
            failed = true;
            continue;
        };
        let floor = base * CHECK_FLOOR_FRACTION;
        let verdict = if *now < floor { "FAIL" } else { "ok" };
        eprintln!(
            "[check] {verdict:>4} {name}: ratio {now:.3} vs baseline {base:.3} (floor {floor:.3})"
        );
        failed |= *now < floor;
    }
    if failed {
        eprintln!("[check] perf-regression gate FAILED: scratch reuse pays less than {CHECK_FLOOR_FRACTION}x the committed baseline");
        std::process::exit(1);
    }
    eprintln!("[check] perf-regression gate passed");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone());

    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let default = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../BENCH_engine.json")
            .to_string_lossy()
            .into_owned();
        let baseline = args
            .get(pos + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or(default);
        run_check(&baseline);
        return;
    }

    let reps = if quick { 40 } else { 800 };
    let replay_reps = if quick { 400 } else { 4000 };
    let cases = run_cases(reps, replay_reps);

    let doc = Value::Object(vec![
        ("schema".into(), Value::String("engine-bench/v1".into())),
        (
            "command".into(),
            Value::String("cargo run -p bench --release --bin engine_bench".into()),
        ),
        (
            "note".into(),
            Value::String(
                "wall-clock measurement; absolute numbers are machine-dependent, \
                 the warm/cold ratios are the tracked quantity"
                    .into(),
            ),
        ),
        ("quick".into(), Value::Bool(quick)),
        ("cases".into(), Value::Array(cases)),
    ]);
    let path = out.unwrap_or_else(|| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../BENCH_engine.json")
            .to_string_lossy()
            .into_owned()
    });
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).expect("write BENCH_engine.json");
    eprintln!("[saved {path}]");
}
