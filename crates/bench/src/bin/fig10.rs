//! Regenerates the paper's Figure 10: stepwise comparisons on a 10-cube.

fn main() {
    let trials = bench::trials_arg(workloads::figures::PAPER_TRIALS_STEPS);
    bench::emit(&workloads::figures::fig10(trials));
}
