//! Regenerates the collectives suite sweep: allgather / reduce-scatter
//! / allreduce schedules across the tree families (the paper's
//! algorithms plus the bine tree) on a 32-node 5-cube and under
//! separate addressing on a 4-ary 2-cube torus — each schedule
//! certified by the data oracle — plus open-loop collective traffic on
//! a 4-cube. Archives `results/collectives_sweep.{txt,json}`.
//!
//! Flags:
//! * `--smoke` — the short CI configuration (same schema, less work);
//! * `--sessions N` — override traffic-section sessions;
//! * `--seed S` — override the master seed;
//! * `--check FILE` — no simulation: parse and schema-validate an
//!   existing artifact with the first-party parser, exit non-zero on
//!   violation or on any row the oracle did not certify.

use workloads::collectivessweep::{collectives_sweep, CollectivesConfig, CollectivesSweep};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = arg_value(&args, "--check") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match CollectivesSweep::from_json(&text) {
            Ok(sweep) => {
                let unverified: Vec<String> = sweep
                    .rows
                    .iter()
                    .filter(|r| !r.verified)
                    .map(|r| format!("{} {} {}", r.suite, r.network, r.family))
                    .collect();
                if !unverified.is_empty() {
                    eprintln!("{path}: oracle-unverified rows: {}", unverified.join(", "));
                    std::process::exit(1);
                }
                println!(
                    "{path}: valid collectives sweep ({} schedule rows, {} traffic rows, all oracle-verified)",
                    sweep.rows.len(),
                    sweep.traffic.len()
                );
                return;
            }
            Err(e) => {
                eprintln!("{path}: schema violation: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut cfg = if args.iter().any(|a| a == "--smoke") {
        CollectivesConfig::smoke()
    } else {
        CollectivesConfig::full()
    };
    if let Some(n) = arg_value(&args, "--sessions").and_then(|v| v.parse().ok()) {
        cfg.traffic_sessions = n;
    }
    if let Some(s) = arg_value(&args, "--seed").and_then(|v| v.parse().ok()) {
        cfg.seed = s;
    }

    let sweep = collectives_sweep(&cfg);
    let table = sweep.to_table();
    println!("{table}");
    let json = sweep
        .to_json()
        .expect("non-finite statistic in sweep result");
    let dir = bench::results_dir();
    std::fs::write(dir.join("collectives_sweep.txt"), &table).expect("write txt");
    std::fs::write(dir.join("collectives_sweep.json"), json).expect("write json");
    eprintln!("[saved results/collectives_sweep.txt results/collectives_sweep.json]");
}
