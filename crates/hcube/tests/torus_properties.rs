//! Property-based tests for the k-ary n-cube torus backend: minimal
//! dimension-ordered routing, dense channel indexing, and the dateline
//! lane-class discipline that makes the router deadlock-free.

use hcube::{NodeId, Router, Topology, Torus, TorusRouter};
use proptest::prelude::*;

/// A torus shape and two node addresses valid for it.
fn torus_and_pair() -> impl Strategy<Value = (u16, u8, u32, u32)> {
    (2u16..=6, 1u8..=3).prop_flat_map(|(k, n)| {
        let nodes = (k as u32).pow(u32::from(n));
        (Just(k), Just(n), 0..nodes, 0..nodes)
    })
}

proptest! {
    /// Routes take exactly the minimal number of hops: the sum over
    /// dimensions of the shorter way around each ring.
    #[test]
    fn routes_are_minimal((k, n, u, v) in torus_and_pair()) {
        let t = Torus::of(k, n);
        let router = TorusRouter::new(t);
        let (u, v) = (NodeId(u), NodeId(v));
        let by_rings: u32 = (0..n)
            .map(|d| u32::from(t.ring_distance(t.coord(u, d), t.coord(v, d))))
            .sum();
        prop_assert_eq!(t.distance(u, v), by_rings);
        prop_assert_eq!(router.hops(u, v), by_rings);
        prop_assert!(
            router.hops(u, v) <= u32::from(n) * u32::from(k / 2),
            "no route exceeds the diameter"
        );
    }

    /// Routes are contiguous chains of in-bounds neighbor steps: hop i
    /// ends where hop i+1 starts, the first leaves the source, the last
    /// arrives at the destination. Nominal lanes stay below the lane
    /// count and on their class floor.
    #[test]
    fn routes_are_contiguous_and_in_bounds((k, n, u, v) in torus_and_pair()) {
        let t = Torus::of(k, n);
        let router = TorusRouter::new(t);
        let (u, v) = (NodeId(u), NodeId(v));
        prop_assume!(u != v);
        let mut hops = Vec::new();
        router.route_hops(u, v, &mut hops);
        prop_assert_eq!(hops.first().unwrap().from, u);
        for w in hops.windows(2) {
            prop_assert_eq!(t.neighbor(w[0].from, w[0].port), w[1].from);
        }
        let class_size = router.lanes() / router.lane_classes();
        for h in &hops {
            prop_assert!(t.contains(h.from));
            prop_assert!(h.port.0 < t.ports_per_node());
            prop_assert!(t.contains(t.neighbor(h.from, h.port)));
            prop_assert!(h.lane < router.lanes());
            prop_assert_eq!(h.lane % class_size, 0, "nominal lane is a class floor");
        }
        let last = *hops.last().unwrap();
        prop_assert_eq!(t.neighbor(last.from, last.port), v);
    }

    /// Dimension-ordered with a dateline lane-class discipline:
    /// dimensions are visited in ascending order; within a dimension the
    /// direction is fixed and the lane class climbs from low to high
    /// exactly at the wrap edge, never back. Strictly increasing
    /// (dim, class, progress) rank is the classic Dally–Seitz acyclicity
    /// argument, so this property is the routing half of deadlock
    /// freedom — and because the engine only ever swaps lanes *within* a
    /// class, it survives adaptive lane selection unchanged.
    #[test]
    fn dateline_discipline_holds((k, n, u, v) in torus_and_pair()) {
        let t = Torus::of(k, n);
        let router = TorusRouter::new(t);
        let (u, v) = (NodeId(u), NodeId(v));
        let mut hops = Vec::new();
        router.route_hops(u, v, &mut hops);
        let class_size = router.lanes() / router.lane_classes();
        let mut last_dim: Option<u8> = None;
        let mut last_class = 0u8;
        for h in &hops {
            let (dim, plus) = t.port_parts(h.port);
            let class = h.lane / class_size;
            if last_dim != Some(dim) {
                prop_assert!(last_dim.is_none_or(|d| d < dim), "dims must ascend");
                last_dim = Some(dim);
                last_class = 0;
            }
            prop_assert!(class >= last_class, "lane class never decreases within a dimension");
            if class > last_class {
                // The class climbs exactly when the previous hop crossed
                // the wrap edge; the hop *after* the dateline runs in the
                // high class.
                let c = t.coord(h.from, dim);
                prop_assert!(
                    (plus && c == 0) || (!plus && c == k - 1),
                    "high class must start right after the dateline (coord {c}, plus {plus})"
                );
            }
            last_class = class;
        }
    }

    /// The dateline discipline is independent of the lane multiplier:
    /// scaling `m` scales nominal lanes to the class floors but leaves
    /// the (link, class) structure of every route untouched.
    #[test]
    fn lane_multiplier_preserves_route_structure((k, n, u, v) in torus_and_pair(), m in 1u8..=4) {
        let t = Torus::of(k, n);
        let base = TorusRouter::new(t);
        let wide = TorusRouter::with_lane_multiplier(t, m);
        let (u, v) = (NodeId(u), NodeId(v));
        let mut h1 = Vec::new();
        let mut hm = Vec::new();
        base.route_hops(u, v, &mut h1);
        wide.route_hops(u, v, &mut hm);
        prop_assert_eq!(h1.len(), hm.len());
        for (a, b) in h1.iter().zip(&hm) {
            prop_assert_eq!(a.from, b.from);
            prop_assert_eq!(a.port, b.port);
            // Class floor scales with m: 0 → 0, 1 → m.
            prop_assert_eq!(u16::from(b.lane), u16::from(a.lane) * u16::from(m));
        }
    }

    /// `channel_index` and `channel_coords` are mutually inverse over the
    /// whole dense range, and every port maps into a valid coordinate
    /// dimension.
    #[test]
    fn channel_indexing_is_a_bijection(k in 2u16..=5, n in 1u8..=3) {
        let t = Torus::of(k, n);
        let mut seen = vec![false; t.channel_count()];
        for v in t.nodes() {
            for p in 0..t.ports_per_node() {
                let port = hcube::Dim(p);
                let i = t.channel_index(v, port);
                prop_assert!(i < t.channel_count());
                prop_assert!(!seen[i], "channel index collision at {i}");
                seen[i] = true;
                prop_assert_eq!(t.channel_coords(i), (v, port));
                prop_assert!(t.port_dim(port) < Topology::dimensions(&t));
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// Ring distance is the true metric on each ring: symmetric, bounded
    /// by k/2, and achieved by one of the two directions.
    #[test]
    fn ring_distance_is_the_ring_metric(k in 2u16..=9, a in 0u16..9, b in 0u16..9) {
        let t = Torus::of(k, 1);
        let (a, b) = (a % k, b % k);
        let d = t.ring_distance(a, b);
        prop_assert_eq!(d, t.ring_distance(b, a));
        prop_assert!(d <= k / 2);
        let fwd = (b + k - a) % k;
        let bwd = (a + k - b) % k;
        prop_assert_eq!(d, fwd.min(bwd));
    }
}

#[test]
fn torus_node_iteration_matches_count() {
    for (k, n) in [(2u16, 1u8), (3, 2), (4, 3), (5, 2)] {
        let t = Torus::of(k, n);
        assert_eq!(t.nodes().count(), t.node_count());
    }
}
