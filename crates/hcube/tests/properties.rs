//! Property-based tests for the topology substrate: the paper's lemmas and
//! theorems checked on randomized instances.

use hcube::chain::{
    check_cube_ordered, check_cube_ordered_naive, is_dimension_ordered, relative_chain,
};
use hcube::disjoint::{arc_disjoint, theorem1_applies, theorem2_applies};
use hcube::{delta_high, Cube, NodeId, Path, Resolution, Subcube};
use proptest::prelude::*;

/// A cube dimension and a node address valid for it.
fn cube_and_node() -> impl Strategy<Value = (u8, u32)> {
    (1u8..=10).prop_flat_map(|n| (Just(n), 0u32..(1u32 << n)))
}

/// A cube dimension and two node addresses valid for it.
fn cube_and_pair() -> impl Strategy<Value = (u8, u32, u32)> {
    (1u8..=10).prop_flat_map(|n| (Just(n), 0u32..(1u32 << n), 0u32..(1u32 << n)))
}

fn cube_and_quad() -> impl Strategy<Value = (u8, u32, u32, u32, u32)> {
    (2u8..=8).prop_flat_map(|n| {
        let m = 1u32 << n;
        (Just(n), 0..m, 0..m, 0..m, 0..m)
    })
}

proptest! {
    /// Lemma 1, part formalized as: an E-cube path travels each dimension
    /// at most once, in strictly monotone order, and its length equals the
    /// Hamming distance.
    #[test]
    fn lemma1_route_structure((n, u, v) in cube_and_pair(),
                              lowhigh in any::<bool>()) {
        let res = if lowhigh { Resolution::LowToHigh } else { Resolution::HighToLow };
        let (u, v) = (NodeId(u), NodeId(v));
        let dims: Vec<u8> = res.route_dims(u, v).map(|d| d.0).collect();
        prop_assert_eq!(dims.len() as u32, u.distance(v));
        for w in dims.windows(2) {
            match res {
                Resolution::HighToLow => prop_assert!(w[0] > w[1]),
                Resolution::LowToHigh => prop_assert!(w[0] < w[1]),
            }
        }
        // Lemma 1 conditions 1–2: prefix of the path agrees with the source
        // on all dimensions ≤ d not yet traveled; suffix agrees with the
        // destination on all dimensions > d (high-to-low form).
        if res == Resolution::HighToLow {
            let nodes: Vec<NodeId> = Path::new(res, u, v).nodes().collect();
            for (i, arc_dim) in dims.iter().enumerate() {
                for w in &nodes[..=i] {
                    // Before traversing dimension d, bits d..0 match u.
                    for k in 0..=*arc_dim {
                        prop_assert_eq!(w.bit(hcube::Dim(k)), u.bit(hcube::Dim(k)));
                    }
                }
                for w in &nodes[i + 1..] {
                    for k in (*arc_dim)..n {
                        prop_assert_eq!(w.bit(hcube::Dim(k)), v.bit(hcube::Dim(k)));
                    }
                }
            }
        }
    }

    /// Lemma 2: the node addresses within any subcube are contiguous.
    #[test]
    fn lemma2_contiguity((n, x) in cube_and_node(), dim_frac in 0u8..=10) {
        let dim = dim_frac.min(n);
        let s = Subcube::new(dim, x >> dim);
        prop_assert!(s.contains(NodeId(x)));
        prop_assert_eq!(s.max_node().0 - s.min_node().0 + 1, s.node_count() as u32);
        let y = s.min_node().0 + (x % s.node_count() as u32);
        prop_assert!(s.contains(NodeId(y)));
    }

    /// Theorem 1: paths leaving a common source on different channels are
    /// arc-disjoint (both resolution orders).
    #[test]
    fn theorem1_disjointness((n, s, d1, d2, _) in cube_and_quad(),
                             lowhigh in any::<bool>()) {
        let _ = n;
        let res = if lowhigh { Resolution::LowToHigh } else { Resolution::HighToLow };
        let a = Path::new(res, NodeId(s), NodeId(d1));
        let b = Path::new(res, NodeId(s), NodeId(d2));
        if theorem1_applies(a, b) {
            prop_assert!(arc_disjoint(a, b));
        }
    }

    /// Theorem 2: inside-subcube and outside-subcube paths are arc-disjoint.
    #[test]
    fn theorem2_disjointness((n, u, v, x, y) in cube_and_quad(), dim_frac in 0u8..=8) {
        let dim = dim_frac.min(n);
        let s = Subcube::new(dim, u >> dim);
        let inside = Path::new(Resolution::HighToLow, NodeId(u), NodeId(v));
        let outside = Path::new(Resolution::HighToLow, NodeId(x), NodeId(y));
        if theorem2_applies(s, inside, outside) {
            prop_assert!(arc_disjoint(inside, outside));
        }
    }

    /// Theorem 4: every dimension-ordered chain is cube-ordered.
    #[test]
    fn theorem4_dim_ordered_is_cube_ordered(
        n in 2u8..=8,
        raw in prop::collection::btree_set(0u32..256, 1..20)
    ) {
        let chain: Vec<NodeId> = raw.into_iter()
            .map(|v| NodeId(v % (1 << n)))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        prop_assert!(is_dimension_ordered(&chain));
        prop_assert_eq!(check_cube_ordered(&chain, n), Ok(()));
        prop_assert_eq!(check_cube_ordered_naive(&chain), Ok(()));
    }

    /// The fast cube-ordering check agrees with the brute-force oracle on
    /// arbitrary (possibly invalid) chains.
    #[test]
    fn cube_order_checks_agree(
        n in 2u8..=6,
        raw in prop::collection::vec(0u32..64, 1..12)
    ) {
        let chain: Vec<NodeId> = raw.iter().map(|&v| NodeId(v % (1 << n))).collect();
        let mut dedup = chain.clone();
        dedup.sort_unstable();
        dedup.dedup();
        if dedup.len() != chain.len() {
            // Duplicates: fast checker must reject.
            prop_assert!(check_cube_ordered(&chain, n).is_err());
        } else {
            prop_assert_eq!(
                check_cube_ordered(&chain, n).is_ok(),
                check_cube_ordered_naive(&chain).is_ok()
            );
        }
    }

    /// relative_chain produces a dimension-ordered chain with the source
    /// first, invariant under the router's resolution order after
    /// canonicalization.
    #[test]
    fn relative_chain_properties(
        n in 2u8..=8,
        src in 0u32..256,
        raw in prop::collection::btree_set(0u32..256, 1..20),
        lowhigh in any::<bool>()
    ) {
        let res = if lowhigh { Resolution::LowToHigh } else { Resolution::HighToLow };
        let src = NodeId(src % (1 << n));
        let dests: Vec<NodeId> = raw.into_iter()
            .map(|v| NodeId(v % (1 << n)))
            .filter(|&v| v != src)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        prop_assume!(!dests.is_empty());
        let chain = relative_chain(res, n, src, &dests).unwrap();
        prop_assert_eq!(chain[0], NodeId(0));
        prop_assert!(is_dimension_ordered(&chain));
        prop_assert_eq!(chain.len(), dests.len() + 1);
    }

    /// δ(u, v) = ⌊log₂(u ⊕ v)⌋ (Definition 1) and symmetry.
    #[test]
    fn delta_definition((_, u, v) in cube_and_pair()) {
        let (u, v) = (NodeId(u), NodeId(v));
        match delta_high(u, v) {
            None => prop_assert_eq!(u, v),
            Some(d) => {
                prop_assert_eq!(d.0 as u32, (u.xor(v) as f64).log2() as u32);
                prop_assert_eq!(delta_high(v, u), Some(d));
            }
        }
    }

    /// enclosing_set covers all members and is minimal.
    #[test]
    fn enclosing_set_minimal(
        n in 1u8..=8,
        raw in prop::collection::btree_set(0u32..256, 1..16)
    ) {
        let set: Vec<NodeId> = raw.into_iter()
            .map(|v| NodeId(v % (1 << n)))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let s = Subcube::enclosing_set(set.iter().copied());
        for &v in &set {
            prop_assert!(s.contains(v));
        }
        if s.dim > 0 {
            let (lo, hi) = s.halves();
            prop_assert!(!set.iter().all(|&v| lo.contains(v)));
            prop_assert!(!set.iter().all(|&v| hi.contains(v)));
        }
    }

    /// A path and its reverse never share a directed channel: an E-cube
    /// route from `u` to `v` and one from `v` to `u` traverse the same
    /// dimension set, but at every traversed dimension their tail bits
    /// differ, so the occupied arcs differ. (This is why opposite-direction
    /// traffic never self-blocks on full-duplex links.)
    #[test]
    fn reverse_path_is_arc_disjoint((_, u, v) in cube_and_pair()) {
        let (u, v) = (NodeId(u), NodeId(v));
        let fwd = Path::new(Resolution::HighToLow, u, v);
        let rev = Path::new(Resolution::HighToLow, v, u);
        prop_assert_eq!(fwd.hops(), rev.hops());
        prop_assert!(arc_disjoint(fwd, rev));
    }
}

#[test]
fn cube_node_iteration_matches_count() {
    for n in 1..=10u8 {
        let c = Cube::of(n);
        assert_eq!(c.nodes().count(), c.node_count());
    }
}
