//! Property-based tests for the 2D mesh backend and its two routers,
//! mirroring `torus_properties.rs`: minimal routing, dense channel
//! indexing, the west-first turn discipline, and — the deadlock-freedom
//! certificate — exhaustive acyclicity of the channel-dependency graph
//! induced by every route of the network.

use hcube::{Mesh, MeshXY, MinimalAdaptive, NodeId, Router, Topology};
use proptest::prelude::*;

/// A mesh shape and two node addresses valid for it.
fn mesh_and_pair() -> impl Strategy<Value = (u16, u16, u32, u32)> {
    (2u16..=6, 1u16..=6).prop_flat_map(|(w, h)| {
        let nodes = u32::from(w) * u32::from(h);
        (Just(w), Just(h), 0..nodes, 0..nodes)
    })
}

/// Checks a route is a contiguous chain of in-bounds neighbor steps of
/// minimal (Manhattan) length that never rides a boundary self-loop.
fn assert_minimal_contiguous<R: Router<Topo = Mesh>>(
    r: &R,
    m: Mesh,
    u: NodeId,
    v: NodeId,
) -> Result<(), TestCaseError> {
    let mut hops = Vec::new();
    r.route_hops(u, v, &mut hops);
    prop_assert_eq!(hops.len() as u32, m.distance(u, v), "minimal route");
    prop_assert_eq!(r.hops(u, v), m.distance(u, v));
    let mut at = u;
    for h in &hops {
        prop_assert_eq!(h.from, at, "contiguous route");
        prop_assert!(h.port.0 < m.ports_per_node());
        prop_assert!(h.lane < r.lanes());
        let next = m.neighbor(h.from, h.port);
        prop_assert!(next != at, "route never rides a boundary loop");
        at = next;
    }
    prop_assert_eq!(at, v, "route ends at destination");
    Ok(())
}

proptest! {
    #[test]
    fn xy_routes_are_minimal_and_contiguous((w, h, u, v) in mesh_and_pair()) {
        let m = Mesh::of(w, h);
        assert_minimal_contiguous(&MeshXY::new(m), m, NodeId(u), NodeId(v))?;
    }

    #[test]
    fn adaptive_routes_are_minimal_and_contiguous(
        (w, h, u, v) in mesh_and_pair(),
        lanes in 1u8..=4,
    ) {
        let m = Mesh::of(w, h);
        let r = MinimalAdaptive::with_lanes(m, lanes);
        assert_minimal_contiguous(&r, m, NodeId(u), NodeId(v))?;
    }

    /// The west-first turn discipline (Glass & Ni): every `x−` hop
    /// precedes every non-west hop, the `y` direction never mixes within
    /// a route, and no hop reverses the previous one. These are exactly
    /// the conditions under which the turn model removes the cyclic
    /// turns from the channel-dependency graph.
    #[test]
    fn adaptive_routes_are_west_first((w, h, u, v) in mesh_and_pair()) {
        let m = Mesh::of(w, h);
        let r = MinimalAdaptive::new(m);
        let mut hops = Vec::new();
        r.route_hops(NodeId(u), NodeId(v), &mut hops);
        let mut seen_non_west = false;
        let mut y_sign: Option<u8> = None;
        let mut last_port: Option<u8> = None;
        for hop in &hops {
            let p = hop.port.0;
            if p == 1 {
                prop_assert!(!seen_non_west, "west hops must form a prefix");
            } else {
                seen_non_west = true;
            }
            if p >= 2 {
                prop_assert!(y_sign.is_none_or(|s| s == p), "y direction never mixes");
                y_sign = Some(p);
            }
            if let Some(lp) = last_port {
                prop_assert!(lp ^ 1 != p, "no 180-degree reversals");
            }
            last_port = Some(p);
        }
    }

    /// The deterministic per-pair staircase interleaving is stable: the
    /// same pair always routes the same way (the engine's route memo
    /// depends on it).
    #[test]
    fn adaptive_routes_are_deterministic((w, h, u, v) in mesh_and_pair()) {
        let m = Mesh::of(w, h);
        let r = MinimalAdaptive::new(m);
        prop_assert_eq!(
            r.route_channels(NodeId(u), NodeId(v)),
            r.route_channels(NodeId(u), NodeId(v))
        );
    }

    /// `channel_index`/`channel_coords` are mutually inverse over the
    /// dense range and every port maps into a valid dimension.
    #[test]
    fn channel_indexing_is_a_bijection(w in 2u16..=6, h in 1u16..=6) {
        let m = Mesh::of(w, h);
        let mut seen = vec![false; m.channel_count()];
        for v in m.nodes() {
            for p in 0..m.ports_per_node() {
                let port = hcube::Dim(p);
                let i = m.channel_index(v, port);
                prop_assert!(i < m.channel_count());
                prop_assert!(!seen[i], "channel index collision at {i}");
                seen[i] = true;
                prop_assert_eq!(m.channel_coords(i), (v, port));
                prop_assert!(m.port_dim(port) < Topology::dimensions(&m));
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }
}

/// Builds the link-level channel-dependency graph over **all** routes
/// of the network and returns true iff it is acyclic. A dependency
/// `a → b` exists when some route acquires link `b` while holding link
/// `a` (consecutive hops). Wormhole deadlock requires a cycle here;
/// lane-level cycles project onto link-level cycles because every lane
/// of a link is in one interchangeable class for these routers — so
/// acyclicity of this graph is a complete deadlock-freedom certificate.
fn cdg_is_acyclic<R: Router<Topo = Mesh>>(r: &R, m: Mesh) -> bool {
    let links = m.channel_count();
    let mut edges = vec![std::collections::BTreeSet::new(); links];
    let mut hops = Vec::new();
    for u in m.nodes() {
        for v in m.nodes() {
            hops.clear();
            r.route_hops(u, v, &mut hops);
            for w in hops.windows(2) {
                let a = m.channel_index(w[0].from, w[0].port);
                let b = m.channel_index(w[1].from, w[1].port);
                edges[a].insert(b);
            }
        }
    }
    // Iterative three-color DFS cycle check.
    let mut color = vec![0u8; links]; // 0 white, 1 gray, 2 black
    for start in 0..links {
        if color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, false)];
        while let Some((node, done)) = stack.pop() {
            if done {
                color[node] = 2;
                continue;
            }
            if color[node] == 2 {
                continue;
            }
            color[node] = 1;
            stack.push((node, true));
            for &next in &edges[node] {
                match color[next] {
                    1 => return false,
                    0 => stack.push((next, false)),
                    _ => {}
                }
            }
        }
    }
    true
}

/// The deadlock-freedom certificate, exhaustive on small meshes: the
/// dependency graph induced by every (src, dst) route is acyclic for
/// both routers.
#[test]
fn channel_dependency_graph_is_acyclic() {
    for (w, h) in [(2u16, 2u16), (3, 3), (4, 4), (5, 3), (2, 6)] {
        let m = Mesh::of(w, h);
        assert!(
            cdg_is_acyclic(&MeshXY::new(m), m),
            "XY CDG has a cycle on {w}x{h}"
        );
        assert!(
            cdg_is_acyclic(&MinimalAdaptive::new(m), m),
            "west-first CDG has a cycle on {w}x{h}"
        );
    }
}

/// Sanity: a router that violates the turn model *would* be caught by
/// the certificate — YX-after-XY mixing on a ring of turns creates a
/// cycle. We fake it by checking that adding the four prohibited turns
/// manually closes a cycle on a 2×2 mesh, i.e. the certificate is not
/// vacuously true.
#[test]
fn cdg_certificate_is_not_vacuous() {
    let m = Mesh::of(2, 2);
    let links = m.channel_count();
    let mut edges = vec![std::collections::BTreeSet::new(); links];
    // A clockwise cycle of dependencies around the 2×2 face:
    // (0,0)→x+ , (1,0)→y+, (1,1)→x−, (0,1)→y−.
    let cyc = [
        m.channel_index(m.node_at(0, 0), hcube::Dim(0)),
        m.channel_index(m.node_at(1, 0), hcube::Dim(2)),
        m.channel_index(m.node_at(1, 1), hcube::Dim(1)),
        m.channel_index(m.node_at(0, 1), hcube::Dim(3)),
    ];
    for i in 0..4 {
        edges[cyc[i]].insert(cyc[(i + 1) % 4]);
    }
    // Reuse the DFS from cdg_is_acyclic by inlining a tiny check.
    let mut color = vec![0u8; links];
    let mut found_cycle = false;
    'outer: for start in 0..links {
        if color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, false)];
        while let Some((node, done)) = stack.pop() {
            if done {
                color[node] = 2;
                continue;
            }
            if color[node] == 2 {
                continue;
            }
            color[node] = 1;
            stack.push((node, true));
            for &next in &edges[node] {
                match color[next] {
                    1 => {
                        found_cycle = true;
                        break 'outer;
                    }
                    0 => stack.push((next, false)),
                    _ => {}
                }
            }
        }
    }
    assert!(
        found_cycle,
        "the prohibited-turn ring must register as a cycle"
    );
}

#[test]
fn mesh_node_iteration_matches_count() {
    for (w, h) in [(2u16, 1u16), (3, 3), (8, 8), (5, 2)] {
        let m = Mesh::of(w, h);
        assert_eq!(m.nodes().count(), m.node_count());
    }
}
