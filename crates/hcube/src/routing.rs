//! Deterministic E-cube (dimension-ordered) routing.
//!
//! Under E-cube routing a message takes the unique shortest path from `u`
//! to `v` that corrects the differing address bits in a fixed order. The
//! paper's exposition resolves addresses from *high-order to low-order*
//! bits; the nCUBE-2 resolves in the opposite order, and the paper notes
//! that the choice does not affect any result. Both orders are supported
//! here via [`Resolution`].

use crate::addr::{delta_high, delta_low, Dim, NodeId};

/// The address-resolution order of the deterministic router.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Resolution {
    /// Resolve the highest-order differing bit first (the paper's default).
    HighToLow,
    /// Resolve the lowest-order differing bit first (the nCUBE-2's order).
    LowToHigh,
}

impl Resolution {
    /// `δ(u, v)` — the dimension of the *first* channel a message from `u`
    /// to `v` travels, or `None` when `u = v` (Definition 1, generalized to
    /// both resolution orders).
    #[inline]
    #[must_use]
    pub fn delta(self, u: NodeId, v: NodeId) -> Option<Dim> {
        match self {
            Resolution::HighToLow => delta_high(u, v),
            Resolution::LowToHigh => delta_low(u, v),
        }
    }

    /// Maps an address into the canonical space in which this resolution
    /// order behaves like [`Resolution::HighToLow`].
    ///
    /// `HighToLow` is the identity; `LowToHigh` is bit reversal within the
    /// cube's `n` bits. The map is an involution, so it is its own inverse.
    /// All chain algorithms in this workspace run in canonical space and
    /// conjugate through this map.
    #[inline]
    #[must_use]
    pub fn canon(self, v: NodeId, n: u8) -> NodeId {
        match self {
            Resolution::HighToLow => v,
            Resolution::LowToHigh => v.bit_reverse(n),
        }
    }

    /// The sequence of dimensions an E-cube message from `u` to `v`
    /// traverses, in traversal order.
    ///
    /// The iterator is allocation-free; each yielded dimension is distinct
    /// and the sequence is strictly monotone (decreasing for `HighToLow`,
    /// increasing for `LowToHigh`) — the property formalized as Lemma 1.
    #[inline]
    #[must_use]
    pub fn route_dims(self, u: NodeId, v: NodeId) -> RouteDims {
        RouteDims {
            remaining: u.xor(v),
            resolution: self,
        }
    }
}

/// Iterator over the dimensions of an E-cube route. See
/// [`Resolution::route_dims`].
#[derive(Clone, Copy, Debug)]
pub struct RouteDims {
    remaining: u32,
    resolution: Resolution,
}

impl Iterator for RouteDims {
    type Item = Dim;

    #[inline]
    fn next(&mut self) -> Option<Dim> {
        if self.remaining == 0 {
            return None;
        }
        let d = match self.resolution {
            Resolution::HighToLow => (31 - self.remaining.leading_zeros()) as u8,
            Resolution::LowToHigh => self.remaining.trailing_zeros() as u8,
        };
        self.remaining &= !(1u32 << d);
        Some(Dim(d))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let k = self.remaining.count_ones() as usize;
        (k, Some(k))
    }
}

impl ExactSizeIterator for RouteDims {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_path_dims() {
        // P(0101, 1110) = (0101; 1101; 1111; 1110): dims 3, 1, 0.
        let dims: Vec<u8> = Resolution::HighToLow
            .route_dims(NodeId(0b0101), NodeId(0b1110))
            .map(|d| d.0)
            .collect();
        assert_eq!(dims, vec![3, 1, 0]);
    }

    #[test]
    fn low_to_high_reverses_dim_order() {
        let dims: Vec<u8> = Resolution::LowToHigh
            .route_dims(NodeId(0b0101), NodeId(0b1110))
            .map(|d| d.0)
            .collect();
        assert_eq!(dims, vec![0, 1, 3]);
    }

    #[test]
    fn route_dims_is_monotone_and_covers_xor() {
        for u in 0..64u32 {
            for v in 0..64u32 {
                let (u, v) = (NodeId(u), NodeId(v));
                for res in [Resolution::HighToLow, Resolution::LowToHigh] {
                    let dims: Vec<u8> = res.route_dims(u, v).map(|d| d.0).collect();
                    // Monotone (Lemma 1: each dimension traveled at most
                    // once, in strictly ordered sequence).
                    for w in dims.windows(2) {
                        match res {
                            Resolution::HighToLow => assert!(w[0] > w[1]),
                            Resolution::LowToHigh => assert!(w[0] < w[1]),
                        }
                    }
                    // Covers exactly the differing bits.
                    let mut mask = 0u32;
                    for d in &dims {
                        mask |= 1 << d;
                    }
                    assert_eq!(mask, u.xor(v));
                    assert_eq!(dims.len() as u32, u.distance(v));
                }
            }
        }
    }

    #[test]
    fn delta_is_first_route_dim() {
        for u in 0..32u32 {
            for v in 0..32u32 {
                let (u, v) = (NodeId(u), NodeId(v));
                for res in [Resolution::HighToLow, Resolution::LowToHigh] {
                    assert_eq!(res.delta(u, v), res.route_dims(u, v).next());
                }
            }
        }
    }

    #[test]
    fn canon_is_involutive_and_conjugates_routes() {
        let n = 5u8;
        for u in 0..(1u32 << n) {
            for v in 0..(1u32 << n) {
                let (u, v) = (NodeId(u), NodeId(v));
                let res = Resolution::LowToHigh;
                assert_eq!(res.canon(res.canon(u, n), n), u);
                // LowToHigh route of (u, v) == mirrored HighToLow route of
                // the canonical images.
                let direct: Vec<u8> = res.route_dims(u, v).map(|d| d.0).collect();
                let conj: Vec<u8> = Resolution::HighToLow
                    .route_dims(res.canon(u, n), res.canon(v, n))
                    .map(|d| n - 1 - d.0)
                    .collect();
                assert_eq!(direct, conj);
            }
        }
    }

    #[test]
    fn exact_size_hint() {
        let it = Resolution::HighToLow.route_dims(NodeId(0), NodeId(0b1011));
        assert_eq!(it.len(), 3);
    }
}
