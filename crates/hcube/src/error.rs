//! Error types for the topology substrate.

use crate::addr::NodeId;
use std::fmt;

/// Errors produced by `hcube` API boundaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HcubeError {
    /// The requested cube dimension is outside `1..=MAX_DIMENSION`.
    BadDimension {
        /// The rejected dimension.
        n: u8,
    },
    /// A node address does not fit in the cube.
    NodeOutOfRange {
        /// The rejected address.
        node: NodeId,
        /// The cube's dimensionality.
        n: u8,
    },
    /// A chain that was required to be dimension-ordered is not.
    NotDimensionOrdered {
        /// Index of the first out-of-order element.
        at: usize,
    },
    /// A chain that was required to be cube-ordered is not.
    NotCubeOrdered {
        /// Index of a witness element breaking contiguity.
        at: usize,
    },
    /// A chain contains a repeated address.
    DuplicateAddress {
        /// The repeated address.
        node: NodeId,
    },
    /// The requested torus parameters are unsupported (`k < 2`, `n = 0`,
    /// or more than [`crate::torus::MAX_TORUS_NODES`] nodes).
    BadTorus {
        /// The rejected arity.
        k: u16,
        /// The rejected dimensionality.
        n: u8,
    },
    /// The requested mesh parameters are unsupported (`w < 2`, `h = 0`,
    /// or more than [`crate::mesh::MAX_MESH_NODES`] nodes).
    BadMesh {
        /// The rejected width.
        w: u16,
        /// The rejected height.
        h: u16,
    },
}

impl fmt::Display for HcubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HcubeError::BadDimension { n } => {
                write!(
                    f,
                    "cube dimension {n} is outside the supported range 1..={}",
                    crate::cube::MAX_DIMENSION
                )
            }
            HcubeError::NodeOutOfRange { node, n } => {
                write!(f, "node address {node} does not fit in a {n}-cube")
            }
            HcubeError::NotDimensionOrdered { at } => {
                write!(
                    f,
                    "chain is not dimension-ordered (violation at index {at})"
                )
            }
            HcubeError::NotCubeOrdered { at } => {
                write!(f, "chain is not cube-ordered (violation at index {at})")
            }
            HcubeError::DuplicateAddress { node } => {
                write!(f, "chain contains duplicate address {node}")
            }
            HcubeError::BadTorus { k, n } => {
                write!(
                    f,
                    "unsupported torus parameters: {k}-ary {n}-cube (need k >= 2, n >= 1, at most 2^24 nodes)"
                )
            }
            HcubeError::BadMesh { w, h } => {
                write!(
                    f,
                    "unsupported mesh parameters: {w}x{h} (need w >= 2, h >= 1, at most 2^24 nodes)"
                )
            }
        }
    }
}

impl std::error::Error for HcubeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = HcubeError::BadDimension { n: 0 };
        assert!(e.to_string().contains("dimension 0"));
        let e = HcubeError::NodeOutOfRange {
            node: NodeId(9),
            n: 3,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("3-cube"));
        let e = HcubeError::NotDimensionOrdered { at: 2 };
        assert!(e.to_string().contains("index 2"));
    }
}
