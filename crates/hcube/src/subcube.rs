//! Subcubes (Definition 2) and their half decomposition.
//!
//! A subcube `S = (n_S, M_S)` fixes the high-order `n − n_S` address bits
//! to the value `M_S` and lets the low `n_S` bits range freely:
//! `u ∈ S  ⟺  (u ≫ n_S) = M_S`.
//!
//! Subcubes are defined in *canonical* (high-to-low resolution) address
//! space; algorithms supporting low-to-high resolution conjugate through
//! [`crate::routing::Resolution::canon`] first.

use crate::addr::NodeId;

/// A subcube `(n_S, M_S)` of Definition 2.
///
/// ```
/// use hcube::{NodeId, Subcube};
///
/// // S = (3, 1) in a 4-cube: the nodes whose top bit is 1, i.e. 8..=15.
/// let s = Subcube::new(3, 1);
/// assert!(s.contains(NodeId(0b1011)));
/// assert!(!s.contains(NodeId(0b0111)));
/// let (lo, hi) = s.halves();
/// assert_eq!((lo.min_node().0, lo.max_node().0), (8, 11));
/// assert_eq!((hi.min_node().0, hi.max_node().0), (12, 15));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Subcube {
    /// The subcube's dimensionality `n_S`.
    pub dim: u8,
    /// The fixed high-order bits `M_S`.
    pub mask: u32,
}

impl Subcube {
    /// The subcube of dimensionality `dim` whose fixed high bits equal
    /// `mask`.
    #[inline]
    #[must_use]
    pub fn new(dim: u8, mask: u32) -> Subcube {
        Subcube { dim, mask }
    }

    /// The whole `n`-cube viewed as a subcube: `(n, 0)`.
    #[inline]
    #[must_use]
    pub fn whole(n: u8) -> Subcube {
        Subcube { dim: n, mask: 0 }
    }

    /// Membership test: `u ∈ S ⟺ (u ≫ n_S) = M_S`.
    #[inline]
    #[must_use]
    pub fn contains(self, v: NodeId) -> bool {
        (v.0 >> self.dim) == self.mask
    }

    /// The number of nodes in the subcube, `2^{n_S}`.
    #[inline]
    #[must_use]
    pub fn node_count(self) -> usize {
        1usize << self.dim
    }

    /// The smallest address in the subcube (Lemma 2: subcube addresses are
    /// contiguous, so the subcube is exactly `min_node..=max_node`).
    #[inline]
    #[must_use]
    pub fn min_node(self) -> NodeId {
        NodeId(self.mask << self.dim)
    }

    /// The largest address in the subcube.
    #[inline]
    #[must_use]
    pub fn max_node(self) -> NodeId {
        NodeId((self.mask << self.dim) | ((1u32 << self.dim) - 1))
    }

    /// Splits a non-trivial subcube into its two `(n_S − 1)`-dimensional
    /// halves, ordered by address: the half with bit `n_S − 1` clear first.
    ///
    /// # Panics
    /// If the subcube has dimensionality 0 (a single node has no halves).
    #[must_use]
    pub fn halves(self) -> (Subcube, Subcube) {
        assert!(self.dim >= 1, "a 0-dimensional subcube has no halves");
        let d = self.dim - 1;
        (
            Subcube {
                dim: d,
                mask: self.mask << 1,
            },
            Subcube {
                dim: d,
                mask: (self.mask << 1) | 1,
            },
        )
    }

    /// Which half of this subcube `v` lies in: `false` for the low half,
    /// `true` for the high half. `v` must be a member.
    #[inline]
    #[must_use]
    pub fn high_half(self, v: NodeId) -> bool {
        debug_assert!(self.contains(v));
        debug_assert!(self.dim >= 1);
        (v.0 >> (self.dim - 1)) & 1 == 1
    }

    /// The half of this subcube containing `v`.
    #[must_use]
    pub fn half_containing(self, v: NodeId) -> Subcube {
        let (lo, hi) = self.halves();
        if self.high_half(v) {
            hi
        } else {
            lo
        }
    }

    /// Iterates the subcube's nodes in ascending address order.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (self.min_node().0..=self.max_node().0).map(NodeId)
    }

    /// The smallest subcube containing both `u` and `v`.
    ///
    /// Its dimensionality is `δ(u, v) + 1` (one more than the highest
    /// differing bit), or 0 when `u = v`.
    #[must_use]
    pub fn enclosing_pair(u: NodeId, v: NodeId) -> Subcube {
        let dim = match crate::addr::delta_high(u, v) {
            Some(d) => d.0 + 1,
            None => 0,
        };
        Subcube {
            dim,
            mask: u.0 >> dim,
        }
    }

    /// The smallest subcube containing every node of a non-empty set.
    ///
    /// # Panics
    /// If `nodes` is empty.
    #[must_use]
    pub fn enclosing_set<I: IntoIterator<Item = NodeId>>(nodes: I) -> Subcube {
        let mut it = nodes.into_iter();
        let first = it.next().expect("enclosing_set requires a non-empty set");
        let mut acc = Subcube {
            dim: 0,
            mask: first.0,
        };
        for v in it {
            if !acc.contains(v) {
                let grown = Subcube::enclosing_pair(acc.min_node(), v);
                // Growing to cover `v` must keep covering the accumulated
                // range, which enclosing_pair guarantees because the
                // accumulated subcube's min shares all bits above acc.dim.
                acc = Subcube {
                    dim: grown.dim.max(acc.dim),
                    mask: acc.min_node().0 >> grown.dim.max(acc.dim),
                };
            }
        }
        acc
    }

    /// Whether this subcube is entirely contained in `other`.
    #[inline]
    #[must_use]
    pub fn is_within(self, other: Subcube) -> bool {
        self.dim <= other.dim && (self.mask >> (other.dim - self.dim)) == other.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_matches_definition_2() {
        // S = (2, 0b10) in a 4-cube: nodes whose high 2 bits are 10,
        // i.e. {1000, 1001, 1010, 1011} = {8, 9, 10, 11}.
        let s = Subcube::new(2, 0b10);
        let members: Vec<u32> = (0..16).filter(|&v| s.contains(NodeId(v))).collect();
        assert_eq!(members, vec![8, 9, 10, 11]);
        assert_eq!(s.node_count(), 4);
        assert_eq!(s.min_node(), NodeId(8));
        assert_eq!(s.max_node(), NodeId(11));
    }

    #[test]
    fn lemma_2_contiguity() {
        // For any subcube, x, z ∈ S and x ≤ y ≤ z implies y ∈ S.
        for dim in 0..=4u8 {
            for mask in 0..(1u32 << (4 - dim)) {
                let s = Subcube::new(dim, mask);
                let members: Vec<u32> = (0..16).filter(|&v| s.contains(NodeId(v))).collect();
                for w in members.windows(2) {
                    assert_eq!(w[1], w[0] + 1, "subcube addresses must be contiguous");
                }
                assert_eq!(members.len(), s.node_count());
            }
        }
    }

    #[test]
    fn halves_partition_the_subcube() {
        let s = Subcube::new(3, 0b1);
        let (lo, hi) = s.halves();
        assert_eq!(lo, Subcube::new(2, 0b10));
        assert_eq!(hi, Subcube::new(2, 0b11));
        for v in s.nodes() {
            assert_ne!(lo.contains(v), hi.contains(v));
            assert_eq!(hi.contains(v), s.high_half(v));
            assert!(s.half_containing(v).contains(v));
        }
    }

    #[test]
    fn enclosing_pair_is_minimal() {
        let s = Subcube::enclosing_pair(NodeId(0b1011), NodeId(0b1100));
        // δ = 2 ⇒ dim 3, mask 1 ⇒ {8..15}
        assert_eq!(s, Subcube::new(3, 1));
        for smaller in 0..s.dim {
            let t = Subcube::new(smaller, NodeId(0b1011).0 >> smaller);
            assert!(!(t.contains(NodeId(0b1011)) && t.contains(NodeId(0b1100))));
        }
        assert_eq!(
            Subcube::enclosing_pair(NodeId(5), NodeId(5)),
            Subcube::new(0, 5)
        );
    }

    #[test]
    fn enclosing_set_covers_and_is_minimal() {
        let set = [NodeId(11), NodeId(12), NodeId(14), NodeId(15)];
        let s = Subcube::enclosing_set(set);
        assert_eq!(s, Subcube::new(3, 1));
        // Minimality: neither half contains all of them.
        let (lo, hi) = s.halves();
        assert!(!set.iter().all(|&v| lo.contains(v)));
        assert!(!set.iter().all(|&v| hi.contains(v)));
    }

    #[test]
    fn single_node_enclosing_set() {
        let s = Subcube::enclosing_set([NodeId(9)]);
        assert_eq!(s.dim, 0);
        assert!(s.contains(NodeId(9)));
        assert_eq!(s.node_count(), 1);
    }

    #[test]
    fn is_within_relation() {
        let whole = Subcube::whole(4);
        let s = Subcube::new(2, 0b10);
        let (lo, hi) = s.halves();
        assert!(s.is_within(whole));
        assert!(lo.is_within(s));
        assert!(hi.is_within(s));
        assert!(!s.is_within(lo));
        assert!(!Subcube::new(2, 0b01).is_within(s));
        assert!(s.is_within(s));
    }

    #[test]
    fn whole_cube_contains_everything() {
        let s = Subcube::whole(4);
        for v in 0..16u32 {
            assert!(s.contains(NodeId(v)));
        }
        assert!(!s.contains(NodeId(16)));
    }
}
