//! The topology/router abstraction layer.
//!
//! The paper states its contention theory and tree algorithms for
//! hypercubes, but its framing — deterministic dimension-ordered
//! wormhole routing on all-port nodes — generalizes directly to other
//! direct networks. This module pins down the two contracts the
//! simulation stack builds on, so the discrete-event engine, tracing,
//! fault injection, and workload sweeps are written once and run on any
//! backend:
//!
//! * [`Topology`] — a static directed-channel graph with **dense channel
//!   indexing**: every node has a fixed number of outgoing channel slots
//!   ("ports"), and `channel_index`/`channel_coords` form a bijection
//!   between `(node, port)` pairs and `0..channel_count()`. Ports are
//!   grouped into *coordinate dimensions* for per-dimension statistics.
//! * [`Router`] — a **deterministic route enumerator** on top of a
//!   topology: for any ordered node pair it produces the exact channel
//!   sequence a worm's header acquires. Determinism is what makes whole
//!   simulation runs reproducible byte-for-byte.
//!
//! [`Cube`] with E-cube routing ([`Ecube`]) is the first implementation;
//! [`crate::torus::Torus`] (k-ary n-cube with dateline virtual channels)
//! is the proof of generality. Channel-indexing invariants are spelled
//! out in DESIGN.md §9.

use crate::addr::{Dim, NodeId};
use crate::cube::Cube;
use crate::path::Path;
use crate::routing::Resolution;

/// A static direct network: nodes plus densely indexed directed channels.
///
/// # Contract
///
/// * Node addresses are dense: every `NodeId(v)` with
///   `v < node_count()` is a valid node, and no other address is.
/// * Every node has exactly [`ports_per_node`](Topology::ports_per_node)
///   outgoing channel slots, identified by a *port index* carried in a
///   [`Dim`] (for the hypercube a port **is** a dimension; richer
///   topologies encode direction or virtual-channel class into the port
///   index as well).
/// * [`channel_index`](Topology::channel_index) and
///   [`channel_coords`](Topology::channel_coords) are mutually inverse
///   bijections between `(node, port)` and `0..channel_count()`.
/// * [`port_dim`](Topology::port_dim) maps each port onto the coordinate
///   dimension it travels in (`0..dimensions()`), which is what
///   per-dimension utilization statistics aggregate over.
///
/// Implementations are small `Copy` values — they describe the network,
/// they do not hold per-run state.
pub trait Topology: Copy + core::fmt::Debug {
    /// Short backend name (`"cube"`, `"torus"`), used in reports.
    fn kind(&self) -> &'static str;

    /// Number of nodes; valid addresses are exactly `0..node_count()`.
    fn node_count(&self) -> usize;

    /// Number of coordinate dimensions (for per-dimension statistics).
    fn dimensions(&self) -> u8;

    /// Outgoing channel slots per node (uniform across nodes).
    fn ports_per_node(&self) -> u8;

    /// Total number of directed channel slots,
    /// `node_count() · ports_per_node()`.
    fn channel_count(&self) -> usize {
        self.node_count() * self.ports_per_node() as usize
    }

    /// Whether `v` is a valid node address.
    fn contains(&self, v: NodeId) -> bool {
        (v.0 as usize) < self.node_count()
    }

    /// Dense index of the channel leaving `from` on `port`.
    fn channel_index(&self, from: NodeId, port: Dim) -> usize;

    /// Inverse of [`channel_index`](Topology::channel_index): the
    /// `(node, port)` pair of a dense channel index.
    fn channel_coords(&self, ch: usize) -> (NodeId, Dim);

    /// The coordinate dimension a port travels in (`< dimensions()`).
    fn port_dim(&self, port: Dim) -> u8;

    /// The node the channel leaving `from` on `port` arrives at.
    fn neighbor(&self, from: NodeId, port: Dim) -> NodeId;

    /// Human-readable node label (the hypercube prints binary addresses).
    fn node_label(&self, v: NodeId) -> String {
        format!("{}", v.0)
    }

    /// Human-readable label of a dense channel index, used by trace
    /// rendering. The default shows `from --port→`.
    fn channel_label(&self, ch: usize) -> String {
        let (from, port) = self.channel_coords(ch);
        format!("{}--{}→", self.node_label(from), port.0)
    }

    /// Human-readable label of a coordinate dimension
    /// (`0..dimensions()`), used by per-dimension reports — contention
    /// heatmaps, metrics exports, Perfetto track names.
    fn dim_label(&self, d: u8) -> String {
        format!("dim{d}")
    }
}

/// A deterministic router over a [`Topology`].
///
/// # Contract
///
/// * Routes are **deterministic**: the same `(src, dst)` pair always
///   yields the same channel sequence (no adaptivity, no randomness).
/// * A route's hops are contiguous: hop `i` ends where hop `i + 1`
///   starts, the first hop leaves `src`, the last arrives at `dst`.
/// * `route_channels(v, v)` is empty.
///
/// Deadlock-freedom is a *router* property, not an engine property: the
/// engine simulates whatever channel-dependency structure the router
/// creates and reports wedges through its watchdog. E-cube on the
/// hypercube and dateline-VC dimension-ordered routing on the torus are
/// both deadlock-free by the classic channel-ordering arguments.
///
/// Routers are [`Hash`](std::hash::Hash) so callers can fingerprint a
/// router value (e.g. the simulator's route memo invalidates itself
/// when the router it cached routes for changes). Because routes are
/// deterministic, equal-hashing router values of the same type produce
/// identical routes for every `(src, dst)` pair.
pub trait Router: std::hash::Hash {
    /// The topology this router routes on.
    type Topo: Topology;

    /// The underlying topology descriptor.
    fn topology(&self) -> Self::Topo;

    /// Appends the `(node, port)` hops of the route `src → dst`, in
    /// traversal order.
    fn route_hops(&self, src: NodeId, dst: NodeId, out: &mut Vec<(NodeId, Dim)>);

    /// The route as dense channel indices, in traversal order.
    fn route_channels(&self, src: NodeId, dst: NodeId) -> Vec<usize> {
        let mut hops = Vec::new();
        self.route_hops(src, dst, &mut hops);
        let topo = self.topology();
        hops.into_iter()
            .map(|(v, p)| topo.channel_index(v, p))
            .collect()
    }

    /// Number of hops of the route `src → dst`.
    fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        let mut hops = Vec::new();
        self.route_hops(src, dst, &mut hops);
        hops.len() as u32
    }
}

// ---------------------------------------------------------------------
// Hypercube: Cube is a Topology, Ecube is its deterministic router.
// ---------------------------------------------------------------------

impl Topology for Cube {
    fn kind(&self) -> &'static str {
        "cube"
    }

    fn node_count(&self) -> usize {
        Cube::node_count(*self)
    }

    fn dimensions(&self) -> u8 {
        self.dimension()
    }

    fn ports_per_node(&self) -> u8 {
        self.dimension()
    }

    fn channel_count(&self) -> usize {
        Cube::channel_count(*self)
    }

    fn contains(&self, v: NodeId) -> bool {
        Cube::contains(*self, v)
    }

    fn channel_index(&self, from: NodeId, port: Dim) -> usize {
        Cube::channel_index(*self, from, port)
    }

    fn channel_coords(&self, ch: usize) -> (NodeId, Dim) {
        let n = self.dimension() as usize;
        (NodeId((ch / n) as u32), Dim((ch % n) as u8))
    }

    fn port_dim(&self, port: Dim) -> u8 {
        port.0
    }

    fn neighbor(&self, from: NodeId, port: Dim) -> NodeId {
        from.flip(port)
    }

    fn node_label(&self, v: NodeId) -> String {
        v.binary(self.dimension())
    }
}

/// The deterministic E-cube (dimension-ordered) router of the hypercube,
/// under a fixed address-resolution order.
///
/// This is the `Cube + Resolution` pair the whole legacy API passed
/// around, packaged as a [`Router`] so generic code can hold one value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ecube {
    /// The hypercube routed on.
    pub cube: Cube,
    /// The router's address-resolution order.
    pub resolution: Resolution,
}

impl Ecube {
    /// An E-cube router on `cube` resolving addresses in `resolution`
    /// order.
    #[must_use]
    pub fn new(cube: Cube, resolution: Resolution) -> Ecube {
        Ecube { cube, resolution }
    }
}

impl Router for Ecube {
    type Topo = Cube;

    fn topology(&self) -> Cube {
        self.cube
    }

    fn route_hops(&self, src: NodeId, dst: NodeId, out: &mut Vec<(NodeId, Dim)>) {
        for arc in Path::new(self.resolution, src, dst).arcs() {
            out.push((arc.from, arc.dim));
        }
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        src.distance(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_channel_indexing_is_a_bijection() {
        let c = Cube::of(4);
        let mut seen = vec![false; Topology::channel_count(&c)];
        for v in c.nodes() {
            for d in c.dims() {
                let i = Topology::channel_index(&c, v, d);
                assert!(!seen[i]);
                seen[i] = true;
                assert_eq!(Topology::channel_coords(&c, i), (v, d));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn cube_ports_are_dimensions() {
        let c = Cube::of(5);
        assert_eq!(c.ports_per_node(), 5);
        assert_eq!(Topology::dimensions(&c), 5);
        for d in c.dims() {
            assert_eq!(c.port_dim(d), d.0);
        }
        assert_eq!(
            Topology::neighbor(&c, NodeId(0b00101), Dim(3)),
            NodeId(0b01101)
        );
    }

    #[test]
    fn ecube_routes_match_paths() {
        let r = Ecube::new(Cube::of(4), Resolution::HighToLow);
        let chans = r.route_channels(NodeId(0b0101), NodeId(0b1110));
        let by_path: Vec<usize> = Path::new(Resolution::HighToLow, NodeId(0b0101), NodeId(0b1110))
            .arcs()
            .map(|a| Cube::of(4).channel_index(a.from, a.dim))
            .collect();
        assert_eq!(chans, by_path);
        assert_eq!(r.hops(NodeId(0b0101), NodeId(0b1110)), 3);
        assert!(r.route_channels(NodeId(7), NodeId(7)).is_empty());
    }

    #[test]
    fn ecube_routes_are_contiguous() {
        let r = Ecube::new(Cube::of(5), Resolution::LowToHigh);
        let mut hops = Vec::new();
        r.route_hops(NodeId(3), NodeId(28), &mut hops);
        let topo = r.topology();
        for w in hops.windows(2) {
            assert_eq!(Topology::neighbor(&topo, w[0].0, w[0].1), w[1].0);
        }
        assert_eq!(hops.first().unwrap().0, NodeId(3));
        let (last, lp) = *hops.last().unwrap();
        assert_eq!(Topology::neighbor(&topo, last, lp), NodeId(28));
    }

    #[test]
    fn labels_are_human_readable() {
        let c = Cube::of(4);
        let i = Topology::channel_index(&c, NodeId(0b0101), Dim(3));
        assert_eq!(Topology::channel_label(&c, i), "0101--3→");
    }
}
