//! The topology/router abstraction layer.
//!
//! The paper states its contention theory and tree algorithms for
//! hypercubes, but its framing — deterministic dimension-ordered
//! wormhole routing on all-port nodes — generalizes directly to other
//! direct networks. This module pins down the two contracts the
//! simulation stack builds on, so the discrete-event engine, tracing,
//! fault injection, and workload sweeps are written once and run on any
//! backend:
//!
//! * [`Topology`] — a static directed-**link** graph with **dense link
//!   indexing**: every node has a fixed number of outgoing link slots
//!   ("ports"), and `channel_index`/`channel_coords` form a bijection
//!   between `(node, port)` pairs and `0..channel_count()`. Ports are
//!   grouped into *coordinate dimensions* for per-dimension statistics.
//! * [`Router`] — a **deterministic route enumerator** on top of a
//!   topology: for any ordered node pair it produces the exact sequence
//!   of [`Hop`]s a worm's header nominally acquires. A router also fixes
//!   the *virtual-lane* configuration of the network: every physical
//!   link is multiplied into [`lanes`](Router::lanes) independent FIFO
//!   channels, densely indexed as `link · lanes + lane`. Determinism is
//!   what makes whole simulation runs reproducible byte-for-byte.
//!
//! [`Cube`] with E-cube routing ([`Ecube`]) is the first implementation;
//! [`crate::torus::Torus`] (k-ary n-cube whose dateline virtual channels
//! are simply `lanes = 2` of the general mechanism) and the 2D
//! [`crate::mesh::Mesh`] (XY and west-first minimal-adaptive routing)
//! prove generality. Channel-indexing invariants are spelled out in
//! DESIGN.md §9 and §14.

use crate::addr::{Dim, NodeId};
use crate::cube::Cube;
use crate::path::Path;
use crate::routing::Resolution;

/// One hop of a route: the link left from `from` on `port`, entered on
/// virtual lane `lane`.
///
/// The lane is the *nominal* lane: the lowest lane of the route's lane
/// class at this hop. An engine simulating the route may substitute any
/// free lane of the same class (see [`Router::lane_classes`]); a
/// deterministic single-lane-per-class configuration always uses the
/// nominal lane itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Hop {
    /// The node the hop leaves.
    pub from: NodeId,
    /// The port (physical link slot) the hop leaves on.
    pub port: Dim,
    /// The nominal virtual lane (`< Router::lanes()`), the lowest lane
    /// of the hop's lane class.
    pub lane: u8,
}

/// A static direct network: nodes plus densely indexed directed links.
///
/// # Contract
///
/// * Node addresses are dense: every `NodeId(v)` with
///   `v < node_count()` is a valid node, and no other address is.
/// * Every node has exactly [`ports_per_node`](Topology::ports_per_node)
///   outgoing link slots, identified by a *port index* carried in a
///   [`Dim`] (for the hypercube a port **is** a dimension; richer
///   topologies encode direction into the port index as well).
/// * [`channel_index`](Topology::channel_index) and
///   [`channel_coords`](Topology::channel_coords) are mutually inverse
///   bijections between `(node, port)` and `0..channel_count()`.
/// * [`port_dim`](Topology::port_dim) maps each port onto the coordinate
///   dimension it travels in (`0..dimensions()`), which is what
///   per-dimension utilization statistics aggregate over.
///
/// A topology describes **physical links only**. Virtual lanes are a
/// router property ([`Router::lanes`]); a network running `L` lanes has
/// `channel_count() · L` channel resources, indexed `link · L + lane`.
///
/// Implementations are small `Copy` values — they describe the network,
/// they do not hold per-run state.
pub trait Topology: Copy + core::fmt::Debug {
    /// Short backend name (`"cube"`, `"torus"`, `"mesh"`), used in
    /// reports.
    fn kind(&self) -> &'static str;

    /// Number of nodes; valid addresses are exactly `0..node_count()`.
    fn node_count(&self) -> usize;

    /// Number of coordinate dimensions (for per-dimension statistics).
    fn dimensions(&self) -> u8;

    /// Outgoing link slots per node (uniform across nodes).
    fn ports_per_node(&self) -> u8;

    /// Total number of directed link slots,
    /// `node_count() · ports_per_node()`.
    fn channel_count(&self) -> usize {
        self.node_count() * self.ports_per_node() as usize
    }

    /// Whether `v` is a valid node address.
    fn contains(&self, v: NodeId) -> bool {
        (v.0 as usize) < self.node_count()
    }

    /// Dense index of the link leaving `from` on `port`.
    fn channel_index(&self, from: NodeId, port: Dim) -> usize;

    /// Inverse of [`channel_index`](Topology::channel_index): the
    /// `(node, port)` pair of a dense link index.
    fn channel_coords(&self, ch: usize) -> (NodeId, Dim);

    /// The coordinate dimension a port travels in (`< dimensions()`).
    fn port_dim(&self, port: Dim) -> u8;

    /// The node the link leaving `from` on `port` arrives at.
    ///
    /// Topologies with boundary ports (the mesh) map a boundary port
    /// back to `from` itself; routers never route over such self-loops.
    fn neighbor(&self, from: NodeId, port: Dim) -> NodeId;

    /// Human-readable node label (the hypercube prints binary addresses).
    fn node_label(&self, v: NodeId) -> String {
        format!("{}", v.0)
    }

    /// Human-readable label of a dense link index, used by trace
    /// rendering when the network runs a single lane. The default shows
    /// `from --port→`.
    fn channel_label(&self, ch: usize) -> String {
        let (from, port) = self.channel_coords(ch);
        format!("{}--{}→", self.node_label(from), port.0)
    }

    /// Human-readable label of lane `lane` of link `ch`, used by trace
    /// rendering when the network runs multiple lanes per link. The
    /// default appends `v{lane}` to the port notation; backends with
    /// richer port notation (the torus) override it to keep their
    /// established lane naming.
    fn lane_label(&self, ch: usize, lane: u8) -> String {
        let (from, port) = self.channel_coords(ch);
        format!("{}--{}v{}→", self.node_label(from), port.0, lane)
    }

    /// Human-readable label of a coordinate dimension
    /// (`0..dimensions()`), used by per-dimension reports — contention
    /// heatmaps, metrics exports, Perfetto track names.
    fn dim_label(&self, d: u8) -> String {
        format!("dim{d}")
    }
}

/// A deterministic router over a [`Topology`], fixing the network's
/// virtual-lane configuration.
///
/// # Contract
///
/// * Routes are **path-deterministic**: the same `(src, dst)` pair
///   always yields the same hop sequence (no randomness; adaptivity, if
///   any, lives in the *lane* choice at simulation time, never in the
///   path).
/// * A route's hops are contiguous: hop `i` ends where hop `i + 1`
///   starts, the first hop leaves `src`, the last arrives at `dst`.
/// * `route_channels(v, v)` is empty.
/// * [`lanes`](Router::lanes) is `≥ 1` and a multiple of
///   [`lane_classes`](Router::lane_classes). Lanes are partitioned into
///   `lane_classes()` contiguous equal blocks of
///   `lanes() / lane_classes()` lanes each; every [`Hop::lane`] a route
///   emits is the **lowest lane of its block** (the nominal lane). An
///   engine may let a worm acquire any free lane of the nominal lane's
///   block — lanes within a class are interchangeable — without
///   affecting deadlock freedom (DESIGN.md §14).
///
/// Deadlock-freedom is a *router* property, not an engine property: the
/// engine simulates whatever channel-dependency structure the router
/// creates and reports wedges through its watchdog. E-cube on the
/// hypercube, dateline-class dimension-ordered routing on the torus, and
/// west-first minimal-adaptive routing on the mesh are all deadlock-free
/// by the classic channel-ordering / turn-model arguments.
///
/// Routers are [`Hash`](std::hash::Hash) so callers can fingerprint a
/// router value (e.g. the simulator's route memo invalidates itself
/// when the router it cached routes for changes). Because routes are
/// path-deterministic, equal-hashing router values of the same type
/// produce identical routes for every `(src, dst)` pair.
pub trait Router: std::hash::Hash {
    /// The topology this router routes on.
    type Topo: Topology;

    /// The underlying topology descriptor.
    fn topology(&self) -> Self::Topo;

    /// Virtual lanes per physical link (`≥ 1`). The network's dense
    /// channel index space is `0..topology().channel_count() · lanes()`,
    /// with lane `l` of link `ch` at index `ch · lanes() + l`.
    fn lanes(&self) -> u8 {
        1
    }

    /// Number of lane classes (`≥ 1`, divides [`lanes`](Router::lanes)).
    /// Lanes are partitioned into this many contiguous equal blocks;
    /// routes nominate the lowest lane of a block and the engine may
    /// substitute any free lane of the same block.
    fn lane_classes(&self) -> u8 {
        1
    }

    /// Appends the [`Hop`]s of the route `src → dst`, in traversal
    /// order.
    fn route_hops(&self, src: NodeId, dst: NodeId, out: &mut Vec<Hop>);

    /// Appends the route `src → dst` as dense `(link, lane)` channel
    /// indices (`link · lanes() + lane`), in traversal order, reusing
    /// the caller's buffer — the allocation-free variant of
    /// [`route_channels`](Router::route_channels) for hot paths that
    /// hold scratch buffers.
    fn route_channels_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<usize>) {
        let mut hops = Vec::new();
        self.route_hops(src, dst, &mut hops);
        let topo = self.topology();
        let lanes = self.lanes() as usize;
        out.extend(
            hops.iter()
                .map(|h| topo.channel_index(h.from, h.port) * lanes + h.lane as usize),
        );
    }

    /// The route as dense `(link, lane)` channel indices, in traversal
    /// order.
    fn route_channels(&self, src: NodeId, dst: NodeId) -> Vec<usize> {
        let mut out = Vec::new();
        self.route_channels_into(src, dst, &mut out);
        out
    }

    /// Number of hops of the route `src → dst`.
    fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        let mut hops = Vec::new();
        self.route_hops(src, dst, &mut hops);
        hops.len() as u32
    }
}

// ---------------------------------------------------------------------
// Hypercube: Cube is a Topology, Ecube is its deterministic router.
// ---------------------------------------------------------------------

impl Topology for Cube {
    fn kind(&self) -> &'static str {
        "cube"
    }

    fn node_count(&self) -> usize {
        Cube::node_count(*self)
    }

    fn dimensions(&self) -> u8 {
        self.dimension()
    }

    fn ports_per_node(&self) -> u8 {
        self.dimension()
    }

    fn channel_count(&self) -> usize {
        Cube::channel_count(*self)
    }

    fn contains(&self, v: NodeId) -> bool {
        Cube::contains(*self, v)
    }

    fn channel_index(&self, from: NodeId, port: Dim) -> usize {
        Cube::channel_index(*self, from, port)
    }

    fn channel_coords(&self, ch: usize) -> (NodeId, Dim) {
        let n = self.dimension() as usize;
        (NodeId((ch / n) as u32), Dim((ch % n) as u8))
    }

    fn port_dim(&self, port: Dim) -> u8 {
        port.0
    }

    fn neighbor(&self, from: NodeId, port: Dim) -> NodeId {
        from.flip(port)
    }

    fn node_label(&self, v: NodeId) -> String {
        v.binary(self.dimension())
    }
}

/// The deterministic E-cube (dimension-ordered) router of the hypercube,
/// under a fixed address-resolution order.
///
/// This is the `Cube + Resolution` pair the whole legacy API passed
/// around, packaged as a [`Router`] so generic code can hold one value.
/// [`Ecube::with_lanes`] multiplies every link into `L` interchangeable
/// virtual lanes (a single lane class — E-cube needs no class
/// separation for deadlock freedom); [`Ecube::new`] is the classic
/// single-lane router.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ecube {
    /// The hypercube routed on.
    pub cube: Cube,
    /// The router's address-resolution order.
    pub resolution: Resolution,
    lanes: u8,
}

impl Ecube {
    /// An E-cube router on `cube` resolving addresses in `resolution`
    /// order, with a single lane per link.
    #[must_use]
    pub fn new(cube: Cube, resolution: Resolution) -> Ecube {
        Ecube::with_lanes(cube, resolution, 1)
    }

    /// An E-cube router with `lanes` interchangeable virtual lanes per
    /// link (one lane class).
    ///
    /// # Panics
    /// If `lanes == 0`.
    #[must_use]
    pub fn with_lanes(cube: Cube, resolution: Resolution, lanes: u8) -> Ecube {
        assert!(lanes >= 1, "a router needs at least one lane");
        Ecube {
            cube,
            resolution,
            lanes,
        }
    }
}

impl Router for Ecube {
    type Topo = Cube;

    fn topology(&self) -> Cube {
        self.cube
    }

    fn lanes(&self) -> u8 {
        self.lanes
    }

    fn route_hops(&self, src: NodeId, dst: NodeId, out: &mut Vec<Hop>) {
        for arc in Path::new(self.resolution, src, dst).arcs() {
            out.push(Hop {
                from: arc.from,
                port: arc.dim,
                lane: 0,
            });
        }
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        src.distance(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_channel_indexing_is_a_bijection() {
        let c = Cube::of(4);
        let mut seen = vec![false; Topology::channel_count(&c)];
        for v in c.nodes() {
            for d in c.dims() {
                let i = Topology::channel_index(&c, v, d);
                assert!(!seen[i]);
                seen[i] = true;
                assert_eq!(Topology::channel_coords(&c, i), (v, d));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn cube_ports_are_dimensions() {
        let c = Cube::of(5);
        assert_eq!(c.ports_per_node(), 5);
        assert_eq!(Topology::dimensions(&c), 5);
        for d in c.dims() {
            assert_eq!(c.port_dim(d), d.0);
        }
        assert_eq!(
            Topology::neighbor(&c, NodeId(0b00101), Dim(3)),
            NodeId(0b01101)
        );
    }

    #[test]
    fn ecube_routes_match_paths() {
        let r = Ecube::new(Cube::of(4), Resolution::HighToLow);
        let chans = r.route_channels(NodeId(0b0101), NodeId(0b1110));
        let by_path: Vec<usize> = Path::new(Resolution::HighToLow, NodeId(0b0101), NodeId(0b1110))
            .arcs()
            .map(|a| Cube::of(4).channel_index(a.from, a.dim))
            .collect();
        assert_eq!(chans, by_path);
        assert_eq!(r.hops(NodeId(0b0101), NodeId(0b1110)), 3);
        assert!(r.route_channels(NodeId(7), NodeId(7)).is_empty());
    }

    #[test]
    fn ecube_routes_are_contiguous() {
        let r = Ecube::new(Cube::of(5), Resolution::LowToHigh);
        let mut hops = Vec::new();
        r.route_hops(NodeId(3), NodeId(28), &mut hops);
        let topo = r.topology();
        for w in hops.windows(2) {
            assert_eq!(Topology::neighbor(&topo, w[0].from, w[0].port), w[1].from);
        }
        assert_eq!(hops.first().unwrap().from, NodeId(3));
        let last = *hops.last().unwrap();
        assert_eq!(Topology::neighbor(&topo, last.from, last.port), NodeId(28));
    }

    #[test]
    fn single_lane_channels_equal_link_indices() {
        // At lanes = 1 the (link, lane) channel index IS the link index:
        // the whole lane layer degenerates to the original encoding.
        let r = Ecube::new(Cube::of(4), Resolution::HighToLow);
        assert_eq!(r.lanes(), 1);
        assert_eq!(r.lane_classes(), 1);
        let r1 = Ecube::with_lanes(Cube::of(4), Resolution::HighToLow, 1);
        assert_eq!(r, r1);
        let chans = r.route_channels(NodeId(0b0101), NodeId(0b1110));
        let c = Cube::of(4);
        let mut hops = Vec::new();
        r.route_hops(NodeId(0b0101), NodeId(0b1110), &mut hops);
        let links: Vec<usize> = hops
            .iter()
            .map(|h| Topology::channel_index(&c, h.from, h.port))
            .collect();
        assert_eq!(chans, links);
    }

    #[test]
    fn multi_lane_channels_scale_by_lane_count() {
        let r = Ecube::with_lanes(Cube::of(4), Resolution::HighToLow, 3);
        assert_eq!(r.lanes(), 3);
        let r1 = Ecube::new(Cube::of(4), Resolution::HighToLow);
        let lanes1 = r1.route_channels(NodeId(0b0101), NodeId(0b1110));
        // Nominal lane is 0, so multi-lane channels are link · 3.
        let lanes3 = r.route_channels(NodeId(0b0101), NodeId(0b1110));
        let expect: Vec<usize> = lanes1.iter().map(|&ch| ch * 3).collect();
        assert_eq!(lanes3, expect);
    }

    #[test]
    fn route_channels_into_reuses_the_buffer() {
        let r = Ecube::new(Cube::of(4), Resolution::HighToLow);
        let mut buf = Vec::with_capacity(8);
        r.route_channels_into(NodeId(0b0101), NodeId(0b1110), &mut buf);
        assert_eq!(buf, r.route_channels(NodeId(0b0101), NodeId(0b1110)));
        let cap = buf.capacity();
        buf.clear();
        r.route_channels_into(NodeId(0), NodeId(0b1111), &mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.capacity(), cap, "no reallocation for short routes");
    }

    #[test]
    fn labels_are_human_readable() {
        let c = Cube::of(4);
        let i = Topology::channel_index(&c, NodeId(0b0101), Dim(3));
        assert_eq!(Topology::channel_label(&c, i), "0101--3→");
        assert_eq!(Topology::lane_label(&c, i, 2), "0101--3v2→");
    }
}
