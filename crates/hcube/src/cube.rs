//! The hypercube topology descriptor.

use crate::addr::{Dim, NodeId};
use crate::error::HcubeError;

/// An `n`-dimensional hypercube with `N = 2^n` nodes.
///
/// Each node has `n` pairs of external channels; channel `d` of node `x`
/// connects to node `x ⊕ 2^d`. A channel `(u, v)` exists iff
/// `‖u ⊕ v‖ = 1`.
///
/// `Cube` is a lightweight value (one byte of state) passed by copy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Cube {
    n: u8,
}

/// The largest supported cube dimension.
///
/// `2^24` nodes is far beyond anything this crate's simulators iterate
/// over, while keeping every address comfortably inside a `u32` and every
/// directed-channel index inside a `usize`.
pub const MAX_DIMENSION: u8 = 24;

impl Cube {
    /// Creates an `n`-cube.
    ///
    /// # Errors
    /// Returns [`HcubeError::BadDimension`] unless `1 <= n <= MAX_DIMENSION`.
    pub fn new(n: u8) -> Result<Cube, HcubeError> {
        if n == 0 || n > MAX_DIMENSION {
            Err(HcubeError::BadDimension { n })
        } else {
            Ok(Cube { n })
        }
    }

    /// Creates an `n`-cube, panicking on an invalid dimension.
    ///
    /// Convenient in tests and examples where `n` is a literal.
    ///
    /// # Panics
    /// If `n` is outside `1..=MAX_DIMENSION`.
    #[must_use]
    pub fn of(n: u8) -> Cube {
        Cube::new(n).expect("valid cube dimension")
    }

    /// The dimensionality `n`.
    #[inline]
    #[must_use]
    pub fn dimension(self) -> u8 {
        self.n
    }

    /// The number of nodes, `N = 2^n`.
    #[inline]
    #[must_use]
    pub fn node_count(self) -> usize {
        1usize << self.n
    }

    /// The number of *directed* external channels, `n · 2^n`.
    #[inline]
    #[must_use]
    pub fn channel_count(self) -> usize {
        (self.n as usize) << self.n
    }

    /// Whether `v` is a valid address in this cube.
    #[inline]
    #[must_use]
    pub fn contains(self, v: NodeId) -> bool {
        (v.0 as u64) < (1u64 << self.n)
    }

    /// Validates an address, for API boundaries that accept caller input.
    ///
    /// # Errors
    /// Returns [`HcubeError::NodeOutOfRange`] if `v` is not in this cube.
    pub fn check_node(self, v: NodeId) -> Result<(), HcubeError> {
        if self.contains(v) {
            Ok(())
        } else {
            Err(HcubeError::NodeOutOfRange { node: v, n: self.n })
        }
    }

    /// Iterates over all node addresses `0..2^n`.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterates over all dimensions `0..n`.
    pub fn dims(self) -> impl Iterator<Item = Dim> {
        (0..self.n).map(Dim)
    }

    /// The `n` neighbors of node `v`.
    pub fn neighbors(self, v: NodeId) -> impl Iterator<Item = NodeId> {
        self.dims().map(move |d| v.flip(d))
    }

    /// A dense index for the directed channel leaving `from` in dimension
    /// `d`, in `0..channel_count()`. Used by simulators for flat-array
    /// channel state.
    #[inline]
    #[must_use]
    pub fn channel_index(self, from: NodeId, d: Dim) -> usize {
        debug_assert!(self.contains(from));
        debug_assert!(d.0 < self.n);
        (from.0 as usize) * self.n as usize + d.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_dimension() {
        assert!(Cube::new(0).is_err());
        assert!(Cube::new(1).is_ok());
        assert!(Cube::new(MAX_DIMENSION).is_ok());
        assert!(Cube::new(MAX_DIMENSION + 1).is_err());
    }

    #[test]
    fn counts_match_definitions() {
        let c = Cube::of(4);
        assert_eq!(c.node_count(), 16);
        assert_eq!(c.channel_count(), 64);
        assert_eq!(c.nodes().count(), 16);
        assert_eq!(c.dims().count(), 4);
    }

    #[test]
    fn neighbors_differ_in_exactly_one_bit() {
        let c = Cube::of(5);
        for v in c.nodes() {
            let nbrs: Vec<_> = c.neighbors(v).collect();
            assert_eq!(nbrs.len(), 5);
            for w in nbrs {
                assert_eq!(v.distance(w), 1, "channel (u,v) exists iff ‖u⊕v‖=1");
                assert!(c.contains(w));
            }
        }
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let c = Cube::of(3);
        assert!(c.contains(NodeId(7)));
        assert!(!c.contains(NodeId(8)));
        assert!(c.check_node(NodeId(8)).is_err());
    }

    #[test]
    fn channel_indices_are_dense_and_unique() {
        let c = Cube::of(3);
        let mut seen = vec![false; c.channel_count()];
        for v in c.nodes() {
            for d in c.dims() {
                let i = c.channel_index(v, d);
                assert!(i < c.channel_count());
                assert!(!seen[i], "duplicate channel index");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
