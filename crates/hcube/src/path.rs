//! E-cube paths `P(u, v)` and the directed channels (arcs) they occupy.

use crate::addr::{Dim, NodeId};
use crate::routing::{Resolution, RouteDims};

/// A directed external channel of the hypercube: the arc that leaves
/// `from` in dimension `dim`, arriving at `from ⊕ 2^dim`.
///
/// Two unicasts *contend* only if they occupy a common `Channel` at the
/// same time; paths with no common channel are *arc-disjoint*.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Channel {
    /// The node the arc leaves.
    pub from: NodeId,
    /// The dimension the arc travels.
    pub dim: Dim,
}

impl Channel {
    /// The node the arc enters: `from ⊕ 2^dim`.
    #[inline]
    #[must_use]
    pub fn to(self) -> NodeId {
        self.from.flip(self.dim)
    }
}

/// The E-cube path `P(u, v)` under a given resolution order.
///
/// The path is stored implicitly as its endpoints; node and arc sequences
/// are produced on demand without allocation. `P(u, v)` visits
/// `‖u ⊕ v‖ + 1` nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Path {
    /// Source node `u`.
    pub src: NodeId,
    /// Destination node `v`.
    pub dst: NodeId,
    /// The router's address-resolution order.
    pub resolution: Resolution,
}

impl Path {
    /// The E-cube path from `src` to `dst`.
    #[inline]
    #[must_use]
    pub fn new(resolution: Resolution, src: NodeId, dst: NodeId) -> Path {
        Path {
            src,
            dst,
            resolution,
        }
    }

    /// The number of hops, `‖u ⊕ v‖`.
    #[inline]
    #[must_use]
    pub fn hops(self) -> u32 {
        self.src.distance(self.dst)
    }

    /// Whether the path is empty (`u = v`).
    #[inline]
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.src == self.dst
    }

    /// The first dimension traveled, `δ(u, v)`; `None` for an empty path.
    #[inline]
    #[must_use]
    pub fn first_dim(self) -> Option<Dim> {
        self.resolution.delta(self.src, self.dst)
    }

    /// Iterates the arcs (directed channels) of the path in traversal
    /// order.
    #[inline]
    #[must_use]
    pub fn arcs(self) -> PathArcs {
        PathArcs {
            at: self.src,
            dims: self.resolution.route_dims(self.src, self.dst),
        }
    }

    /// Iterates the nodes visited, `(u; w₁; …; w_p; v)`, including both
    /// endpoints.
    #[inline]
    #[must_use]
    pub fn nodes(self) -> PathNodes {
        PathNodes {
            at: Some(self.src),
            dims: self.resolution.route_dims(self.src, self.dst),
        }
    }

    /// Collects the arc set of the path; convenient for the brute-force
    /// disjointness oracles used in tests.
    #[must_use]
    pub fn arc_vec(self) -> Vec<Channel> {
        self.arcs().collect()
    }

    /// Whether the path traverses the given directed channel.
    #[must_use]
    pub fn uses(self, channel: Channel) -> bool {
        self.arcs().any(|a| a == channel)
    }
}

/// Iterator over a path's arcs. See [`Path::arcs`].
#[derive(Clone, Debug)]
pub struct PathArcs {
    at: NodeId,
    dims: RouteDims,
}

impl Iterator for PathArcs {
    type Item = Channel;

    #[inline]
    fn next(&mut self) -> Option<Channel> {
        let dim = self.dims.next()?;
        let arc = Channel { from: self.at, dim };
        self.at = arc.to();
        Some(arc)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.dims.size_hint()
    }
}

impl ExactSizeIterator for PathArcs {}

/// Iterator over a path's nodes. See [`Path::nodes`].
#[derive(Clone, Debug)]
pub struct PathNodes {
    at: Option<NodeId>,
    dims: RouteDims,
}

impl Iterator for PathNodes {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        let here = self.at?;
        self.at = self.dims.next().map(|d| here.flip(d));
        Some(here)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.dims.size_hint();
        let extra = usize::from(self.at.is_some());
        (lo + extra, hi.map(|h| h + extra))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: u32, dst: u32) -> Path {
        Path::new(Resolution::HighToLow, NodeId(src), NodeId(dst))
    }

    #[test]
    fn paper_example_node_sequence() {
        // P(0101, 1110) = (0101; 1101; 1111; 1110)
        let nodes: Vec<u32> = p(0b0101, 0b1110).nodes().map(|v| v.0).collect();
        assert_eq!(nodes, vec![0b0101, 0b1101, 0b1111, 0b1110]);
    }

    #[test]
    fn empty_path_has_one_node_and_no_arcs() {
        let path = p(6, 6);
        assert!(path.is_empty());
        assert_eq!(path.hops(), 0);
        assert_eq!(path.nodes().count(), 1);
        assert_eq!(path.arcs().count(), 0);
        assert_eq!(path.first_dim(), None);
    }

    #[test]
    fn arcs_link_consecutive_nodes() {
        for src in 0..16u32 {
            for dst in 0..16u32 {
                for res in [Resolution::HighToLow, Resolution::LowToHigh] {
                    let path = Path::new(res, NodeId(src), NodeId(dst));
                    let nodes: Vec<NodeId> = path.nodes().collect();
                    let arcs: Vec<Channel> = path.arcs().collect();
                    assert_eq!(nodes.len(), arcs.len() + 1);
                    assert_eq!(nodes[0], path.src);
                    assert_eq!(*nodes.last().unwrap(), path.dst);
                    for (i, a) in arcs.iter().enumerate() {
                        assert_eq!(a.from, nodes[i]);
                        assert_eq!(a.to(), nodes[i + 1]);
                    }
                    // p + 1 = ‖u ⊕ v‖ (node count minus one equals distance)
                    assert_eq!(arcs.len() as u32, NodeId(src).distance(NodeId(dst)));
                }
            }
        }
    }

    #[test]
    fn first_dim_matches_first_arc() {
        let path = p(0b0000, 0b0110);
        assert_eq!(path.first_dim(), Some(Dim(2)));
        assert_eq!(path.arcs().next().unwrap().dim, Dim(2));
    }

    #[test]
    fn uses_detects_membership() {
        let path = p(0b0101, 0b1110);
        assert!(path.uses(Channel {
            from: NodeId(0b0101),
            dim: Dim(3)
        }));
        assert!(path.uses(Channel {
            from: NodeId(0b1111),
            dim: Dim(0)
        }));
        assert!(!path.uses(Channel {
            from: NodeId(0b0101),
            dim: Dim(0)
        }));
        // Reverse direction of a used link is a *different* channel.
        assert!(!path.uses(Channel {
            from: NodeId(0b1101),
            dim: Dim(3)
        }));
    }
}
