//! Dimension-ordered and cube-ordered chains (Section 4 of the paper).
//!
//! All chain functions operate in *canonical* address space, i.e. the
//! space in which the router resolves addresses high-to-low (see
//! [`Resolution::canon`]). In that space:
//!
//! * the dimension-order relation `<_d` is ordinary numeric order, so a
//!   *dimension-ordered chain* is a strictly ascending address list;
//! * a *`d₀`-relative dimension-ordered chain* is obtained by XOR-ing each
//!   address with `d₀` and sorting;
//! * a *cube-ordered chain* (Definition 5) is one whose members of any
//!   subcube are contiguous. Every dimension-ordered chain is cube-ordered
//!   (Theorem 4), but not vice versa — `weighted_sort` exploits exactly
//!   that freedom.

use crate::addr::NodeId;
use crate::error::HcubeError;
use crate::routing::Resolution;
use crate::subcube::Subcube;

/// The dimension-order relation `a <_d b` for a router with the given
/// resolution order (strict version; equal addresses are not related).
///
/// With high-to-low resolution this is numeric `<`; with low-to-high it is
/// numeric `<` of the bit-reversed addresses, matching the paper's two
/// worked orderings of `{10100, 00110, 10010}`.
#[inline]
#[must_use]
pub fn dim_lt(res: Resolution, n: u8, a: NodeId, b: NodeId) -> bool {
    res.canon(a, n).0 < res.canon(b, n).0
}

/// Whether a canonical-space chain is dimension-ordered (strictly
/// ascending, hence duplicate-free).
#[must_use]
pub fn is_dimension_ordered(chain: &[NodeId]) -> bool {
    chain.windows(2).all(|w| w[0].0 < w[1].0)
}

/// Builds the source-relative dimension-ordered chain `Φ` used by every
/// algorithm in the paper: each destination is canonicalized, XOR-ed with
/// the canonical source, and sorted ascending; the source contributes the
/// leading `0`.
///
/// The returned chain lives in canonical *relative* space: element 0 is
/// always `0` (the source), and a node's physical address is recovered as
/// `res.canon(rel ⊕ canon(source))`… i.e. by [`from_relative`].
///
/// # Errors
/// * [`HcubeError::DuplicateAddress`] if a destination repeats or equals
///   the source.
///
/// ```
/// use hcube::{NodeId, Resolution};
/// use hcube::chain::relative_chain;
///
/// // The paper's Figure 5: source 0100 in a 4-cube.
/// let dests: Vec<NodeId> =
///     [0b0001u32, 0b0011, 0b0101, 0b0111, 0b1000, 0b1010, 0b1011, 0b1111]
///         .into_iter().map(NodeId).collect();
/// let chain = relative_chain(Resolution::HighToLow, 4, NodeId(0b0100), &dests)?;
/// let phi: Vec<u32> = chain.iter().map(|v| v.0).collect();
/// assert_eq!(phi, [0b0000, 0b0001, 0b0011, 0b0101, 0b0111,
///                  0b1011, 0b1100, 0b1110, 0b1111]);
/// # Ok::<(), hcube::HcubeError>(())
/// ```
pub fn relative_chain(
    res: Resolution,
    n: u8,
    source: NodeId,
    dests: &[NodeId],
) -> Result<Vec<NodeId>, HcubeError> {
    let src_c = res.canon(source, n);
    let mut chain = Vec::with_capacity(dests.len() + 1);
    chain.push(NodeId(0));
    for &d in dests {
        chain.push(NodeId(res.canon(d, n).xor(src_c)));
    }
    chain[1..].sort_unstable();
    for w in chain.windows(2) {
        if w[0] == w[1] {
            // Report the duplicate in physical space for the caller.
            return Err(HcubeError::DuplicateAddress {
                node: from_relative(res, n, source, w[1]),
            });
        }
    }
    Ok(chain)
}

/// Maps a canonical-relative chain element back to its physical node
/// address. Inverse of the transform in [`relative_chain`].
#[inline]
#[must_use]
pub fn from_relative(res: Resolution, n: u8, source: NodeId, rel: NodeId) -> NodeId {
    let src_c = res.canon(source, n);
    res.canon(NodeId(rel.xor(src_c)), n)
}

/// Brute-force cube-ordering oracle (Definition 5, literal): for every
/// triple `i ≤ j ≤ k`, if `d_i` and `d_k` lie in a common subcube then so
/// does `d_j`. O(m³) — intended for tests and small inputs.
///
/// Returns `Ok(())` or the index of a witness violating contiguity.
pub fn check_cube_ordered_naive(chain: &[NodeId]) -> Result<(), usize> {
    for i in 0..chain.len() {
        for k in (i + 2)..chain.len() {
            let s = Subcube::enclosing_pair(chain[i], chain[k]);
            // Subcubes containing a fixed node are nested, so it suffices
            // to test the smallest subcube containing d_i and d_k.
            for (j, &dj) in chain.iter().enumerate().take(k).skip(i + 1) {
                if !s.contains(dj) {
                    return Err(j);
                }
            }
        }
    }
    Ok(())
}

/// Efficient cube-ordering check: recursively verifies that within every
/// subcube level the chain's members of each half form one contiguous
/// block. O(m · n).
///
/// Returns `Ok(())` or the index of the first element that breaks
/// contiguity.
pub fn check_cube_ordered(chain: &[NodeId], n: u8) -> Result<(), usize> {
    if chain.len() <= 2 {
        // Any chain of ≤ 2 distinct addresses is trivially cube-ordered.
        return check_duplicates(chain);
    }
    check_duplicates(chain)?;
    check_rec(chain, 0, Subcube::whole(n))
}

fn check_duplicates(chain: &[NodeId]) -> Result<(), usize> {
    // Cube-ordered chains must have distinct elements (they are address
    // sequences); duplicates would also break the recursion below.
    let mut sorted: Vec<NodeId> = chain.to_vec();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        // Identify one duplicate index for the error.
        for (i, &v) in chain.iter().enumerate() {
            if chain[..i].contains(&v) {
                return Err(i);
            }
        }
    }
    Ok(())
}

fn check_rec(chain: &[NodeId], base: usize, s: Subcube) -> Result<(), usize> {
    if chain.len() <= 1 || s.dim == 0 {
        return Ok(());
    }
    // Split the segment into maximal runs by half membership; more than
    // one run per half means some subcube's members are not contiguous.
    let mut switches = 0usize;
    let mut split = chain.len();
    for i in 1..chain.len() {
        if s.high_half(chain[i]) != s.high_half(chain[i - 1]) {
            switches += 1;
            if switches == 1 {
                split = i;
            } else {
                return Err(base + i);
            }
        }
    }
    let (first, second) = chain.split_at(split);
    let (lo, hi) = s.halves();
    let first_cube = if s.high_half(first[0]) { hi } else { lo };
    check_rec(first, base, first_cube)?;
    if !second.is_empty() {
        let second_cube = if s.high_half(second[0]) { hi } else { lo };
        check_rec(second, base + split, second_cube)?;
    }
    Ok(())
}

/// `cube_center` from Figure 7: given a cube-ordered segment whose
/// elements all lie in one subcube of dimensionality `n_s`, returns the
/// index (relative to the segment) of the first element in the half *not*
/// containing the segment's first element — or `segment.len()` if the
/// entire segment lies in one half.
///
/// # Panics
/// If the segment is empty or `n_s == 0` with more than one element.
#[must_use]
pub fn cube_center(segment: &[NodeId], n_s: u8) -> usize {
    assert!(
        !segment.is_empty(),
        "cube_center requires a non-empty segment"
    );
    if segment.len() == 1 {
        return 1;
    }
    assert!(
        n_s >= 1,
        "multiple nodes cannot share a 0-dimensional subcube"
    );
    let enclosing = Subcube::new(n_s, segment[0].0 >> n_s);
    let h0 = enclosing.high_half(segment[0]);
    segment
        .iter()
        .position(|&v| enclosing.high_half(v) != h0)
        .unwrap_or(segment.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn paper_dimension_order_examples() {
        // High-to-low resolution: 00110 <_d 10010 <_d 10100.
        let r = Resolution::HighToLow;
        assert!(dim_lt(r, 5, NodeId(0b00110), NodeId(0b10010)));
        assert!(dim_lt(r, 5, NodeId(0b10010), NodeId(0b10100)));
        // Low-to-high resolution: 10100 <_d 10010 <_d 00110.
        let r = Resolution::LowToHigh;
        assert!(dim_lt(r, 5, NodeId(0b10100), NodeId(0b10010)));
        assert!(dim_lt(r, 5, NodeId(0b10010), NodeId(0b00110)));
    }

    #[test]
    fn relative_chain_of_figure_5() {
        // Source 0100, destinations of Figure 5; expected Φ from the paper.
        let dests = ids(&[
            0b0001, 0b0011, 0b0101, 0b0111, 0b1000, 0b1010, 0b1011, 0b1111,
        ]);
        let chain = relative_chain(Resolution::HighToLow, 4, NodeId(0b0100), &dests).unwrap();
        assert_eq!(
            chain,
            ids(&[0b0000, 0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111])
        );
        // Physical addresses round-trip through from_relative.
        for &rel in &chain[1..] {
            let phys = from_relative(Resolution::HighToLow, 4, NodeId(0b0100), rel);
            assert!(dests.contains(&phys));
        }
        assert_eq!(
            from_relative(Resolution::HighToLow, 4, NodeId(0b0100), NodeId(0)),
            NodeId(0b0100)
        );
    }

    #[test]
    fn relative_chain_rejects_duplicates_and_source() {
        let r = Resolution::HighToLow;
        assert_eq!(
            relative_chain(r, 4, NodeId(2), &ids(&[5, 5])),
            Err(HcubeError::DuplicateAddress { node: NodeId(5) })
        );
        assert_eq!(
            relative_chain(r, 4, NodeId(2), &ids(&[2])),
            Err(HcubeError::DuplicateAddress { node: NodeId(2) })
        );
    }

    #[test]
    fn dimension_ordered_is_cube_ordered() {
        // Theorem 4 on an explicit instance (the Figure 8 chain).
        let d = ids(&[0, 1, 3, 5, 7, 11, 12, 14, 15]);
        assert!(is_dimension_ordered(&d));
        assert_eq!(check_cube_ordered(&d, 4), Ok(()));
        assert_eq!(check_cube_ordered_naive(&d), Ok(()));
    }

    #[test]
    fn weighted_figure_8_chain_is_cube_ordered_but_not_dimension_ordered() {
        let d = ids(&[0, 1, 3, 5, 7, 14, 15, 12, 11]);
        assert!(!is_dimension_ordered(&d));
        assert_eq!(check_cube_ordered(&d, 4), Ok(()));
        assert_eq!(check_cube_ordered_naive(&d), Ok(()));
    }

    #[test]
    fn non_cube_ordered_chain_is_rejected() {
        // 0 and 3 share subcube {0..3} but 8 interrupts them.
        let d = ids(&[0, 8, 3]);
        assert!(check_cube_ordered(&d, 4).is_err());
        assert!(check_cube_ordered_naive(&d).is_err());
    }

    #[test]
    fn fast_and_naive_checks_agree_on_small_chains() {
        // Exhaustive over all permutations of a 5-element set in a 3-cube.
        let base = [0u32, 1, 3, 6, 7];
        let mut perm = base;
        // Heap's algorithm, iterative.
        let mut c = [0usize; 5];
        let check = |p: &[u32; 5]| {
            let chain = ids(p);
            assert_eq!(
                check_cube_ordered(&chain, 3).is_ok(),
                check_cube_ordered_naive(&chain).is_ok(),
                "disagree on {p:?}"
            );
        };
        check(&perm);
        let mut i = 0;
        while i < 5 {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                check(&perm);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn duplicates_fail_cube_ordering() {
        let d = ids(&[0, 5, 5]);
        assert!(check_cube_ordered(&d, 3).is_err());
    }

    #[test]
    fn cube_center_matches_figure_7_description() {
        // Segment {11, 12, 14, 15} within subcube (3, 1): halves are
        // {8..11} and {12..15}; first element 11 is in the low half, so the
        // center is the index of 12.
        let seg = ids(&[11, 12, 14, 15]);
        assert_eq!(cube_center(&seg, 3), 1);
        // All in one half ⇒ segment length ("last + 1").
        let seg = ids(&[12, 14, 15]);
        assert_eq!(cube_center(&seg, 3), 3);
        // Singleton.
        assert_eq!(cube_center(&ids(&[9]), 3), 1);
    }

    #[test]
    fn cube_center_of_whole_chain() {
        let d = ids(&[0, 1, 3, 5, 7, 11, 12, 14, 15]);
        // Halves of the 4-cube: {0..7} (5 elements) then {8..15}.
        assert_eq!(cube_center(&d, 4), 5);
    }
}
