//! The k-ary n-cube (torus) backend: the proof that the simulation
//! stack is topology-generic.
//!
//! A [`Torus`] has `k^n` nodes addressed by `n` base-`k` coordinates
//! (little-endian mixed radix inside the `u32` of a [`NodeId`]); each
//! node connects to its `±1 (mod k)` neighbor in every dimension. The
//! hypercube is the degenerate `k = 2` case, but with wraparound rings
//! the interesting machinery appears: minimal routes must pick a
//! direction per dimension, and dimension-ordered wormhole routing alone
//! is **not** deadlock-free (a ring's wrap channel closes a cyclic
//! channel dependency).
//!
//! [`TorusRouter`] therefore implements the classic *dateline virtual
//! channel* scheme (Dally & Seitz): every physical channel is split into
//! two virtual channels, a worm starts each dimension on VC0 and
//! switches to VC1 after traversing the ring's wrap edge. Ranking
//! channels by `(dimension, direction, vc, ring position)` is then
//! strictly increasing along any route, so the channel-dependency graph
//! is acyclic and the network cannot deadlock — the property the torus
//! property tests drive the engine's watchdog against.
//!
//! In the [`Topology`] port encoding each node has `4n` ports:
//! `port = 4·dim + 2·direction + vc` with direction `0 = +`, `1 = −`.
//! Virtual channels are modeled as independent channel resources (each
//! with full link bandwidth); contention on the shared physical link is
//! deliberately not modeled — see DESIGN.md §9.

use crate::addr::{Dim, NodeId};
use crate::error::HcubeError;
use crate::topology::{Router, Topology};

/// A k-ary n-cube: `n` dimensions of `k`-node rings.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Torus {
    k: u16,
    n: u8,
}

/// Largest supported node count, matching [`crate::MAX_DIMENSION`]'s
/// `2^24` cap on the hypercube side.
pub const MAX_TORUS_NODES: usize = 1 << 24;

impl Torus {
    /// Creates a `k`-ary `n`-cube.
    ///
    /// # Errors
    /// [`HcubeError::BadTorus`] unless `k ≥ 2`, `n ≥ 1`, and
    /// `k^n ≤ MAX_TORUS_NODES`.
    pub fn new(k: u16, n: u8) -> Result<Torus, HcubeError> {
        if k < 2 || n == 0 {
            return Err(HcubeError::BadTorus { k, n });
        }
        let mut count: usize = 1;
        for _ in 0..n {
            count = match count.checked_mul(k as usize) {
                Some(c) if c <= MAX_TORUS_NODES => c,
                _ => return Err(HcubeError::BadTorus { k, n }),
            };
        }
        Ok(Torus { k, n })
    }

    /// Creates a `k`-ary `n`-cube, panicking on invalid parameters.
    ///
    /// # Panics
    /// If [`Torus::new`] would error.
    #[must_use]
    pub fn of(k: u16, n: u8) -> Torus {
        Torus::new(k, n).expect("valid torus parameters")
    }

    /// The arity `k` (nodes per ring).
    #[inline]
    #[must_use]
    pub fn arity(self) -> u16 {
        self.k
    }

    /// The number of dimensions `n`.
    #[inline]
    #[must_use]
    pub fn dimension(self) -> u8 {
        self.n
    }

    /// Coordinate `d` of node `v` (`0..k`).
    #[inline]
    #[must_use]
    pub fn coord(self, v: NodeId, d: u8) -> u16 {
        let mut x = v.0;
        for _ in 0..d {
            x /= u32::from(self.k);
        }
        (x % u32::from(self.k)) as u16
    }

    /// The node with the given coordinates (little-endian, one per
    /// dimension; missing trailing coordinates are zero).
    ///
    /// # Panics
    /// If more than `n` coordinates are given or any is `≥ k`.
    #[must_use]
    pub fn node_at(self, coords: &[u16]) -> NodeId {
        assert!(coords.len() <= self.n as usize, "too many coordinates");
        let mut v: u32 = 0;
        for &c in coords.iter().rev() {
            assert!(
                c < self.k,
                "coordinate {c} out of range for arity {}",
                self.k
            );
            v = v * u32::from(self.k) + u32::from(c);
        }
        NodeId(v)
    }

    /// The node reached from `v` by stepping `±1 (mod k)` in dimension
    /// `d` (`plus = true` for `+1`).
    #[must_use]
    pub fn step(self, v: NodeId, d: u8, plus: bool) -> NodeId {
        let k = u32::from(self.k);
        let mut scale = 1u32;
        for _ in 0..d {
            scale *= k;
        }
        let c = (v.0 / scale) % k;
        let nc = if plus { (c + 1) % k } else { (c + k - 1) % k };
        NodeId(v.0 - c * scale + nc * scale)
    }

    /// The minimal ring distance between coordinates `a` and `b`
    /// (`min` of the two ways around).
    #[inline]
    #[must_use]
    pub fn ring_distance(self, a: u16, b: u16) -> u16 {
        let k = self.k;
        let fwd = (b + k - a) % k;
        let bwd = (a + k - b) % k;
        fwd.min(bwd)
    }

    /// The minimal (wraparound) distance between two nodes: the sum of
    /// per-dimension minimal ring distances.
    #[must_use]
    pub fn distance(self, u: NodeId, v: NodeId) -> u32 {
        (0..self.n)
            .map(|d| u32::from(self.ring_distance(self.coord(u, d), self.coord(v, d))))
            .sum()
    }

    /// Iterates over all node addresses.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..Topology::node_count(&self) as u32).map(NodeId)
    }

    /// Decodes a port index into `(dimension, plus_direction, vc)`.
    #[inline]
    #[must_use]
    pub fn port_parts(self, port: Dim) -> (u8, bool, u8) {
        (port.0 >> 2, port.0 & 0b10 == 0, port.0 & 1)
    }

    /// Encodes `(dimension, plus_direction, vc)` as a port index.
    #[inline]
    #[must_use]
    pub fn port_of(self, dim: u8, plus: bool, vc: u8) -> Dim {
        debug_assert!(dim < self.n && vc < 2);
        Dim((dim << 2) | (u8::from(!plus) << 1) | vc)
    }
}

impl Topology for Torus {
    fn kind(&self) -> &'static str {
        "torus"
    }

    fn node_count(&self) -> usize {
        let mut count = 1usize;
        for _ in 0..self.n {
            count *= self.k as usize;
        }
        count
    }

    fn dimensions(&self) -> u8 {
        self.n
    }

    fn ports_per_node(&self) -> u8 {
        4 * self.n
    }

    fn channel_index(&self, from: NodeId, port: Dim) -> usize {
        debug_assert!(Topology::contains(self, from));
        debug_assert!(port.0 < self.ports_per_node());
        from.0 as usize * self.ports_per_node() as usize + port.0 as usize
    }

    fn channel_coords(&self, ch: usize) -> (NodeId, Dim) {
        let ports = self.ports_per_node() as usize;
        (NodeId((ch / ports) as u32), Dim((ch % ports) as u8))
    }

    fn port_dim(&self, port: Dim) -> u8 {
        port.0 >> 2
    }

    fn neighbor(&self, from: NodeId, port: Dim) -> NodeId {
        let (dim, plus, _vc) = self.port_parts(port);
        self.step(from, dim, plus)
    }

    fn node_label(&self, v: NodeId) -> String {
        let coords: Vec<String> = (0..self.n).map(|d| self.coord(v, d).to_string()).collect();
        coords.join(",")
    }

    fn channel_label(&self, ch: usize) -> String {
        let (from, port) = Topology::channel_coords(self, ch);
        let (dim, plus, vc) = self.port_parts(port);
        format!(
            "{}--d{}{}v{}→",
            self.node_label(from),
            dim,
            if plus { '+' } else { '-' },
            vc
        )
    }

    fn dim_label(&self, d: u8) -> String {
        // Matches the `d{n}±v{vc}` notation of `channel_label`.
        format!("d{d}")
    }
}

/// Minimal dimension-ordered routing on the torus with dateline virtual
/// channels (see the module docs for the deadlock-freedom argument).
///
/// Per dimension the router travels the shorter way around the ring
/// (ties break toward `+`), correcting dimensions in ascending order.
/// Routes are fully deterministic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TorusRouter {
    /// The torus routed on.
    pub torus: Torus,
}

impl TorusRouter {
    /// A dimension-ordered router on `torus`.
    #[must_use]
    pub fn new(torus: Torus) -> TorusRouter {
        TorusRouter { torus }
    }
}

impl Router for TorusRouter {
    type Topo = Torus;

    fn topology(&self) -> Torus {
        self.torus
    }

    fn route_hops(&self, src: NodeId, dst: NodeId, out: &mut Vec<(NodeId, Dim)>) {
        let t = self.torus;
        let k = t.arity();
        let mut cur = src;
        for d in 0..t.dimension() {
            let a = t.coord(cur, d);
            let b = t.coord(dst, d);
            if a == b {
                continue;
            }
            let fwd = (b + k - a) % k;
            let bwd = (a + k - b) % k;
            let plus = fwd <= bwd; // ties break toward +
            let steps = fwd.min(bwd);
            let mut crossed = false;
            for _ in 0..steps {
                let c = t.coord(cur, d);
                let vc = u8::from(crossed);
                out.push((cur, t.port_of(d, plus, vc)));
                // The wrap edge is k-1 → 0 going +, 0 → k-1 going −;
                // hops after it ride VC1 (the dateline switch).
                if (plus && c == k - 1) || (!plus && c == 0) {
                    crossed = true;
                }
                cur = t.step(cur, d, plus);
            }
        }
        debug_assert_eq!(cur, dst, "route must terminate at the destination");
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.torus.distance(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_parameters() {
        assert!(Torus::new(1, 2).is_err());
        assert!(Torus::new(2, 0).is_err());
        assert!(Torus::new(2, 24).is_ok());
        assert!(Torus::new(2, 25).is_err());
        assert!(Torus::new(4096, 2).is_ok());
        assert!(Torus::new(4097, 2).is_err());
    }

    #[test]
    fn coords_round_trip() {
        let t = Torus::of(5, 3);
        assert_eq!(Topology::node_count(&t), 125);
        for v in t.nodes() {
            let coords: Vec<u16> = (0..3).map(|d| t.coord(v, d)).collect();
            assert_eq!(t.node_at(&coords), v);
            assert!(coords.iter().all(|&c| c < 5));
        }
        assert_eq!(t.node_at(&[2, 3, 1]), NodeId(2 + 3 * 5 + 25));
    }

    #[test]
    fn step_wraps_both_ways() {
        let t = Torus::of(4, 2);
        let v = t.node_at(&[3, 1]);
        assert_eq!(t.step(v, 0, true), t.node_at(&[0, 1]));
        assert_eq!(t.step(v, 0, false), t.node_at(&[2, 1]));
        let w = t.node_at(&[0, 0]);
        assert_eq!(t.step(w, 1, false), t.node_at(&[0, 3]));
    }

    #[test]
    fn channel_indexing_is_a_bijection() {
        let t = Torus::of(3, 2);
        let mut seen = vec![false; Topology::channel_count(&t)];
        for v in t.nodes() {
            for p in 0..t.ports_per_node() {
                let i = Topology::channel_index(&t, v, Dim(p));
                assert!(!seen[i]);
                seen[i] = true;
                assert_eq!(Topology::channel_coords(&t, i), (v, Dim(p)));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn routes_are_minimal_and_contiguous() {
        for (k, n) in [(2u16, 3u8), (3, 2), (4, 2), (5, 2)] {
            let t = Torus::of(k, n);
            let r = TorusRouter::new(t);
            for u in t.nodes() {
                for v in t.nodes() {
                    let mut hops = Vec::new();
                    r.route_hops(u, v, &mut hops);
                    assert_eq!(hops.len() as u32, t.distance(u, v), "minimal route");
                    let mut at = u;
                    for &(from, port) in &hops {
                        assert_eq!(from, at, "contiguous route");
                        at = Topology::neighbor(&t, from, port);
                    }
                    assert_eq!(at, v, "route ends at destination");
                }
            }
        }
    }

    #[test]
    fn dateline_switches_vc_exactly_after_the_wrap_edge() {
        let t = Torus::of(4, 1);
        let r = TorusRouter::new(t);
        // 3 → 1 the short way is +: 3 →(wrap) 0 → 1. The wrap hop rides
        // VC0; the hop after it rides VC1.
        let mut hops = Vec::new();
        r.route_hops(t.node_at(&[3]), t.node_at(&[1]), &mut hops);
        let parts: Vec<(u8, bool, u8)> = hops.iter().map(|&(_, p)| t.port_parts(p)).collect();
        assert_eq!(parts, vec![(0, true, 0), (0, true, 1)]);
        // A route that never wraps stays on VC0.
        hops.clear();
        r.route_hops(t.node_at(&[0]), t.node_at(&[2]), &mut hops);
        assert!(hops.iter().all(|&(_, p)| t.port_parts(p).2 == 0));
    }

    #[test]
    fn ties_break_toward_plus() {
        let t = Torus::of(4, 1);
        let r = TorusRouter::new(t);
        // Distance 2 both ways on a 4-ring: the + way is taken.
        let mut hops = Vec::new();
        r.route_hops(t.node_at(&[0]), t.node_at(&[2]), &mut hops);
        assert!(hops.iter().all(|&(_, p)| t.port_parts(p).1));
    }

    #[test]
    fn binary_torus_matches_hypercube_distances() {
        let t = Torus::of(2, 4);
        let c = crate::Cube::of(4);
        for u in t.nodes() {
            for v in t.nodes() {
                assert_eq!(t.distance(u, v), u.distance(v));
                assert!(Topology::contains(&c, u));
            }
        }
    }

    #[test]
    fn labels_show_coordinates() {
        let t = Torus::of(4, 2);
        let v = t.node_at(&[3, 1]);
        assert_eq!(Topology::node_label(&t, v), "3,1");
        let ch = Topology::channel_index(&t, v, t.port_of(1, false, 1));
        assert_eq!(Topology::channel_label(&t, ch), "3,1--d1-v1→");
    }
}
