//! The k-ary n-cube (torus) backend: the proof that the simulation
//! stack is topology-generic.
//!
//! A [`Torus`] has `k^n` nodes addressed by `n` base-`k` coordinates
//! (little-endian mixed radix inside the `u32` of a [`NodeId`]); each
//! node connects to its `±1 (mod k)` neighbor in every dimension. The
//! hypercube is the degenerate `k = 2` case, but with wraparound rings
//! the interesting machinery appears: minimal routes must pick a
//! direction per dimension, and dimension-ordered wormhole routing alone
//! is **not** deadlock-free (a ring's wrap channel closes a cyclic
//! channel dependency).
//!
//! [`TorusRouter`] therefore implements the classic *dateline virtual
//! channel* scheme (Dally & Seitz) as two **lane classes** of the
//! generic virtual-lane mechanism ([`Router::lanes`]): every physical
//! link carries `2m` lanes split into a low class (lanes `0..m`, the
//! pre-dateline class "VC0") and a high class (lanes `m..2m`, "VC1").
//! A worm starts each dimension in the low class and switches to the
//! high class after traversing the ring's wrap edge. Ranking links by
//! `(dimension, direction, class, ring position)` is then strictly
//! increasing along any route, so the link-class dependency graph is
//! acyclic and the network cannot deadlock — lanes within a class are
//! interchangeable, so the argument survives adaptive lane selection
//! (DESIGN.md §14). The default `m = 1` is byte-identical to the
//! original hard-coded two-VC encoding.
//!
//! In the [`Topology`] port encoding each node has `2n` physical link
//! ports: `port = 2·dim + direction` with direction `0 = +`, `1 = −`.
//! Lanes are modeled as independent channel resources (each with full
//! link bandwidth); contention on the shared physical link is
//! deliberately not modeled — see DESIGN.md §9.

use crate::addr::{Dim, NodeId};
use crate::error::HcubeError;
use crate::topology::{Hop, Router, Topology};

/// A k-ary n-cube: `n` dimensions of `k`-node rings.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Torus {
    k: u16,
    n: u8,
}

/// Largest supported node count, matching [`crate::MAX_DIMENSION`]'s
/// `2^24` cap on the hypercube side.
pub const MAX_TORUS_NODES: usize = 1 << 24;

impl Torus {
    /// Creates a `k`-ary `n`-cube.
    ///
    /// # Errors
    /// [`HcubeError::BadTorus`] unless `k ≥ 2`, `n ≥ 1`, and
    /// `k^n ≤ MAX_TORUS_NODES`.
    pub fn new(k: u16, n: u8) -> Result<Torus, HcubeError> {
        if k < 2 || n == 0 {
            return Err(HcubeError::BadTorus { k, n });
        }
        let mut count: usize = 1;
        for _ in 0..n {
            count = match count.checked_mul(k as usize) {
                Some(c) if c <= MAX_TORUS_NODES => c,
                _ => return Err(HcubeError::BadTorus { k, n }),
            };
        }
        Ok(Torus { k, n })
    }

    /// Creates a `k`-ary `n`-cube, panicking on invalid parameters.
    ///
    /// # Panics
    /// If [`Torus::new`] would error.
    #[must_use]
    pub fn of(k: u16, n: u8) -> Torus {
        Torus::new(k, n).expect("valid torus parameters")
    }

    /// The arity `k` (nodes per ring).
    #[inline]
    #[must_use]
    pub fn arity(self) -> u16 {
        self.k
    }

    /// The number of dimensions `n`.
    #[inline]
    #[must_use]
    pub fn dimension(self) -> u8 {
        self.n
    }

    /// Coordinate `d` of node `v` (`0..k`).
    #[inline]
    #[must_use]
    pub fn coord(self, v: NodeId, d: u8) -> u16 {
        let mut x = v.0;
        for _ in 0..d {
            x /= u32::from(self.k);
        }
        (x % u32::from(self.k)) as u16
    }

    /// The node with the given coordinates (little-endian, one per
    /// dimension; missing trailing coordinates are zero).
    ///
    /// # Panics
    /// If more than `n` coordinates are given or any is `≥ k`.
    #[must_use]
    pub fn node_at(self, coords: &[u16]) -> NodeId {
        assert!(coords.len() <= self.n as usize, "too many coordinates");
        let mut v: u32 = 0;
        for &c in coords.iter().rev() {
            assert!(
                c < self.k,
                "coordinate {c} out of range for arity {}",
                self.k
            );
            v = v * u32::from(self.k) + u32::from(c);
        }
        NodeId(v)
    }

    /// The node reached from `v` by stepping `±1 (mod k)` in dimension
    /// `d` (`plus = true` for `+1`).
    #[must_use]
    pub fn step(self, v: NodeId, d: u8, plus: bool) -> NodeId {
        let k = u32::from(self.k);
        let mut scale = 1u32;
        for _ in 0..d {
            scale *= k;
        }
        let c = (v.0 / scale) % k;
        let nc = if plus { (c + 1) % k } else { (c + k - 1) % k };
        NodeId(v.0 - c * scale + nc * scale)
    }

    /// The minimal ring distance between coordinates `a` and `b`
    /// (`min` of the two ways around).
    #[inline]
    #[must_use]
    pub fn ring_distance(self, a: u16, b: u16) -> u16 {
        let k = self.k;
        let fwd = (b + k - a) % k;
        let bwd = (a + k - b) % k;
        fwd.min(bwd)
    }

    /// The minimal (wraparound) distance between two nodes: the sum of
    /// per-dimension minimal ring distances.
    #[must_use]
    pub fn distance(self, u: NodeId, v: NodeId) -> u32 {
        (0..self.n)
            .map(|d| u32::from(self.ring_distance(self.coord(u, d), self.coord(v, d))))
            .sum()
    }

    /// Iterates over all node addresses.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..Topology::node_count(&self) as u32).map(NodeId)
    }

    /// Decodes a link port index into `(dimension, plus_direction)`.
    #[inline]
    #[must_use]
    pub fn port_parts(self, port: Dim) -> (u8, bool) {
        (port.0 >> 1, port.0 & 1 == 0)
    }

    /// Encodes `(dimension, plus_direction)` as a link port index.
    #[inline]
    #[must_use]
    pub fn port_of(self, dim: u8, plus: bool) -> Dim {
        debug_assert!(dim < self.n);
        Dim((dim << 1) | u8::from(!plus))
    }
}

impl Topology for Torus {
    fn kind(&self) -> &'static str {
        "torus"
    }

    fn node_count(&self) -> usize {
        let mut count = 1usize;
        for _ in 0..self.n {
            count *= self.k as usize;
        }
        count
    }

    fn dimensions(&self) -> u8 {
        self.n
    }

    fn ports_per_node(&self) -> u8 {
        2 * self.n
    }

    fn channel_index(&self, from: NodeId, port: Dim) -> usize {
        debug_assert!(Topology::contains(self, from));
        debug_assert!(port.0 < self.ports_per_node());
        from.0 as usize * self.ports_per_node() as usize + port.0 as usize
    }

    fn channel_coords(&self, ch: usize) -> (NodeId, Dim) {
        let ports = self.ports_per_node() as usize;
        (NodeId((ch / ports) as u32), Dim((ch % ports) as u8))
    }

    fn port_dim(&self, port: Dim) -> u8 {
        port.0 >> 1
    }

    fn neighbor(&self, from: NodeId, port: Dim) -> NodeId {
        let (dim, plus) = self.port_parts(port);
        self.step(from, dim, plus)
    }

    fn node_label(&self, v: NodeId) -> String {
        let coords: Vec<String> = (0..self.n).map(|d| self.coord(v, d).to_string()).collect();
        coords.join(",")
    }

    fn channel_label(&self, ch: usize) -> String {
        let (from, port) = Topology::channel_coords(self, ch);
        let (dim, plus) = self.port_parts(port);
        format!(
            "{}--d{}{}→",
            self.node_label(from),
            dim,
            if plus { '+' } else { '-' }
        )
    }

    fn lane_label(&self, ch: usize, lane: u8) -> String {
        let (from, port) = Topology::channel_coords(self, ch);
        let (dim, plus) = self.port_parts(port);
        // Matches the original two-VC notation at the default lane
        // multiplier (lane 0 = "v0", lane 1 = "v1").
        format!(
            "{}--d{}{}v{}→",
            self.node_label(from),
            dim,
            if plus { '+' } else { '-' },
            lane
        )
    }

    fn dim_label(&self, d: u8) -> String {
        // Matches the `d{n}±v{lane}` notation of `lane_label`.
        format!("d{d}")
    }
}

/// Minimal dimension-ordered routing on the torus with dateline lane
/// classes (see the module docs for the deadlock-freedom argument).
///
/// Per dimension the router travels the shorter way around the ring
/// (ties break toward `+`), correcting dimensions in ascending order.
/// Paths are fully deterministic; a worm enters each dimension in the
/// low lane class and moves to the high class after the wrap edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TorusRouter {
    /// The torus routed on.
    pub torus: Torus,
    /// Lanes per dateline class (`lanes() = 2m`).
    m: u8,
}

impl TorusRouter {
    /// A dimension-ordered router on `torus` with one lane per dateline
    /// class (`lanes() = 2`, the classic Dally–Seitz configuration).
    #[must_use]
    pub fn new(torus: Torus) -> TorusRouter {
        TorusRouter::with_lane_multiplier(torus, 1)
    }

    /// A dimension-ordered router with `m` interchangeable lanes per
    /// dateline class (`lanes() = 2m`: lanes `0..m` pre-dateline,
    /// `m..2m` post-dateline).
    ///
    /// # Panics
    /// If `m == 0` or `2m` overflows `u8`.
    #[must_use]
    pub fn with_lane_multiplier(torus: Torus, m: u8) -> TorusRouter {
        assert!(m >= 1, "a router needs at least one lane per class");
        assert!(m <= 127, "lane count 2m must fit in u8");
        TorusRouter { torus, m }
    }

    /// Lanes per dateline class.
    #[inline]
    #[must_use]
    pub fn lane_multiplier(&self) -> u8 {
        self.m
    }
}

impl Router for TorusRouter {
    type Topo = Torus;

    fn topology(&self) -> Torus {
        self.torus
    }

    fn lanes(&self) -> u8 {
        2 * self.m
    }

    fn lane_classes(&self) -> u8 {
        2
    }

    fn route_hops(&self, src: NodeId, dst: NodeId, out: &mut Vec<Hop>) {
        let t = self.torus;
        let k = t.arity();
        let mut cur = src;
        for d in 0..t.dimension() {
            let a = t.coord(cur, d);
            let b = t.coord(dst, d);
            if a == b {
                continue;
            }
            let fwd = (b + k - a) % k;
            let bwd = (a + k - b) % k;
            let plus = fwd <= bwd; // ties break toward +
            let steps = fwd.min(bwd);
            let mut crossed = false;
            for _ in 0..steps {
                let c = t.coord(cur, d);
                // Nominal lane = lowest lane of the dateline class.
                let lane = if crossed { self.m } else { 0 };
                out.push(Hop {
                    from: cur,
                    port: t.port_of(d, plus),
                    lane,
                });
                // The wrap edge is k-1 → 0 going +, 0 → k-1 going −;
                // hops after it ride the high class (the dateline
                // switch).
                if (plus && c == k - 1) || (!plus && c == 0) {
                    crossed = true;
                }
                cur = t.step(cur, d, plus);
            }
        }
        debug_assert_eq!(cur, dst, "route must terminate at the destination");
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.torus.distance(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_parameters() {
        assert!(Torus::new(1, 2).is_err());
        assert!(Torus::new(2, 0).is_err());
        assert!(Torus::new(2, 24).is_ok());
        assert!(Torus::new(2, 25).is_err());
        assert!(Torus::new(4096, 2).is_ok());
        assert!(Torus::new(4097, 2).is_err());
    }

    #[test]
    fn coords_round_trip() {
        let t = Torus::of(5, 3);
        assert_eq!(Topology::node_count(&t), 125);
        for v in t.nodes() {
            let coords: Vec<u16> = (0..3).map(|d| t.coord(v, d)).collect();
            assert_eq!(t.node_at(&coords), v);
            assert!(coords.iter().all(|&c| c < 5));
        }
        assert_eq!(t.node_at(&[2, 3, 1]), NodeId(2 + 3 * 5 + 25));
    }

    #[test]
    fn step_wraps_both_ways() {
        let t = Torus::of(4, 2);
        let v = t.node_at(&[3, 1]);
        assert_eq!(t.step(v, 0, true), t.node_at(&[0, 1]));
        assert_eq!(t.step(v, 0, false), t.node_at(&[2, 1]));
        let w = t.node_at(&[0, 0]);
        assert_eq!(t.step(w, 1, false), t.node_at(&[0, 3]));
    }

    #[test]
    fn channel_indexing_is_a_bijection() {
        let t = Torus::of(3, 2);
        let mut seen = vec![false; Topology::channel_count(&t)];
        for v in t.nodes() {
            for p in 0..t.ports_per_node() {
                let i = Topology::channel_index(&t, v, Dim(p));
                assert!(!seen[i]);
                seen[i] = true;
                assert_eq!(Topology::channel_coords(&t, i), (v, Dim(p)));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn routes_are_minimal_and_contiguous() {
        for (k, n) in [(2u16, 3u8), (3, 2), (4, 2), (5, 2)] {
            let t = Torus::of(k, n);
            let r = TorusRouter::new(t);
            for u in t.nodes() {
                for v in t.nodes() {
                    let mut hops = Vec::new();
                    r.route_hops(u, v, &mut hops);
                    assert_eq!(hops.len() as u32, t.distance(u, v), "minimal route");
                    let mut at = u;
                    for h in &hops {
                        assert_eq!(h.from, at, "contiguous route");
                        at = Topology::neighbor(&t, h.from, h.port);
                    }
                    assert_eq!(at, v, "route ends at destination");
                }
            }
        }
    }

    #[test]
    fn dateline_switches_class_exactly_after_the_wrap_edge() {
        let t = Torus::of(4, 1);
        let r = TorusRouter::new(t);
        // 3 → 1 the short way is +: 3 →(wrap) 0 → 1. The wrap hop rides
        // the low class; the hop after it rides the high class.
        let mut hops = Vec::new();
        r.route_hops(t.node_at(&[3]), t.node_at(&[1]), &mut hops);
        let parts: Vec<(u8, bool, u8)> = hops
            .iter()
            .map(|h| {
                let (d, plus) = t.port_parts(h.port);
                (d, plus, h.lane)
            })
            .collect();
        assert_eq!(parts, vec![(0, true, 0), (0, true, 1)]);
        // A route that never wraps stays in the low class.
        hops.clear();
        r.route_hops(t.node_at(&[0]), t.node_at(&[2]), &mut hops);
        assert!(hops.iter().all(|h| h.lane == 0));
    }

    #[test]
    fn lane_multiplier_scales_classes() {
        let t = Torus::of(4, 1);
        let r = TorusRouter::with_lane_multiplier(t, 3);
        assert_eq!(r.lanes(), 6);
        assert_eq!(r.lane_classes(), 2);
        let mut hops = Vec::new();
        r.route_hops(t.node_at(&[3]), t.node_at(&[1]), &mut hops);
        // Nominal lanes are the class floors: 0 (low) and m (high).
        let lanes: Vec<u8> = hops.iter().map(|h| h.lane).collect();
        assert_eq!(lanes, vec![0, 3]);
    }

    #[test]
    fn default_multiplier_matches_the_original_vc_encoding() {
        // At m = 1 a dense (link, lane) channel index is
        // (v·2n + 2d+dir)·2 + vc = v·4n + 4d + 2·dir + vc — exactly the
        // original 4n-ports-per-node encoding. Pin it.
        let t = Torus::of(4, 2);
        let r = TorusRouter::new(t);
        for u in t.nodes() {
            for v in t.nodes() {
                let mut hops = Vec::new();
                r.route_hops(u, v, &mut hops);
                let chans = r.route_channels(u, v);
                for (h, &ch) in hops.iter().zip(&chans) {
                    let (d, plus) = t.port_parts(h.port);
                    let old_port = 4 * d as usize + 2 * usize::from(!plus) + h.lane as usize;
                    assert_eq!(ch, h.from.0 as usize * 8 + old_port);
                }
            }
        }
    }

    #[test]
    fn ties_break_toward_plus() {
        let t = Torus::of(4, 1);
        let r = TorusRouter::new(t);
        // Distance 2 both ways on a 4-ring: the + way is taken.
        let mut hops = Vec::new();
        r.route_hops(t.node_at(&[0]), t.node_at(&[2]), &mut hops);
        assert!(hops.iter().all(|h| t.port_parts(h.port).1));
    }

    #[test]
    fn binary_torus_matches_hypercube_distances() {
        let t = Torus::of(2, 4);
        let c = crate::Cube::of(4);
        for u in t.nodes() {
            for v in t.nodes() {
                assert_eq!(t.distance(u, v), u.distance(v));
                assert!(Topology::contains(&c, u));
            }
        }
    }

    #[test]
    fn labels_show_coordinates() {
        let t = Torus::of(4, 2);
        let v = t.node_at(&[3, 1]);
        assert_eq!(Topology::node_label(&t, v), "3,1");
        let ch = Topology::channel_index(&t, v, t.port_of(1, false));
        assert_eq!(Topology::channel_label(&t, ch), "3,1--d1-→");
        assert_eq!(Topology::lane_label(&t, ch, 1), "3,1--d1-v1→");
    }
}
