//! Arc-disjointness of E-cube paths (Section 3.3).
//!
//! Two paths with no directed channel in common can never contend for a
//! channel regardless of timing. Theorems 1 and 2 give cheap *sufficient*
//! conditions; [`arc_disjoint`] is the exact (brute-force) check used as
//! an oracle in tests and by the contention verifier.

use crate::path::{Channel, Path};

/// Exact arc-disjointness check: whether `a` and `b` share no directed
/// channel. O(|a|·|b|) without allocation, which is fine for hypercube
/// paths (≤ n hops each).
///
/// ```
/// use hcube::{NodeId, Path, Resolution};
/// use hcube::disjoint::arc_disjoint;
///
/// // The Figure 3(d) conflict: both paths leave 0111 on channel 3 and
/// // share the arc 0111→1111.
/// let a = Path::new(Resolution::HighToLow, NodeId(0b0111), NodeId(0b1011));
/// let b = Path::new(Resolution::HighToLow, NodeId(0b0111), NodeId(0b1100));
/// assert!(!arc_disjoint(a, b));
/// ```
#[must_use]
pub fn arc_disjoint(a: Path, b: Path) -> bool {
    shared_arc(a, b).is_none()
}

/// The first directed channel shared by the two paths, if any (in `a`'s
/// traversal order).
#[must_use]
pub fn shared_arc(a: Path, b: Path) -> Option<Channel> {
    a.arcs().find(|&arc| b.uses(arc))
}

/// Theorem 1 (sufficient condition): two paths leaving a *common source*
/// on different first channels are arc-disjoint.
///
/// Returns `true` only when the condition applies; `false` means "the
/// theorem does not guarantee disjointness", not "the paths share an arc".
#[must_use]
pub fn theorem1_applies(a: Path, b: Path) -> bool {
    a.src == b.src
        && a.resolution == b.resolution
        && match (a.first_dim(), b.first_dim()) {
            (Some(x), Some(y)) => x != y,
            // An empty path is vacuously disjoint from anything.
            _ => true,
        }
}

/// Theorem 2 (sufficient condition): a path whose source and destination
/// both lie inside subcube `s` is arc-disjoint from any path whose source
/// and destination both lie outside `s`.
///
/// `inside` is the path contained in `s`; `outside` the one avoiding it.
/// As with [`theorem1_applies`], `false` carries no information.
#[must_use]
pub fn theorem2_applies(s: crate::subcube::Subcube, inside: Path, outside: Path) -> bool {
    s.contains(inside.src)
        && s.contains(inside.dst)
        && !s.contains(outside.src)
        && !s.contains(outside.dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::NodeId;
    use crate::routing::Resolution;
    use crate::subcube::Subcube;

    fn p(src: u32, dst: u32) -> Path {
        Path::new(Resolution::HighToLow, NodeId(src), NodeId(dst))
    }

    #[test]
    fn shared_arc_found_in_figure_3d_conflict() {
        // The conflict the paper describes in Figure 3(d): P(0111, 1011)
        // and P(0111, 1100) both use channel 0111 → 1111.
        let a = p(0b0111, 0b1011);
        let b = p(0b0111, 0b1100);
        let arc = shared_arc(a, b).expect("paths share 0111→1111");
        assert_eq!(arc.from, NodeId(0b0111));
        assert_eq!(arc.to(), NodeId(0b1111));
        assert!(!arc_disjoint(a, b));
    }

    #[test]
    fn theorem1_exhaustive_on_4_cube() {
        // Whenever two paths leave a common source on different channels,
        // they must be arc-disjoint.
        for src in 0..16u32 {
            for d1 in 0..16u32 {
                for d2 in 0..16u32 {
                    for res in [Resolution::HighToLow, Resolution::LowToHigh] {
                        let a = Path::new(res, NodeId(src), NodeId(d1));
                        let b = Path::new(res, NodeId(src), NodeId(d2));
                        if theorem1_applies(a, b) {
                            assert!(
                                arc_disjoint(a, b),
                                "Theorem 1 violated: src={src} d1={d1} d2={d2} {res:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn theorem2_exhaustive_on_4_cube_sample() {
        // For every subcube of a 4-cube and a sample of path pairs, the
        // inside/outside separation implies arc-disjointness.
        let mut subcubes = Vec::new();
        for dim in 0..=4u8 {
            for mask in 0..(1u32 << (4 - dim)) {
                subcubes.push(Subcube::new(dim, mask));
            }
        }
        for s in subcubes {
            for u in 0..16u32 {
                for v in 0..16u32 {
                    if !(s.contains(NodeId(u)) && s.contains(NodeId(v))) {
                        continue;
                    }
                    for x in 0..16u32 {
                        if s.contains(NodeId(x)) {
                            continue;
                        }
                        // One representative y per x keeps this quick.
                        let y = (x + 5) % 16;
                        if s.contains(NodeId(y)) {
                            continue;
                        }
                        let inside = p(u, v);
                        let outside = p(x, y);
                        assert!(theorem2_applies(s, inside, outside));
                        assert!(
                            arc_disjoint(inside, outside),
                            "Theorem 2 violated: s={s:?} in=({u},{v}) out=({x},{y})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn theorem1_does_not_apply_to_same_channel_paths() {
        let a = p(0b0111, 0b1011);
        let b = p(0b0111, 0b1100);
        assert!(!theorem1_applies(a, b)); // both leave on channel 3
    }

    #[test]
    fn disjoint_paths_report_no_shared_arc() {
        let a = p(0b0000, 0b0011);
        let b = p(0b1000, 0b1100);
        assert!(arc_disjoint(a, b));
        assert_eq!(shared_arc(a, b), None);
    }

    #[test]
    fn opposite_directions_are_different_channels() {
        // u→v and v→u traverse the same links but opposite channels, so
        // they are arc-disjoint (wormhole links are full duplex).
        let a = p(0b0000, 0b0111);
        let b = p(0b0111, 0b0000);
        assert!(arc_disjoint(a, b));
    }
}
