//! The 2D mesh backend: the NoC scenario for the multi-lane channel
//! layer.
//!
//! A [`Mesh`] is a `W × H` grid without wraparound — the canonical
//! network-on-chip topology of the multicast-NoC literature (PAPERS.md).
//! Each node has four link ports (`x+`, `x−`, `y+`, `y−`); boundary
//! ports exist as dense index slots but loop back to their own node and
//! are never routed over, keeping the `(node, port)` ↔ channel-index
//! bijection uniform.
//!
//! Two routers are provided:
//!
//! * [`MeshXY`] — deterministic dimension-ordered XY routing (all `x`
//!   hops, then all `y` hops). Deadlock-free by the classic argument:
//!   the only turns are `x → y`, so ranking links `(x-links by
//!   position, then y-links by position)` ascends along every route.
//! * [`MinimalAdaptive`] — a west-first turn-model router (Glass & Ni).
//!   Worms take all `x−` hops first; the remaining `x+`/`y` hops are
//!   interleaved in a deterministic per-pair order (an FNV mix of the
//!   `(src, dst)` addresses), spreading minimal "staircase" paths
//!   across the fabric. Every lane of a link is interchangeable (a
//!   single lane class), so a blocked worm may grab **any** free lane
//!   of its next link; lane 0 doubles as the always-present escape lane
//!   in the Duato sense — the network is deadlock-free even restricted
//!   to a single lane, because west-first forbids exactly the turns
//!   (`y± → x−`) that could close a dependency cycle. See DESIGN.md
//!   §14 for the full argument; `hcube/tests/mesh_properties.rs` checks
//!   the turn discipline and the acyclicity of the channel-dependency
//!   graph exhaustively on small meshes.

use crate::addr::{Dim, NodeId};
use crate::error::HcubeError;
use crate::topology::{Hop, Router, Topology};

/// A `W × H` 2D mesh (no wraparound). Node `(x, y)` has address
/// `y·W + x`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Mesh {
    w: u16,
    h: u16,
}

/// Largest supported node count, matching the torus cap.
pub const MAX_MESH_NODES: usize = 1 << 24;

/// Port indices: `x+ = 0`, `x− = 1`, `y+ = 2`, `y− = 3` (dimension is
/// `port >> 1`, matching the torus direction encoding).
const PORT_XP: u8 = 0;
const PORT_XM: u8 = 1;
const PORT_YP: u8 = 2;
const PORT_YM: u8 = 3;

impl Mesh {
    /// Creates a `w × h` mesh.
    ///
    /// # Errors
    /// [`HcubeError::BadMesh`] unless `w ≥ 2`, `h ≥ 1`, and
    /// `w·h ≤ MAX_MESH_NODES`.
    pub fn new(w: u16, h: u16) -> Result<Mesh, HcubeError> {
        if w < 2 || h == 0 || (w as usize) * (h as usize) > MAX_MESH_NODES {
            return Err(HcubeError::BadMesh { w, h });
        }
        Ok(Mesh { w, h })
    }

    /// Creates a `w × h` mesh, panicking on invalid parameters.
    ///
    /// # Panics
    /// If [`Mesh::new`] would error.
    #[must_use]
    pub fn of(w: u16, h: u16) -> Mesh {
        Mesh::new(w, h).expect("valid mesh parameters")
    }

    /// The width `W` (nodes per row).
    #[inline]
    #[must_use]
    pub fn width(self) -> u16 {
        self.w
    }

    /// The height `H` (nodes per column).
    #[inline]
    #[must_use]
    pub fn height(self) -> u16 {
        self.h
    }

    /// The `x` coordinate of node `v`.
    #[inline]
    #[must_use]
    pub fn x(self, v: NodeId) -> u16 {
        (v.0 % u32::from(self.w)) as u16
    }

    /// The `y` coordinate of node `v`.
    #[inline]
    #[must_use]
    pub fn y(self, v: NodeId) -> u16 {
        (v.0 / u32::from(self.w)) as u16
    }

    /// The node at `(x, y)`.
    ///
    /// # Panics
    /// If the coordinates are out of range.
    #[must_use]
    pub fn node_at(self, x: u16, y: u16) -> NodeId {
        assert!(x < self.w && y < self.h, "mesh coordinate out of range");
        NodeId(u32::from(y) * u32::from(self.w) + u32::from(x))
    }

    /// The minimal (Manhattan) distance between two nodes.
    #[must_use]
    pub fn distance(self, u: NodeId, v: NodeId) -> u32 {
        let dx = (i32::from(self.x(u)) - i32::from(self.x(v))).unsigned_abs();
        let dy = (i32::from(self.y(u)) - i32::from(self.y(v))).unsigned_abs();
        dx + dy
    }

    /// Iterates over all node addresses.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..Topology::node_count(&self) as u32).map(NodeId)
    }
}

impl Topology for Mesh {
    fn kind(&self) -> &'static str {
        "mesh"
    }

    fn node_count(&self) -> usize {
        self.w as usize * self.h as usize
    }

    fn dimensions(&self) -> u8 {
        2
    }

    fn ports_per_node(&self) -> u8 {
        4
    }

    fn channel_index(&self, from: NodeId, port: Dim) -> usize {
        debug_assert!(Topology::contains(self, from));
        debug_assert!(port.0 < 4);
        from.0 as usize * 4 + port.0 as usize
    }

    fn channel_coords(&self, ch: usize) -> (NodeId, Dim) {
        (NodeId((ch / 4) as u32), Dim((ch % 4) as u8))
    }

    fn port_dim(&self, port: Dim) -> u8 {
        port.0 >> 1
    }

    fn neighbor(&self, from: NodeId, port: Dim) -> NodeId {
        let (x, y) = (self.x(from), self.y(from));
        match port.0 {
            PORT_XP if x + 1 < self.w => self.node_at(x + 1, y),
            PORT_XM if x > 0 => self.node_at(x - 1, y),
            PORT_YP if y + 1 < self.h => self.node_at(x, y + 1),
            PORT_YM if y > 0 => self.node_at(x, y - 1),
            // Boundary ports are dense index slots that loop back;
            // routers never traverse them.
            _ => from,
        }
    }

    fn node_label(&self, v: NodeId) -> String {
        format!("{},{}", self.x(v), self.y(v))
    }

    fn channel_label(&self, ch: usize) -> String {
        let (from, port) = Topology::channel_coords(self, ch);
        format!("{}--{}→", self.node_label(from), port_name(port))
    }

    fn lane_label(&self, ch: usize, lane: u8) -> String {
        let (from, port) = Topology::channel_coords(self, ch);
        format!("{}--{}v{}→", self.node_label(from), port_name(port), lane)
    }

    fn dim_label(&self, d: u8) -> String {
        if d == 0 {
            "x".into()
        } else {
            "y".into()
        }
    }
}

fn port_name(port: Dim) -> &'static str {
    match port.0 {
        PORT_XP => "x+",
        PORT_XM => "x-",
        PORT_YP => "y+",
        _ => "y-",
    }
}

/// Deterministic dimension-ordered XY routing on the mesh: all `x`
/// hops, then all `y` hops. Deadlock-free with a single lane; extra
/// lanes (one interchangeable class) only add buffering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MeshXY {
    /// The mesh routed on.
    pub mesh: Mesh,
    lanes: u8,
}

impl MeshXY {
    /// An XY router on `mesh` with a single lane per link.
    #[must_use]
    pub fn new(mesh: Mesh) -> MeshXY {
        MeshXY::with_lanes(mesh, 1)
    }

    /// An XY router with `lanes` interchangeable lanes per link.
    ///
    /// # Panics
    /// If `lanes == 0`.
    #[must_use]
    pub fn with_lanes(mesh: Mesh, lanes: u8) -> MeshXY {
        assert!(lanes >= 1, "a router needs at least one lane");
        MeshXY { mesh, lanes }
    }
}

impl Router for MeshXY {
    type Topo = Mesh;

    fn topology(&self) -> Mesh {
        self.mesh
    }

    fn lanes(&self) -> u8 {
        self.lanes
    }

    fn route_hops(&self, src: NodeId, dst: NodeId, out: &mut Vec<Hop>) {
        let m = self.mesh;
        let (tx, ty) = (m.x(dst), m.y(dst));
        let mut cur = src;
        while m.x(cur) != tx {
            let port = if m.x(cur) < tx { PORT_XP } else { PORT_XM };
            out.push(Hop {
                from: cur,
                port: Dim(port),
                lane: 0,
            });
            cur = Topology::neighbor(&m, cur, Dim(port));
        }
        while m.y(cur) != ty {
            let port = if m.y(cur) < ty { PORT_YP } else { PORT_YM };
            out.push(Hop {
                from: cur,
                port: Dim(port),
                lane: 0,
            });
            cur = Topology::neighbor(&m, cur, Dim(port));
        }
        debug_assert_eq!(cur, dst, "route must terminate at the destination");
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.mesh.distance(src, dst)
    }
}

/// West-first minimal-adaptive routing on the mesh (Glass & Ni turn
/// model).
///
/// All `x−` ("west") hops are taken first; the remaining `x+`/`y` hops
/// are interleaved in a deterministic per-pair order derived from an
/// FNV mix of the `(src, dst)` addresses, so different pairs take
/// different minimal staircase paths (path diversity without breaking
/// the byte-for-byte reproducibility contract). All `lanes` of a link
/// form one interchangeable class: the engine's lane-adaptive
/// acquisition may grab any free lane, and deadlock freedom holds on
/// every lane individually because west-first forbids the `y± → x−`
/// turns (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MinimalAdaptive {
    /// The mesh routed on.
    pub mesh: Mesh,
    lanes: u8,
}

impl MinimalAdaptive {
    /// A west-first minimal-adaptive router with a single lane per
    /// link.
    #[must_use]
    pub fn new(mesh: Mesh) -> MinimalAdaptive {
        MinimalAdaptive::with_lanes(mesh, 1)
    }

    /// A west-first minimal-adaptive router with `lanes`
    /// interchangeable lanes per link.
    ///
    /// # Panics
    /// If `lanes == 0`.
    #[must_use]
    pub fn with_lanes(mesh: Mesh, lanes: u8) -> MinimalAdaptive {
        assert!(lanes >= 1, "a router needs at least one lane");
        MinimalAdaptive { mesh, lanes }
    }
}

/// FNV-1a mix of the pair addresses: the per-pair interleaving seed.
fn pair_mix(src: NodeId, dst: NodeId) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.0.to_le_bytes().into_iter().chain(dst.0.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Router for MinimalAdaptive {
    type Topo = Mesh;

    fn topology(&self) -> Mesh {
        self.mesh
    }

    fn lanes(&self) -> u8 {
        self.lanes
    }

    fn route_hops(&self, src: NodeId, dst: NodeId, out: &mut Vec<Hop>) {
        let m = self.mesh;
        let (tx, ty) = (m.x(dst), m.y(dst));
        let mut cur = src;
        // Mandatory west prefix: a west-first route takes every x− hop
        // before any other turn.
        while m.x(cur) > tx {
            out.push(Hop {
                from: cur,
                port: Dim(PORT_XM),
                lane: 0,
            });
            cur = Topology::neighbor(&m, cur, Dim(PORT_XM));
        }
        // Remaining moves go east and/or one fixed y direction; any
        // interleaving is minimal and turn-legal (E↔N/S turns are all
        // permitted by west-first). Pick the interleaving from the pair
        // mix so distinct pairs spread over distinct staircases.
        let mix = pair_mix(src, dst);
        let mut bit = 0u32;
        while m.x(cur) != tx || m.y(cur) != ty {
            let need_x = m.x(cur) < tx;
            let need_y = m.y(cur) != ty;
            let go_x = need_x && (!need_y || (mix >> (bit & 63)) & 1 == 1);
            bit += 1;
            let port = if go_x {
                PORT_XP
            } else if m.y(cur) < ty {
                PORT_YP
            } else {
                PORT_YM
            };
            out.push(Hop {
                from: cur,
                port: Dim(port),
                lane: 0,
            });
            cur = Topology::neighbor(&m, cur, Dim(port));
        }
    }

    fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.mesh.distance(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_parameters() {
        assert!(Mesh::new(1, 4).is_err());
        assert!(Mesh::new(4, 0).is_err());
        assert!(Mesh::new(4096, 4096).is_ok());
        assert!(Mesh::new(4097, 4096).is_err());
        assert!(Mesh::new(2, 1).is_ok());
    }

    #[test]
    fn coordinates_round_trip() {
        let m = Mesh::of(5, 3);
        assert_eq!(Topology::node_count(&m), 15);
        for v in m.nodes() {
            assert_eq!(m.node_at(m.x(v), m.y(v)), v);
        }
        assert_eq!(m.node_at(4, 2), NodeId(14));
    }

    #[test]
    fn channel_indexing_is_a_bijection() {
        let m = Mesh::of(3, 2);
        let mut seen = vec![false; Topology::channel_count(&m)];
        for v in m.nodes() {
            for p in 0..4 {
                let i = Topology::channel_index(&m, v, Dim(p));
                assert!(!seen[i]);
                seen[i] = true;
                assert_eq!(Topology::channel_coords(&m, i), (v, Dim(p)));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn boundary_ports_loop_back() {
        let m = Mesh::of(3, 3);
        assert_eq!(
            Topology::neighbor(&m, m.node_at(2, 1), Dim(PORT_XP)),
            m.node_at(2, 1)
        );
        assert_eq!(
            Topology::neighbor(&m, m.node_at(0, 1), Dim(PORT_XM)),
            m.node_at(0, 1)
        );
        assert_eq!(
            Topology::neighbor(&m, m.node_at(1, 2), Dim(PORT_YP)),
            m.node_at(1, 2)
        );
        assert_eq!(
            Topology::neighbor(&m, m.node_at(1, 0), Dim(PORT_YM)),
            m.node_at(1, 0)
        );
        assert_eq!(
            Topology::neighbor(&m, m.node_at(1, 1), Dim(PORT_XP)),
            m.node_at(2, 1)
        );
    }

    #[test]
    fn xy_routes_are_minimal_and_contiguous() {
        let m = Mesh::of(4, 3);
        let r = MeshXY::new(m);
        for u in m.nodes() {
            for v in m.nodes() {
                let mut hops = Vec::new();
                r.route_hops(u, v, &mut hops);
                assert_eq!(hops.len() as u32, m.distance(u, v));
                let mut at = u;
                for h in &hops {
                    assert_eq!(h.from, at);
                    let next = Topology::neighbor(&m, h.from, h.port);
                    assert_ne!(next, at, "route never rides a boundary loop");
                    at = next;
                }
                assert_eq!(at, v);
            }
        }
    }

    #[test]
    fn adaptive_routes_are_minimal_and_west_first() {
        let m = Mesh::of(4, 4);
        let r = MinimalAdaptive::new(m);
        for u in m.nodes() {
            for v in m.nodes() {
                let mut hops = Vec::new();
                r.route_hops(u, v, &mut hops);
                assert_eq!(hops.len() as u32, m.distance(u, v));
                let mut at = u;
                let mut seen_non_west = false;
                for h in &hops {
                    assert_eq!(h.from, at);
                    if h.port.0 == PORT_XM {
                        assert!(!seen_non_west, "west hops form a prefix");
                    } else {
                        seen_non_west = true;
                    }
                    at = Topology::neighbor(&m, h.from, h.port);
                }
                assert_eq!(at, v);
            }
        }
    }

    #[test]
    fn adaptive_paths_diverge_across_pairs() {
        // The staircase interleaving must actually vary by pair — if
        // every pair collapsed onto XY order the router would add no
        // path diversity.
        let m = Mesh::of(4, 4);
        let r = MinimalAdaptive::new(m);
        let xy = MeshXY::new(m);
        let mut diverged = 0usize;
        for u in m.nodes() {
            for v in m.nodes() {
                if r.route_channels(u, v) != xy.route_channels(u, v) {
                    diverged += 1;
                }
            }
        }
        assert!(diverged > 20, "only {diverged} pairs diverged from XY");
    }

    #[test]
    fn routers_expose_lane_configuration() {
        let m = Mesh::of(4, 4);
        assert_eq!(MeshXY::new(m).lanes(), 1);
        assert_eq!(MeshXY::with_lanes(m, 4).lanes(), 4);
        assert_eq!(MeshXY::with_lanes(m, 4).lane_classes(), 1);
        assert_eq!(MinimalAdaptive::with_lanes(m, 3).lanes(), 3);
        assert_eq!(MinimalAdaptive::with_lanes(m, 3).lane_classes(), 1);
    }

    #[test]
    fn labels_are_human_readable() {
        let m = Mesh::of(4, 3);
        let v = m.node_at(2, 1);
        assert_eq!(Topology::node_label(&m, v), "2,1");
        let ch = Topology::channel_index(&m, v, Dim(PORT_YM));
        assert_eq!(Topology::channel_label(&m, ch), "2,1--y-→");
        assert_eq!(Topology::lane_label(&m, ch, 1), "2,1--y-v1→");
        assert_eq!(Topology::dim_label(&m, 0), "x");
        assert_eq!(Topology::dim_label(&m, 1), "y");
    }
}
