//! Node addresses, dimensions, and the bit-level helpers the paper's
//! notation is built on.
//!
//! A node in an `n`-cube is identified by an `n`-bit binary address. This
//! module provides the `‖v‖` (bit weight), `⊕` (exclusive-or), and
//! `δ(u, v)` (highest differing bit, Definition 1) operations used
//! throughout the paper, plus the bit-reversal needed to support both
//! address-resolution orders (see [`crate::routing::Resolution`]).

use std::fmt;

/// The address of a node in a hypercube.
///
/// Addresses are plain `u32` bit patterns; a [`crate::Cube`] of dimension
/// `n` contains the addresses `0..2^n`. The newtype keeps node addresses
/// from being confused with dimensions, counts, or channel indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The bitwise exclusive-or `self ⊕ other` as a raw bit pattern.
    ///
    /// In a hypercube the XOR of two addresses is the set of dimensions a
    /// message must traverse to travel between them.
    #[inline]
    #[must_use]
    pub fn xor(self, other: NodeId) -> u32 {
        self.0 ^ other.0
    }

    /// `‖v‖` — the number of 1 bits in the address.
    #[inline]
    #[must_use]
    pub fn weight(self) -> u32 {
        self.0.count_ones()
    }

    /// The Hamming distance `‖u ⊕ v‖` between two nodes, which equals the
    /// E-cube path length between them.
    #[inline]
    #[must_use]
    pub fn distance(self, other: NodeId) -> u32 {
        self.xor(other).count_ones()
    }

    /// The value of bit `d` of the address (`v ⊗ 2^d ≠ 0` in the paper's
    /// notation).
    #[inline]
    #[must_use]
    pub fn bit(self, d: Dim) -> bool {
        (self.0 >> d.0) & 1 == 1
    }

    /// The neighbor of this node across dimension `d`: `v ⊕ 2^d`.
    #[inline]
    #[must_use]
    pub fn flip(self, d: Dim) -> NodeId {
        NodeId(self.0 ^ (1u32 << d.0))
    }

    /// Reverses the low `n` bits of the address.
    ///
    /// Used to conjugate between the two address-resolution orders: E-cube
    /// routing that resolves low-to-high in the original space behaves
    /// exactly like high-to-low resolution in the bit-reversed space.
    #[inline]
    #[must_use]
    pub fn bit_reverse(self, n: u8) -> NodeId {
        debug_assert!(n as u32 <= 32);
        if n == 0 {
            return NodeId(0);
        }
        NodeId(self.0.reverse_bits() >> (32 - n as u32))
    }

    /// Renders the address as an `n`-digit binary string, the way the paper
    /// writes node names (e.g. `0111`).
    #[must_use]
    pub fn binary(self, n: u8) -> String {
        let mut s = String::with_capacity(n as usize);
        for d in (0..n).rev() {
            s.push(if self.bit(Dim(d)) { '1' } else { '0' });
        }
        s
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A hypercube dimension (equivalently, a channel label at a node).
///
/// Channel `d` of node `x` connects `x` to `x ⊕ 2^d`; a message using that
/// channel is said to *travel in dimension `d`*.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dim(pub u8);

impl fmt::Debug for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dim({})", self.0)
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u8> for Dim {
    fn from(v: u8) -> Self {
        Dim(v)
    }
}

/// `δ(u, v)` with high-to-low resolution: the *highest*-ordered bit position
/// in which `u` and `v` differ (Definition 1), or `None` when `u = v`.
///
/// This is the first dimension an E-cube message from `u` to `v` travels
/// when addresses are resolved from high-order to low-order bits.
#[inline]
#[must_use]
pub fn delta_high(u: NodeId, v: NodeId) -> Option<Dim> {
    let x = u.xor(v);
    if x == 0 {
        None
    } else {
        Some(Dim((31 - x.leading_zeros()) as u8))
    }
}

/// `δ(u, v)` with low-to-high resolution: the *lowest*-ordered differing
/// bit position, or `None` when `u = v`.
#[inline]
#[must_use]
pub fn delta_low(u: NodeId, v: NodeId) -> Option<Dim> {
    let x = u.xor(v);
    if x == 0 {
        None
    } else {
        Some(Dim(x.trailing_zeros() as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_counts_ones() {
        assert_eq!(NodeId(0).weight(), 0);
        assert_eq!(NodeId(0b1011).weight(), 3);
        assert_eq!(NodeId(u32::MAX).weight(), 32);
    }

    #[test]
    fn distance_is_xor_weight() {
        let u = NodeId(0b0101);
        let v = NodeId(0b1110);
        assert_eq!(u.distance(v), 3);
        assert_eq!(u.distance(u), 0);
        assert_eq!(u.xor(v), 0b1011);
    }

    #[test]
    fn flip_is_involutive_and_moves_one_bit() {
        let u = NodeId(0b0101);
        let d = Dim(3);
        let v = u.flip(d);
        assert_eq!(v, NodeId(0b1101));
        assert_eq!(v.flip(d), u);
        assert_eq!(u.distance(v), 1);
    }

    #[test]
    fn bit_reads_single_positions() {
        let u = NodeId(0b0110);
        assert!(!u.bit(Dim(0)));
        assert!(u.bit(Dim(1)));
        assert!(u.bit(Dim(2)));
        assert!(!u.bit(Dim(3)));
    }

    #[test]
    fn delta_high_is_paper_definition_1() {
        // δ(u, v) = ⌊log2(u ⊕ v)⌋
        assert_eq!(delta_high(NodeId(0b0101), NodeId(0b1110)), Some(Dim(3)));
        assert_eq!(delta_high(NodeId(0b0001), NodeId(0b0000)), Some(Dim(0)));
        assert_eq!(delta_high(NodeId(7), NodeId(7)), None);
    }

    #[test]
    fn delta_low_mirrors_delta_high_under_bit_reversal() {
        let n = 6;
        for u in 0..(1u32 << n) {
            for v in 0..(1u32 << n) {
                let (u, v) = (NodeId(u), NodeId(v));
                let lo = delta_low(u, v);
                let hi = delta_high(u.bit_reverse(n), v.bit_reverse(n));
                match (lo, hi) {
                    (None, None) => {}
                    (Some(a), Some(b)) => assert_eq!(a.0, n - 1 - b.0),
                    other => panic!("mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn bit_reverse_round_trips() {
        for n in 1..=10u8 {
            for v in 0..(1u32 << n) {
                assert_eq!(NodeId(v).bit_reverse(n).bit_reverse(n), NodeId(v));
            }
        }
    }

    #[test]
    fn binary_rendering_matches_paper_style() {
        assert_eq!(NodeId(0b0111).binary(4), "0111");
        assert_eq!(NodeId(0).binary(4), "0000");
        assert_eq!(NodeId(14).binary(4), "1110");
    }
}
