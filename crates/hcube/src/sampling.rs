//! Destination-set sampling: seeded random draws over any [`Topology`].
//!
//! The paper's evaluation draws "destination sets in which the nodes are
//! randomly distributed throughout the hypercube"; the open-loop traffic
//! subsystem (the `traffic` crate) additionally needs *structured*
//! destination populations — subcube-biased locality and hot-spot
//! concentration — to probe how the multicast algorithms behave under
//! sustained, spatially skewed load. This module owns the draw
//! primitives so every consumer (`workloads::destsets`, the traffic
//! generators, the CLI) samples identically.
//!
//! All draws are pure functions of the RNG state: identical seeds give
//! identical sets, on every platform (the vendored `hc-rand` stream is
//! integer-only and fully deterministic).

use crate::addr::NodeId;
use crate::cube::Cube;
use crate::topology::Topology;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// Draws `m` distinct destinations uniformly (without replacement) from
/// the non-source nodes of `topo`.
///
/// ```
/// use hcube::{Cube, NodeId, sampling};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let dests = sampling::sample_distinct(&mut rng, &Cube::of(6), NodeId(0), 10);
/// assert_eq!(dests.len(), 10);
/// assert!(!dests.contains(&NodeId(0)));
/// ```
///
/// # Panics
/// If `m > N − 1` or the source is not in the topology.
#[must_use]
pub fn sample_distinct<T: Topology, R: RngCore>(
    rng: &mut R,
    topo: &T,
    source: NodeId,
    m: usize,
) -> Vec<NodeId> {
    assert!(topo.contains(source), "source outside topology");
    assert!(
        m < topo.node_count(),
        "cannot draw {m} destinations from {} candidates",
        topo.node_count() - 1
    );
    let mut pool: Vec<NodeId> = (0..topo.node_count() as u32)
        .map(NodeId)
        .filter(|&v| v != source)
        .collect();
    // partial_shuffle picks m random elements into the prefix in O(m).
    let (prefix, _) = pool.partial_shuffle(rng, m);
    prefix.to_vec()
}

/// Completes a partially drawn destination set: after `chosen` has been
/// filled by rejection sampling, any shortfall is topped up from the
/// unused nodes in ascending address order (deterministic, and only
/// reached when the biased population is too small to supply `m`
/// distinct nodes on its own).
fn fill_remaining<T: Topology>(
    topo: &T,
    source: NodeId,
    m: usize,
    mut chosen: Vec<NodeId>,
) -> Vec<NodeId> {
    if chosen.len() < m {
        let mut used = vec![false; topo.node_count()];
        used[source.0 as usize] = true;
        for &d in &chosen {
            used[d.0 as usize] = true;
        }
        for v in 0..topo.node_count() as u32 {
            if chosen.len() == m {
                break;
            }
            if !used[v as usize] {
                chosen.push(NodeId(v));
            }
        }
    }
    chosen
}

/// Draws `m` distinct destinations with **subcube locality bias**: each
/// draw lands, with probability `bias`, inside the subcube spanned by
/// the `low_dims` lowest dimensions around `source` (Definition 2's
/// `Q(source; low_dims)`), and uniformly anywhere otherwise.
///
/// `bias = 0.0` degenerates to a uniform draw over the whole cube;
/// `bias = 1.0` confines the set to the subcube (topping up
/// deterministically if the subcube has fewer than `m` free nodes).
/// Models data-parallel applications whose communication is dominated by
/// nearest-neighbor partitions.
///
/// # Panics
/// If `m > N − 1`, the source is outside the cube, `low_dims` exceeds
/// the cube dimension, or `bias` is outside `[0, 1]`.
#[must_use]
pub fn sample_subcube_biased<R: RngCore>(
    rng: &mut R,
    cube: Cube,
    source: NodeId,
    m: usize,
    low_dims: u8,
    bias: f64,
) -> Vec<NodeId> {
    assert!(cube.contains(source), "source outside cube");
    assert!(
        m < Topology::node_count(&cube),
        "cannot draw {m} destinations from {} candidates",
        Topology::node_count(&cube) - 1
    );
    assert!(low_dims <= cube.dimension(), "subcube wider than the cube");
    assert!((0.0..=1.0).contains(&bias), "bias must be a probability");
    let sub_mask: u32 = if low_dims == 32 {
        u32::MAX
    } else {
        (1u32 << low_dims) - 1
    };
    let sub_base = source.0 & !sub_mask;
    let n_nodes = Topology::node_count(&cube) as u32;
    let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
    // Rejection sampling with a deterministic attempt budget; the
    // ascending fill below guarantees termination and exact cardinality.
    let budget = 16 * m + 64;
    for _ in 0..budget {
        if chosen.len() == m {
            break;
        }
        let v = if rng.gen_bool(bias) {
            NodeId(sub_base | (rng.gen_range(0..=sub_mask) & sub_mask))
        } else {
            NodeId(rng.gen_range(0..n_nodes))
        };
        if v != source && !chosen.contains(&v) {
            chosen.push(v);
        }
    }
    fill_remaining(&cube, source, m, chosen)
}

/// Draws `m` distinct destinations with **hot-spot concentration**: each
/// draw picks, with probability `p`, one of the `hotspots` (uniformly
/// among them), and a uniform node otherwise. Models sustained traffic
/// skew toward a few popular endpoints (parameter servers, I/O nodes).
///
/// Distinctness is enforced across the whole set, so at most
/// `hotspots.len()` of the results can be hot spots; the remainder is
/// uniform background. Hot spots equal to the source are skipped.
///
/// # Panics
/// If `m > N − 1`, the source or a hot spot is outside the topology, or
/// `p` is outside `[0, 1]`.
#[must_use]
pub fn sample_hotspot<T: Topology, R: RngCore>(
    rng: &mut R,
    topo: &T,
    source: NodeId,
    m: usize,
    hotspots: &[NodeId],
    p: f64,
) -> Vec<NodeId> {
    assert!(topo.contains(source), "source outside topology");
    assert!(
        m < topo.node_count(),
        "cannot draw {m} destinations from {} candidates",
        topo.node_count() - 1
    );
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    for &h in hotspots {
        assert!(topo.contains(h), "hot spot outside topology");
    }
    let n_nodes = topo.node_count() as u32;
    let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
    let budget = 16 * m + 64;
    for _ in 0..budget {
        if chosen.len() == m {
            break;
        }
        let v = if !hotspots.is_empty() && rng.gen_bool(p) {
            *hotspots.choose(rng).expect("non-empty hotspot list")
        } else {
            NodeId(rng.gen_range(0..n_nodes))
        };
        if v != source && !chosen.contains(&v) {
            chosen.push(v);
        }
    }
    fill_remaining(topo, source, m, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::Torus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_valid<T: Topology>(topo: &T, source: NodeId, m: usize, dests: &[NodeId]) {
        assert_eq!(dests.len(), m);
        assert!(!dests.contains(&source));
        let mut s: Vec<u32> = dests.iter().map(|d| d.0).collect();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), m, "duplicates drawn");
        assert!(dests.iter().all(|&d| topo.contains(d)));
    }

    #[test]
    fn distinct_draws_are_valid_and_deterministic() {
        let cube = Cube::of(6);
        for m in [1, 7, 32, 63] {
            let a = sample_distinct(&mut StdRng::seed_from_u64(9), &cube, NodeId(5), m);
            let b = sample_distinct(&mut StdRng::seed_from_u64(9), &cube, NodeId(5), m);
            assert_valid(&cube, NodeId(5), m, &a);
            assert_eq!(a, b, "same seed must reproduce the draw");
        }
    }

    #[test]
    fn distinct_draws_work_on_the_torus() {
        let torus = Torus::of(4, 3);
        let d = sample_distinct(&mut StdRng::seed_from_u64(3), &torus, NodeId(12), 20);
        assert_valid(&torus, NodeId(12), 20, &d);
    }

    #[test]
    fn subcube_bias_one_confines_to_the_subcube() {
        let cube = Cube::of(6);
        let source = NodeId(0b101_010);
        let d = sample_subcube_biased(&mut StdRng::seed_from_u64(1), cube, source, 7, 3, 1.0);
        assert_valid(&cube, source, 7, &d);
        // 3 low dimensions around 0b101_010: all results share the high bits.
        assert!(d.iter().all(|v| v.0 & !0b111 == 0b101_000));
    }

    #[test]
    fn subcube_bias_zero_is_unconfined_statistically() {
        let cube = Cube::of(6);
        let mut outside = 0;
        for seed in 0..40 {
            let d =
                sample_subcube_biased(&mut StdRng::seed_from_u64(seed), cube, NodeId(0), 8, 2, 0.0);
            assert_valid(&cube, NodeId(0), 8, &d);
            outside += d.iter().filter(|v| v.0 > 3).count();
        }
        assert!(outside > 200, "uniform draws must escape the subcube");
    }

    #[test]
    fn oversized_subcube_request_fills_deterministically() {
        // 2-dim subcube has 4 nodes (3 excluding the source) but we ask
        // for 10: the remainder tops up in ascending order.
        let cube = Cube::of(5);
        let d = sample_subcube_biased(&mut StdRng::seed_from_u64(2), cube, NodeId(0), 10, 2, 1.0);
        assert_valid(&cube, NodeId(0), 10, &d);
    }

    #[test]
    fn hotspots_dominate_at_high_p() {
        let cube = Cube::of(6);
        let spots = [NodeId(9), NodeId(33), NodeId(60)];
        let mut hot = 0;
        for seed in 0..40 {
            let d = sample_hotspot(
                &mut StdRng::seed_from_u64(seed),
                &cube,
                NodeId(0),
                3,
                &spots,
                1.0,
            );
            assert_valid(&cube, NodeId(0), 3, &d);
            hot += d.iter().filter(|v| spots.contains(v)).count();
        }
        // p = 1 and m = |spots|: essentially every draw is a hot spot.
        assert!(hot >= 100, "only {hot}/120 hot draws");
    }

    #[test]
    fn hotspot_empty_list_degenerates_to_uniform() {
        let torus = Torus::of(4, 2);
        let d = sample_hotspot(
            &mut StdRng::seed_from_u64(4),
            &torus,
            NodeId(3),
            6,
            &[],
            0.9,
        );
        assert_valid(&torus, NodeId(3), 6, &d);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn rejects_oversized_request() {
        let cube = Cube::of(3);
        let _ = sample_distinct(&mut StdRng::seed_from_u64(0), &cube, NodeId(0), 8);
    }
}
