//! # hcube — hypercube topology substrate
//!
//! The topology layer beneath the [`hypercast`] multicast algorithms and
//! the [`wormsim`] wormhole-network simulator, reproducing the formal
//! machinery of Robinson, Judd, McKinley & Cheng, *Efficient Collective
//! Data Distribution in All-Port Wormhole-Routed Hypercubes* (SC '93):
//!
//! * **Addresses and channels** ([`addr`], [`cube`]): `n`-bit node
//!   addresses, the `δ(u, v)` operator (Definition 1), per-node channel
//!   labels.
//! * **E-cube routing** ([`routing`], [`path`]): the deterministic
//!   dimension-ordered paths `P(u, v)` under both address-resolution
//!   orders (the paper's high-to-low and the nCUBE-2's low-to-high),
//!   with Lemma 1's monotonicity enforced by construction.
//! * **Subcubes** ([`subcube`]): Definition 2, the half decomposition
//!   driving `weighted_sort`, and Lemma 2's contiguity.
//! * **Chains** ([`chain`]): dimension-ordered and cube-ordered chains
//!   (Definition 5), source-relative chain construction, and the
//!   `cube_center` primitive of Figure 7.
//! * **Arc-disjointness** ([`disjoint`]): the exact shared-channel oracle
//!   and Theorems 1–2 as executable sufficient conditions.
//!
//! Everything here is purely combinatorial — no simulation time, no
//! message payloads — and allocation-free on the hot paths (routing is
//! iterator-based). The crate is `#![forbid(unsafe_code)]`.
//!
//! [`hypercast`]: ../hypercast/index.html
//! [`wormsim`]: ../wormsim/index.html
//!
//! ## Quick example
//!
//! ```
//! use hcube::{Cube, NodeId, Resolution, Path};
//!
//! let cube = Cube::of(4);
//! let path = Path::new(Resolution::HighToLow, NodeId(0b0101), NodeId(0b1110));
//! let visited: Vec<u32> = path.nodes().map(|v| v.0).collect();
//! assert_eq!(visited, vec![0b0101, 0b1101, 0b1111, 0b1110]); // paper §3.1
//! assert!(cube.contains(path.dst));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod addr;
pub mod chain;
pub mod cube;
pub mod disjoint;
pub mod error;
pub mod mesh;
pub mod path;
pub mod routing;
pub mod sampling;
pub mod subcube;
pub mod topology;
pub mod torus;

pub use addr::{delta_high, delta_low, Dim, NodeId};
pub use cube::{Cube, MAX_DIMENSION};
pub use error::HcubeError;
pub use mesh::{Mesh, MeshXY, MinimalAdaptive};
pub use path::{Channel, Path};
pub use routing::Resolution;
pub use subcube::Subcube;
pub use topology::{Ecube, Hop, Router, Topology};
pub use torus::{Torus, TorusRouter};
