//! Gallery of the collective operations built on the multicast trees:
//! broadcast, reduction, barrier, scatter, gather, all-to-all broadcast,
//! and pipelined chunked broadcast — each timed on the simulated nCUBE-2.
//!
//! ```text
//! cargo run -p bench --release --example collectives_gallery
//! ```

use hcube::{Cube, NodeId, Resolution};
use hypercast::collectives::{
    all_to_all_broadcast, barrier, broadcast, gather, scatter, ReductionSchedule,
};
use hypercast::{Algorithm, MulticastTree, PortModel};
use wormsim::{
    simulate_chunked_multicast, simulate_concurrent_multicasts, simulate_gather,
    simulate_multicast, simulate_reduction, simulate_scatter, SimParams,
};

fn main() {
    let cube = Cube::of(6);
    let res = Resolution::HighToLow;
    let port = PortModel::AllPort;
    let params = SimParams::ncube2(port);
    let algo = Algorithm::WSort;
    let root = NodeId(0);
    let everyone: Vec<NodeId> = cube.nodes().filter(|&v| v != root).collect();

    println!(
        "collective operations on a {}-cube ({} nodes), W-sort trees, nCUBE-2 parameters\n",
        cube.dimension(),
        cube.node_count()
    );

    // Broadcast: one 4 KB payload to all 63 nodes.
    let bcast = broadcast(algo, cube, res, port, root).unwrap();
    let r = simulate_multicast(&bcast, &params, 4096);
    println!(
        "broadcast        4 KB → all        : {:>10}   ({} steps)",
        format!("{}", r.max_delay),
        bcast.steps
    );

    // Pipelined broadcast: same payload in 8 chunks.
    let r = simulate_chunked_multicast(&bcast, &params, 4096, 8);
    println!(
        "broadcast (8-chunk pipeline)       : {:>10}",
        format!("{}", r.max_delay)
    );

    // Reduction: 64-byte contributions combined to the root.
    let red = ReductionSchedule::from_multicast(&bcast);
    let r = simulate_reduction(&red, cube, res, &params, 64);
    println!(
        "reduction        64 B from all     : {:>10}",
        format!("{}", r.max_delay)
    );

    // Barrier: reduce + release.
    let b = barrier(algo, cube, res, port, root).unwrap();
    let t = simulate_reduction(&b.reduce, cube, res, &params, 16).max_delay
        + simulate_multicast(&b.release, &params, 16).max_delay;
    println!(
        "barrier          (reduce + release): {:>10}   ({} steps)",
        format!("{t}"),
        b.steps()
    );

    // Scatter: a distinct 1 KB block to every node.
    let s = scatter(algo, cube, res, port, root, &everyone, 1024).unwrap();
    let r = simulate_scatter(&s, &params);
    println!(
        "scatter          1 KB blocks       : {:>10}   (root injects {} KB, network carries {} KB·hop)",
        format!("{}", r.max_delay),
        s.root_bytes() / 1024,
        s.network_bytes() / 1024
    );

    // Gather: a distinct 1 KB block from every node.
    let g = gather(algo, cube, res, port, root, &everyone, 1024).unwrap();
    let r = simulate_gather(&g, cube, res, &params);
    println!(
        "gather           1 KB blocks       : {:>10}",
        format!("{}", r.max_delay)
    );

    // All-to-all broadcast: every node broadcasts 512 B, concurrently.
    let trees = all_to_all_broadcast(algo, cube, res, port).unwrap();
    let refs: Vec<&MulticastTree> = trees.iter().collect();
    let reports = simulate_concurrent_multicasts(&refs, &params, 512);
    let slowest = reports.trees.iter().map(|r| r.max_delay).max().unwrap();
    let blocks: u64 = reports.trees.iter().map(|r| r.blocks).sum();
    println!(
        "all-to-all bcast 512 B each        : {:>10}   ({} ops, {} cross-op blocking events)",
        format!("{slowest}"),
        reports.trees.len(),
        blocks
    );
}
