//! Quickstart: build a multicast tree, check it is contention-free, and
//! measure its delay on the simulated nCUBE-2.
//!
//! ```text
//! cargo run -p bench --release --example quickstart
//! ```

use hcube::{Cube, NodeId, Resolution};
use hypercast::contention::is_contention_free;
use hypercast::{Algorithm, PortModel};
use wormsim::{simulate_multicast, SimParams};

fn main() {
    // An 8-cube (256 nodes), all-port wormhole routers, as on an nCUBE-2.
    let cube = Cube::of(8);
    let resolution = Resolution::HighToLow;
    let port = PortModel::AllPort;

    // Multicast a 4 KB payload from node 0 to 40 scattered destinations.
    let source = NodeId(0);
    let dests: Vec<NodeId> = (1..=40u32).map(|i| NodeId(i * 6 % 256)).collect();

    println!(
        "multicast: {} destinations in an {}-cube\n",
        dests.len(),
        cube.dimension()
    );
    println!(
        "{:>10} {:>6} {:>10} {:>12} {:>12} {:>8}",
        "algorithm", "steps", "messages", "avg delay", "max delay", "blocks"
    );

    let params = SimParams::ncube2(port);
    for algo in Algorithm::PAPER {
        let tree = algo
            .build(cube, resolution, port, source, &dests)
            .expect("valid multicast request");
        assert!(!algo.contention_free_all_port() || is_contention_free(&tree));
        let report = simulate_multicast(&tree, &params, 4096);
        println!(
            "{:>10} {:>6} {:>10} {:>12} {:>12} {:>8}",
            algo.name(),
            tree.steps,
            tree.message_count(),
            format!("{}", report.avg_delay),
            format!("{}", report.max_delay),
            report.blocks,
        );
    }

    // Show the winning tree.
    let tree = Algorithm::WSort
        .build(cube, resolution, port, source, &dests[..8])
        .unwrap();
    println!(
        "\nW-sort tree for the first 8 destinations:\n{}",
        tree.render()
    );
}
