//! Walkthrough of the paper's worked examples (Figures 3, 5, 6 and 8):
//! prints each multicast tree, its step count, and the simulated delays,
//! reproducing the narrative of Sections 2 and 4.
//!
//! ```text
//! cargo run -p bench --release --example paper_walkthrough
//! ```

use hcube::chain::relative_chain;
use hcube::{Cube, NodeId, Resolution};
use hypercast::algorithms::weighted_sort::weighted_sort;
use hypercast::{Algorithm, PortModel};
use wormsim::{simulate_multicast, SimParams};

fn ids(v: &[u32]) -> Vec<NodeId> {
    v.iter().copied().map(NodeId).collect()
}

fn show(title: &str, algo: Algorithm, port: PortModel, source: u32, dests: &[NodeId]) {
    let cube = Cube::of(4);
    let tree = algo
        .build(cube, Resolution::HighToLow, port, NodeId(source), dests)
        .unwrap();
    println!("--- {title} ---");
    println!("{} on {}: {} steps", algo.name(), port.label(), tree.steps);
    print!("{}", tree.render());
    let params = SimParams::ncube2(port);
    let r = simulate_multicast(&tree, &params, 4096);
    println!(
        "simulated 4 KB delay: avg {}, max {}, channel blocks {}\n",
        r.avg_delay, r.max_delay, r.blocks
    );
}

fn main() {
    // ------------------------- Figure 3 -------------------------------
    let fig3 = ids(&[
        0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111,
    ]);
    println!("== Figure 3: multicast from 0000 to 8 destinations in a 4-cube ==\n");
    show(
        "Figure 3(c): U-cube, one-port",
        Algorithm::UCube,
        PortModel::OnePort,
        0,
        &fig3,
    );
    show(
        "Figure 3(d): U-cube, all-port",
        Algorithm::UCube,
        PortModel::AllPort,
        0,
        &fig3,
    );
    show(
        "Figure 3(e): W-sort, all-port (optimal)",
        Algorithm::WSort,
        PortModel::AllPort,
        0,
        &fig3,
    );

    // ------------------------- Figure 5 -------------------------------
    println!("== Figure 5: the d0-relative dimension-ordered chain ==\n");
    let dests = ids(&[
        0b0001, 0b0011, 0b0101, 0b0111, 0b1000, 0b1010, 0b1011, 0b1111,
    ]);
    let chain = relative_chain(Resolution::HighToLow, 4, NodeId(0b0100), &dests).unwrap();
    println!(
        "source 0100, destinations {:?}",
        dests.iter().map(|d| d.binary(4)).collect::<Vec<_>>()
    );
    println!(
        "Φ = {:?}\n",
        chain.iter().map(|d| d.binary(4)).collect::<Vec<_>>()
    );
    show(
        "Figure 5: U-cube from 0100, one-port",
        Algorithm::UCube,
        PortModel::OnePort,
        0b0100,
        &dests,
    );

    // ------------------------- Figure 6 -------------------------------
    println!("== Figure 6: the Maxport pathology ==\n");
    let fig6 = ids(&[0b1001, 0b1010, 0b1011]);
    show(
        "Figure 6(a): Maxport needs 3 steps",
        Algorithm::Maxport,
        PortModel::AllPort,
        0,
        &fig6,
    );
    show(
        "Figure 6(b): U-cube needs only 2",
        Algorithm::UCube,
        PortModel::AllPort,
        0,
        &fig6,
    );

    // ------------------------- Figure 8 -------------------------------
    println!("== Figure 8: weighted_sort in action ==\n");
    let mut d = ids(&[0, 1, 3, 5, 7, 11, 12, 14, 15]);
    println!(
        "dimension-ordered D = {:?}",
        d.iter().map(|v| v.0).collect::<Vec<_>>()
    );
    weighted_sort(&mut d, 4);
    println!(
        "weighted_sort(D)   = {:?}  (matches the paper)\n",
        d.iter().map(|v| v.0).collect::<Vec<_>>()
    );
    let fig8 = ids(&[1, 3, 5, 7, 11, 12, 14, 15]);
    show(
        "Figure 8(a): U-cube, 4 steps",
        Algorithm::UCube,
        PortModel::AllPort,
        0,
        &fig8,
    );
    show(
        "Figure 8(b): Maxport, 4 steps",
        Algorithm::Maxport,
        PortModel::AllPort,
        0,
        &fig8,
    );
    show(
        "Figure 8(c): W-sort, 2 steps",
        Algorithm::WSort,
        PortModel::AllPort,
        0,
        &fig8,
    );
}
