//! A tour of the wormhole network simulator itself: unicast latency
//! anatomy, distance insensitivity, channel contention, and the one-port
//! vs all-port node models.
//!
//! ```text
//! cargo run -p bench --release --example simulator_tour
//! ```

use hcube::{Cube, NodeId, Resolution};
use hypercast::PortModel;
use wormsim::{simulate, simulate_unicast, DepMessage, SimParams, SimTime};

fn msg(src: u32, dst: u32, bytes: u32, deps: Vec<usize>) -> DepMessage {
    DepMessage {
        src: NodeId(src),
        dst: NodeId(dst),
        bytes,
        deps,
        min_start: SimTime::ZERO,
    }
}

fn main() {
    let cube = Cube::of(6);
    let res = Resolution::HighToLow;
    let params = SimParams::ncube2(PortModel::AllPort);

    println!("== 1. Unicast latency anatomy (nCUBE-2 parameters) ==");
    println!(
        "model: t_send {} + hops × t_hop {} + bytes × t_byte {} + t_recv {}",
        params.t_send_sw, params.t_hop, params.t_byte, params.t_recv_sw
    );
    for bytes in [64u32, 1024, 4096] {
        let t = simulate_unicast(cube, res, &params, NodeId(0), NodeId(0b111), bytes);
        println!("  {bytes:>5} B over 3 hops → {t}");
    }

    println!("\n== 2. Distance insensitivity (4 KB payload) ==");
    for dst in [1u32, 0b11, 0b1111, 0b111111] {
        let t = simulate_unicast(cube, res, &params, NodeId(0), NodeId(dst), 4096);
        println!("  {} hops → {t}", NodeId(0).distance(NodeId(dst)));
    }
    println!("  (5 extra hops cost 10 µs of ~2 ms: wormhole routing)");

    println!("\n== 3. Channel contention ==");
    // Two worms colliding mid-path: 000000→000011 and 000110→000011.
    let run = simulate(
        cube,
        res,
        &params,
        &[
            msg(0b000000, 0b000011, 4096, vec![]),
            msg(0b000110, 0b000011, 4096, vec![]),
        ],
    );
    for (i, m) in run.messages.iter().enumerate() {
        println!(
            "  worm {i}: delivered {} (blocked {} times, {} waiting)",
            m.delivered, m.blocks, m.blocked_time
        );
    }
    println!("  the loser holds its first channel while waiting — wormhole blocking");

    println!("\n== 4. One-port vs all-port fan-out (three 4 KB sends) ==");
    for port in [PortModel::OnePort, PortModel::AllPort] {
        let p = SimParams::ncube2(port);
        let run = simulate(
            cube,
            res,
            &p,
            &[
                msg(0, 0b000001, 4096, vec![]),
                msg(0, 0b000010, 4096, vec![]),
                msg(0, 0b000100, 4096, vec![]),
            ],
        );
        let last = run.messages.iter().map(|m| m.delivered).max().unwrap();
        println!(
            "  {:>9}: last of 3 parallel sends delivered at {last} (port waits {})",
            port.label(),
            run.stats.port_waits
        );
    }
    println!("  all-port overlaps the transfers; one-port pays them serially");

    println!("\n== 5. Dependency pipelines ==");
    // A 3-stage forward chain: 0 → 8 → 12 → 14.
    let run = simulate(
        cube,
        res,
        &params,
        &[
            msg(0, 0b001000, 4096, vec![]),
            msg(0b001000, 0b001100, 4096, vec![0]),
            msg(0b001100, 0b001110, 4096, vec![1]),
        ],
    );
    for (i, m) in run.messages.iter().enumerate() {
        println!(
            "  stage {i}: injected {} delivered {}",
            m.injected, m.delivered
        );
    }
    println!("  each stage starts only after the previous payload arrives");
}
