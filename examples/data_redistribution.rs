//! A realistic scientific-computing scenario: periodic data
//! redistribution in a data-parallel iteration (the use case the paper's
//! introduction motivates — HPF-style runtimes and MPI collectives).
//!
//! A 10-cube (1024-node) machine runs an iterative solver. Each
//! iteration:
//!   1. a coordinator multicasts updated boundary data (4 KB) to the
//!      subset of nodes whose subdomains changed owners;
//!   2. all nodes synchronize with a barrier (reduction + release);
//!   3. the coordinator gathers 64-byte residuals (reduction).
//!
//! The example compares the per-iteration communication cost of the four
//! multicast algorithms.
//!
//! ```text
//! cargo run -p bench --release --example data_redistribution
//! ```

use hcube::{Cube, NodeId, Resolution};
use hypercast::collectives::{barrier, ReductionSchedule};
use hypercast::{Algorithm, PortModel};
use wormsim::{simulate_multicast, simulate_reduction, SimParams, SimTime};

fn main() {
    let cube = Cube::of(10);
    let res = Resolution::HighToLow;
    let port = PortModel::AllPort;
    let params = SimParams::ncube2(port);
    let coordinator = NodeId(0);

    // The repartitioner moved 200 subdomains this iteration; their new
    // owners are scattered across the machine.
    let affected: Vec<NodeId> = (0..200u32).map(|i| NodeId((i * 41 + 13) % 1024)).collect();

    println!(
        "machine: {}-cube ({} nodes) | redistribution: {} affected nodes, 4 KB each",
        cube.dimension(),
        cube.node_count(),
        affected.len()
    );
    println!(
        "\n{:>10} {:>14} {:>14} {:>14} {:>14}",
        "algorithm", "redistribute", "barrier", "gather", "iteration"
    );

    for algo in Algorithm::PAPER {
        // 1. boundary multicast to the affected nodes
        let mcast = algo.build(cube, res, port, coordinator, &affected).unwrap();
        let t_mcast = simulate_multicast(&mcast, &params, 4096).max_delay;

        // 2. full-machine barrier rooted at the coordinator
        let bar = barrier(algo, cube, res, port, coordinator).unwrap();
        let t_bar = simulate_reduction(&bar.reduce, cube, res, &params, 16).max_delay
            + simulate_multicast(&bar.release, &params, 16).max_delay;

        // 3. residual gather (reverse of a broadcast tree)
        let gather_tree =
            hypercast::collectives::broadcast(algo, cube, res, port, coordinator).unwrap();
        let gather = ReductionSchedule::from_multicast(&gather_tree);
        let t_gather = simulate_reduction(&gather, cube, res, &params, 64).max_delay;

        let total: SimTime = t_mcast + t_bar + t_gather;
        println!(
            "{:>10} {:>14} {:>14} {:>14} {:>14}",
            algo.name(),
            format!("{t_mcast}"),
            format!("{t_bar}"),
            format!("{t_gather}"),
            format!("{total}"),
        );
    }

    println!(
        "\nThe multicast phase dominates and is where the all-port-aware\n\
         algorithms (Maxport/Combine/W-sort) pay off; barrier and gather\n\
         costs are similar across algorithms because a full-machine\n\
         broadcast tree is the binomial tree for all of them."
    );
}
