//! End-to-end pipeline tests: workload generation → tree construction →
//! scheduling → simulation → figure aggregation, at reduced trial counts.

use hcube::{Cube, NodeId, Resolution};
use hypercast::{Algorithm, PortModel};
use workloads::destsets::{random_dests, trial_rng};
use workloads::figures;
use wormsim::{simulate_multicast, SimParams};

#[test]
fn fig09_pipeline_smoke() {
    let f = figures::fig09(2);
    assert_eq!(f.id, "fig09");
    assert_eq!(f.series.len(), 4);
    for s in &f.series {
        assert_eq!(s.xs.len(), 63);
        assert!(s.ys.iter().all(|&y| (1.0..=6.5).contains(&y)), "{}", s.name);
    }
    // Rendering works.
    assert!(f.to_table().contains("fig09"));
    assert!(f.to_ascii_plot(60, 12).contains("legend"));
    let json = workloads::json::parse(&f.to_json()).unwrap();
    assert_eq!(json["id"], "fig09");
    assert_eq!(json["series"].as_array().unwrap().len(), 4);
}

#[test]
fn fig10_pipeline_smoke() {
    let f = figures::fig10(2);
    let pts = figures::ten_cube_points();
    assert_eq!(f.series[0].xs.len(), pts.len());
    // At m = 1023 (broadcast), every algorithm needs exactly 10 steps
    // (spanning binomial tree on a 10-cube).
    for s in &f.series {
        let last = *s.ys.last().unwrap();
        assert!((last - 10.0).abs() < 1e-9, "{}: {last}", s.name);
    }
}

#[test]
fn fig13_14_pipeline_smoke() {
    let (avg, max) = figures::fig13_14(1);
    assert_eq!(avg.id, "fig13");
    assert_eq!(max.id, "fig14");
    for (a, m) in avg.series.iter().zip(&max.series) {
        for i in 0..a.ys.len() {
            assert!(m.ys[i] >= a.ys[i] - 1e-9, "max ≥ avg for {}", a.name);
        }
    }
    // The paper's larger-system observation: W-sort's advantage over
    // U-cube is visible at intermediate sizes on the 10-cube.
    let u = max.series.iter().find(|s| s.name == "U-cube").unwrap();
    let w = max.series.iter().find(|s| s.name == "W-sort").unwrap();
    let pts = figures::ten_cube_points();
    let idx = pts.iter().position(|&m| m == 384).unwrap();
    assert!(w.ys[idx] < u.ys[idx]);
}

#[test]
fn ucube_staircase_vs_wsort_smoothness() {
    // Fixed instance family: U-cube's one-port-style staircase at m = 2^k
    // vs the smoothed all-port algorithms (the paper's "smooth out the
    // staircase behavior" claim), measured exactly.
    let cube = Cube::of(6);
    let mut jumps = 0;
    for k in 1..=5u32 {
        let m_before = (1usize << k) - 1;
        let m_after = 1usize << k;
        let mut total_before = 0u32;
        let mut total_after = 0u32;
        for trial in 0..20 {
            let mut rng = trial_rng("staircase", k as usize, trial);
            let d_after = random_dests(&mut rng, cube, NodeId(0), m_after);
            let d_before = d_after[..m_before].to_vec();
            for (set, acc) in [(&d_before, &mut total_before), (&d_after, &mut total_after)] {
                let t = Algorithm::UCube
                    .build(
                        cube,
                        Resolution::HighToLow,
                        PortModel::OnePort,
                        NodeId(0),
                        set,
                    )
                    .unwrap();
                *acc += t.steps;
            }
        }
        if total_after > total_before {
            jumps += 1;
        }
        // One-port U-cube steps are deterministic in m: exactly
        // ⌈log₂(m+1)⌉ — the staircase jumps at every power of two.
        assert_eq!(total_before, 20 * k);
        assert_eq!(total_after, 20 * (k + 1));
    }
    assert_eq!(jumps, 5);
}

#[test]
fn full_stack_deterministic() {
    // The same seed keys must reproduce identical simulated delays.
    let run = || {
        let cube = Cube::of(8);
        let mut rng = trial_rng("e2e-det", 1, 2);
        let dests = random_dests(&mut rng, cube, NodeId(0), 40);
        let t = Algorithm::WSort
            .build(
                cube,
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests,
            )
            .unwrap();
        simulate_multicast(&t, &SimParams::ncube2(PortModel::AllPort), 4096)
            .max_delay
            .as_ns()
    };
    assert_eq!(run(), run());
}

#[test]
fn results_are_finite_and_positive_everywhere() {
    let (avg, max) = figures::fig11_12(2);
    for f in [avg, max] {
        for s in &f.series {
            for (&x, &y) in s.xs.iter().zip(&s.ys) {
                assert!(x >= 1.0);
                assert!(y.is_finite() && y > 0.0, "{} at {x}", s.name);
            }
        }
    }
}
