//! Integration tests pinning the implementation to the paper's worked
//! examples (Figures 3, 5, 6, and 8) across crates: tree construction,
//! contention checking, and wormhole simulation must all agree with the
//! published behavior.

use hcube::chain::relative_chain;
use hcube::{Cube, NodeId, Resolution};
use hypercast::algorithms::weighted_sort::weighted_sort;
use hypercast::contention::is_contention_free;
use hypercast::{Algorithm, MulticastTree, PortModel};
use wormsim::{simulate_multicast, SimParams};

fn ids(v: &[u32]) -> Vec<NodeId> {
    v.iter().copied().map(NodeId).collect()
}

/// The Figure 2/3 multicast: source 0000, eight destinations in a 4-cube.
fn figure_3_dests() -> Vec<NodeId> {
    ids(&[
        0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111,
    ])
}

fn build(algo: Algorithm, port: PortModel, source: u32, dests: &[NodeId]) -> MulticastTree {
    algo.build(
        Cube::of(4),
        Resolution::HighToLow,
        port,
        NodeId(source),
        dests,
    )
    .unwrap()
}

#[test]
fn figure_3c_one_port_ucube_takes_four_steps() {
    let t = build(Algorithm::UCube, PortModel::OnePort, 0, &figure_3_dests());
    assert_eq!(t.steps, 4, "⌈log₂(8+1)⌉ = 4, the one-port optimum");
    assert!(is_contention_free(&t), "the [9] guarantee");
    // Only destination processors handle the message.
    assert!(t.relays(&figure_3_dests()).is_empty());
}

#[test]
fn figure_3d_all_port_ucube_still_takes_four_steps() {
    let t = build(Algorithm::UCube, PortModel::AllPort, 0, &figure_3_dests());
    assert_eq!(t.steps, 4);
    // The delayed transmission the paper describes: the unicast to 1011
    // shares node 0111's channel 3 with the unicast to 1100 and arrives
    // only in step 3.
    assert_eq!(t.recv_step(NodeId(0b1011)), Some(3));
    assert_eq!(t.recv_step(NodeId(0b0111)), Some(1));
}

#[test]
fn figure_3e_wsort_takes_two_steps_contention_free() {
    let t = build(Algorithm::WSort, PortModel::AllPort, 0, &figure_3_dests());
    assert_eq!(t.steps, 2, "the paper's optimal all-port tree");
    assert!(is_contention_free(&t), "Theorem 6");
    assert!(t.relays(&figure_3_dests()).is_empty());
    // 2 is exactly optimal for this instance (capacity bound ⌈log₅ 9⌉=2).
    let exact = hypercast::bounds::min_steps_port_limited(
        Cube::of(4),
        Resolution::HighToLow,
        PortModel::AllPort,
        NodeId(0),
        &figure_3_dests(),
    )
    .unwrap();
    assert_eq!(exact, 2);
}

#[test]
fn figure_5_relative_chain_and_steps() {
    // Source 0100; the paper's Φ.
    let dests = ids(&[
        0b0001, 0b0011, 0b0101, 0b0111, 0b1000, 0b1010, 0b1011, 0b1111,
    ]);
    let chain = relative_chain(Resolution::HighToLow, 4, NodeId(0b0100), &dests).unwrap();
    assert_eq!(
        chain,
        ids(&[0b0000, 0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111])
    );
    let t = Algorithm::UCube
        .build(
            Cube::of(4),
            Resolution::HighToLow,
            PortModel::OnePort,
            NodeId(0b0100),
            &dests,
        )
        .unwrap();
    assert_eq!(t.steps, 4);
}

#[test]
fn figure_6_maxport_pathology_and_combine_fix() {
    let dests = ids(&[0b1001, 0b1010, 0b1011]);
    assert_eq!(
        build(Algorithm::Maxport, PortModel::AllPort, 0, &dests).steps,
        3
    );
    assert_eq!(
        build(Algorithm::UCube, PortModel::AllPort, 0, &dests).steps,
        2
    );
    assert_eq!(
        build(Algorithm::Combine, PortModel::AllPort, 0, &dests).steps,
        2
    );
}

#[test]
fn figure_8_weighted_sort_chain_and_step_counts() {
    // D = {0,1,3,5,7,11,12,14,15} → D̂ = {0,1,3,5,7,14,15,12,11}.
    let mut d = ids(&[0, 1, 3, 5, 7, 11, 12, 14, 15]);
    weighted_sort(&mut d, 4);
    assert_eq!(d, ids(&[0, 1, 3, 5, 7, 14, 15, 12, 11]));

    let dests = ids(&[1, 3, 5, 7, 11, 12, 14, 15]);
    let u = build(Algorithm::UCube, PortModel::AllPort, 0, &dests);
    let m = build(Algorithm::Maxport, PortModel::AllPort, 0, &dests);
    let w = build(Algorithm::WSort, PortModel::AllPort, 0, &dests);
    assert_eq!(u.steps, 4, "Figure 8(a)");
    assert_eq!(m.steps, 4, "Figure 8(b)");
    assert_eq!(w.steps, 2, "Figure 8(c)");
    // Figure 8(b): every Maxport sender uses distinct outgoing channels,
    // so all its sends are same-step.
    for uc in &m.unicasts {
        let parent_recv = m.recv_step(uc.src).unwrap();
        assert_eq!(
            uc.step,
            parent_recv + 1,
            "Maxport sends all fire immediately"
        );
    }
    // Figure 8(c) tree shape: node 14 forwards to 15, 12 and 11.
    let from_14: Vec<u32> = w
        .unicasts
        .iter()
        .filter(|u| u.src == NodeId(14))
        .map(|u| u.dst.0)
        .collect();
    assert_eq!(from_14.len(), 3);
    for d in [15, 12, 11] {
        assert!(from_14.contains(&d));
    }
}

#[test]
fn figure_8a_node_7_channel_conflict() {
    // "node 7 cannot send to nodes 11 and 12 during the same time step,
    // since both unicasts require the same outgoing channel."
    let dests = ids(&[1, 3, 5, 7, 11, 12, 14, 15]);
    let u = build(Algorithm::UCube, PortModel::AllPort, 0, &dests);
    let s11 = u.unicasts.iter().find(|x| x.dst == NodeId(11)).unwrap();
    let s12 = u.unicasts.iter().find(|x| x.dst == NodeId(12)).unwrap();
    assert_eq!(s11.src, NodeId(7));
    assert_eq!(s12.src, NodeId(7));
    assert_ne!(s11.step, s12.step, "same channel ⇒ different steps");
}

#[test]
fn simulated_delays_follow_the_figure_3_step_ratio() {
    // Two steps vs four steps must be visible as roughly 2× delay in the
    // simulated nCUBE-2 (transfer-dominated regime).
    let params = SimParams::ncube2(PortModel::AllPort);
    let u = build(Algorithm::UCube, PortModel::AllPort, 0, &figure_3_dests());
    let w = build(Algorithm::WSort, PortModel::AllPort, 0, &figure_3_dests());
    let du = simulate_multicast(&u, &params, 4096);
    let dw = simulate_multicast(&w, &params, 4096);
    assert_eq!(dw.blocks, 0);
    let ratio = du.max_delay.as_ms() / dw.max_delay.as_ms();
    assert!(
        (1.5..=2.5).contains(&ratio),
        "expected ≈2× (4 steps vs 2), got {ratio:.2}"
    );
}

#[test]
fn dimension_order_examples_from_section_4_1() {
    use hcube::chain::dim_lt;
    // High-to-low: 00110 <_d 10010 <_d 10100.
    let r = Resolution::HighToLow;
    assert!(dim_lt(r, 5, NodeId(0b00110), NodeId(0b10010)));
    assert!(dim_lt(r, 5, NodeId(0b10010), NodeId(0b10100)));
    // Low-to-high: 10100 <_d 10010 <_d 00110.
    let r = Resolution::LowToHigh;
    assert!(dim_lt(r, 5, NodeId(0b10100), NodeId(0b10010)));
    assert!(dim_lt(r, 5, NodeId(0b10010), NodeId(0b00110)));
}

#[test]
fn section_3_1_path_example() {
    use hcube::Path;
    let p = Path::new(Resolution::HighToLow, NodeId(0b0101), NodeId(0b1110));
    let nodes: Vec<u32> = p.nodes().map(|v| v.0).collect();
    assert_eq!(nodes, vec![0b0101, 0b1101, 0b1111, 0b1110]);
}
