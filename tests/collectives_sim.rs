//! Integration tests for the collective operations (extension layer)
//! running end-to-end through the wormhole simulator.

use hcube::{Cube, NodeId, Resolution};
use hypercast::collectives::{barrier, broadcast, ReductionSchedule};
use hypercast::{Algorithm, PortModel};
use wormsim::{simulate_multicast, simulate_reduction, SimParams, SimTime};

#[test]
fn broadcast_delay_scales_with_tree_depth() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut prev = SimTime::ZERO;
    for n in [3u8, 5, 7] {
        let t = broadcast(
            Algorithm::WSort,
            Cube::of(n),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
        )
        .unwrap();
        let r = simulate_multicast(&t, &params, 4096);
        assert_eq!(r.blocks, 0);
        assert_eq!(r.deliveries.len(), (1 << n) - 1);
        assert!(
            r.max_delay > prev,
            "broadcast cost must grow with cube size"
        );
        prev = r.max_delay;
    }
}

#[test]
fn reduction_simulates_cleanly_for_every_algorithm() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let cube = Cube::of(5);
    for algo in Algorithm::PAPER {
        let bcast = broadcast(
            algo,
            cube,
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(9),
        )
        .unwrap();
        let red = ReductionSchedule::from_multicast(&bcast);
        assert!(red.is_causal());
        let r = simulate_reduction(&red, cube, Resolution::HighToLow, &params, 64);
        assert_eq!(r.deliveries.len(), 31);
        assert!(r.max_delay > SimTime::ZERO);
        // The root's last inbound contribution defines completion.
        assert!(r
            .deliveries
            .iter()
            .any(|&(dst, t)| dst == NodeId(9) && t == r.max_delay));
    }
}

#[test]
fn reduction_of_contention_free_tree_does_not_block() {
    // The reversed W-sort tree reverses every arc; reversed E-cube paths
    // are still deterministic routes, and the mirrored schedule keeps the
    // pipeline clean in practice on this structured workload.
    let params = SimParams::ncube2(PortModel::AllPort);
    let cube = Cube::of(6);
    let bcast = broadcast(
        Algorithm::WSort,
        cube,
        Resolution::HighToLow,
        PortModel::AllPort,
        NodeId(0),
    )
    .unwrap();
    let red = ReductionSchedule::from_multicast(&bcast);
    let r = simulate_reduction(&red, cube, Resolution::HighToLow, &params, 64);
    assert_eq!(r.deliveries.len(), 63);
    assert!(r.max_delay > SimTime::ZERO);
}

#[test]
fn barrier_costs_roughly_double_a_broadcast() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let cube = Cube::of(5);
    let b = barrier(
        Algorithm::WSort,
        cube,
        Resolution::HighToLow,
        PortModel::AllPort,
        NodeId(0),
    )
    .unwrap();
    assert_eq!(b.steps(), 2 * b.release.steps);
    let bcast_delay = simulate_multicast(&b.release, &params, 16).max_delay;
    let reduce_delay =
        simulate_reduction(&b.reduce, cube, Resolution::HighToLow, &params, 16).max_delay;
    let total = bcast_delay + reduce_delay;
    // Within 3× of a single broadcast on each side (small payload, so
    // startup dominates and the phases are comparable).
    assert!(total >= bcast_delay);
    assert!(total.as_ns() <= 3 * 2 * bcast_delay.as_ns());
}

#[test]
fn one_port_collectives_also_run() {
    let params = SimParams::ncube2(PortModel::OnePort);
    let cube = Cube::of(4);
    let t = broadcast(
        Algorithm::UCube,
        cube,
        Resolution::HighToLow,
        PortModel::OnePort,
        NodeId(0),
    )
    .unwrap();
    let r = simulate_multicast(&t, &params, 4096);
    assert_eq!(r.blocks, 0, "one-port U-cube is contention-free");
    assert_eq!(r.deliveries.len(), 15);
}
