//! Integration tests for the collective operations (extension layer)
//! running end-to-end through the wormhole simulator.

use hcube::{Cube, NodeId, Resolution, Torus, TorusRouter};
use hypercast::collectives::{
    allgather, allgather_separate, allreduce, allreduce_separate, barrier, broadcast,
    reduce_scatter, reduce_scatter_separate, ReductionSchedule,
};
use hypercast::oracle::verify_collective;
use hypercast::{Algorithm, CollectiveKind, CollectiveSchedule, PortModel, TreeFamily};
use wormsim::{
    simulate_collective, simulate_collective_on, simulate_multicast, simulate_reduction, SimParams,
    SimTime,
};

#[test]
fn broadcast_delay_scales_with_tree_depth() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut prev = SimTime::ZERO;
    for n in [3u8, 5, 7] {
        let t = broadcast(
            Algorithm::WSort,
            Cube::of(n),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
        )
        .unwrap();
        let r = simulate_multicast(&t, &params, 4096);
        assert_eq!(r.blocks, 0);
        assert_eq!(r.deliveries.len(), (1 << n) - 1);
        assert!(
            r.max_delay > prev,
            "broadcast cost must grow with cube size"
        );
        prev = r.max_delay;
    }
}

#[test]
fn reduction_simulates_cleanly_for_every_algorithm() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let cube = Cube::of(5);
    for algo in Algorithm::PAPER {
        let bcast = broadcast(
            algo,
            cube,
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(9),
        )
        .unwrap();
        let red = ReductionSchedule::from_multicast(&bcast);
        assert!(red.is_causal());
        let r = simulate_reduction(&red, cube, Resolution::HighToLow, &params, 64);
        assert_eq!(r.deliveries.len(), 31);
        assert!(r.max_delay > SimTime::ZERO);
        // The root's last inbound contribution defines completion.
        assert!(r
            .deliveries
            .iter()
            .any(|&(dst, t)| dst == NodeId(9) && t == r.max_delay));
    }
}

#[test]
fn reduction_of_contention_free_tree_does_not_block() {
    // The reversed W-sort tree reverses every arc; reversed E-cube paths
    // are still deterministic routes, and the mirrored schedule keeps the
    // pipeline clean in practice on this structured workload.
    let params = SimParams::ncube2(PortModel::AllPort);
    let cube = Cube::of(6);
    let bcast = broadcast(
        Algorithm::WSort,
        cube,
        Resolution::HighToLow,
        PortModel::AllPort,
        NodeId(0),
    )
    .unwrap();
    let red = ReductionSchedule::from_multicast(&bcast);
    let r = simulate_reduction(&red, cube, Resolution::HighToLow, &params, 64);
    assert_eq!(r.deliveries.len(), 63);
    assert!(r.max_delay > SimTime::ZERO);
}

#[test]
fn barrier_costs_roughly_double_a_broadcast() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let cube = Cube::of(5);
    let b = barrier(
        Algorithm::WSort,
        cube,
        Resolution::HighToLow,
        PortModel::AllPort,
        NodeId(0),
    )
    .unwrap();
    assert_eq!(b.steps(), 2 * b.release.steps);
    let bcast_delay = simulate_multicast(&b.release, &params, 16).max_delay;
    let reduce_delay =
        simulate_reduction(&b.reduce, cube, Resolution::HighToLow, &params, 16).max_delay;
    let total = bcast_delay + reduce_delay;
    // Within 3× of a single broadcast on each side (small payload, so
    // startup dominates and the phases are comparable).
    assert!(total >= bcast_delay);
    assert!(total.as_ns() <= 3 * 2 * bcast_delay.as_ns());
}

/// Builds one cube collective of the suite.
fn cube_collective(kind: CollectiveKind, family: TreeFamily, cube: Cube) -> CollectiveSchedule {
    let (res, port) = (Resolution::HighToLow, PortModel::AllPort);
    match kind {
        CollectiveKind::Allgather => allgather(family, cube, res, port, 128, None),
        CollectiveKind::ReduceScatter => reduce_scatter(family, cube, res, port, 128, None),
        CollectiveKind::Allreduce => allreduce(family, cube, res, port, NodeId(5), 128, None),
    }
    .unwrap()
}

#[test]
fn every_collective_family_simulates_and_passes_the_oracle_on_the_cube() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let cube = Cube::of(4);
    for kind in CollectiveKind::ALL {
        for family in TreeFamily::SWEEP {
            let sched = cube_collective(kind, family, cube);
            verify_collective(&sched)
                .unwrap_or_else(|e| panic!("{} {}: {e}", kind.name(), family.name()));
            let r = simulate_collective(&sched, cube, Resolution::HighToLow, &params);
            assert_eq!(
                r.deliveries.len(),
                sched.ops.len(),
                "{} {}: every op must deliver",
                kind.name(),
                family.name()
            );
            assert!(
                r.deliveries.iter().all(|&(_, t)| t > SimTime::ZERO),
                "{} {}",
                kind.name(),
                family.name()
            );
            assert!(r.max_delay > SimTime::ZERO);
        }
    }
}

#[test]
fn every_separate_collective_simulates_and_passes_the_oracle_on_the_torus() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let torus = Torus::of(4, 2);
    for kind in CollectiveKind::ALL {
        let sched = match kind {
            CollectiveKind::Allgather => allgather_separate(&torus, 128),
            CollectiveKind::ReduceScatter => reduce_scatter_separate(&torus, 128),
            CollectiveKind::Allreduce => allreduce_separate(&torus, NodeId(3), 128),
        };
        verify_collective(&sched).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let r = simulate_collective_on(&sched, TorusRouter::new(torus), &params);
        assert_eq!(r.deliveries.len(), sched.ops.len(), "{}", kind.name());
        assert!(r.max_delay > SimTime::ZERO, "{}", kind.name());
    }
}

#[test]
fn allgather_outruns_sequential_broadcasts() {
    // The point of the concurrent schedule: N overlapped broadcasts
    // finish far sooner than N back-to-back ones.
    let params = SimParams::ncube2(PortModel::AllPort);
    let cube = Cube::of(4);
    let sched = cube_collective(
        CollectiveKind::Allgather,
        TreeFamily::Alg(Algorithm::WSort),
        cube,
    );
    let concurrent = simulate_collective(&sched, cube, Resolution::HighToLow, &params).max_delay;
    let one = broadcast(
        Algorithm::WSort,
        cube,
        Resolution::HighToLow,
        PortModel::AllPort,
        NodeId(0),
    )
    .unwrap();
    let single = simulate_multicast(&one, &params, 128).max_delay;
    assert!(
        concurrent.as_ns() < 16 * single.as_ns(),
        "allgather {concurrent} vs 16 sequential broadcasts {single} each"
    );
}

#[test]
fn collective_traffic_runs_end_to_end() {
    use traffic::{ArrivalProcess, Arrivals, DestPattern, TrafficSpec};
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut spec = TrafficSpec::new(
        Arrivals::new(ArrivalProcess::Poisson, 0.1),
        DestPattern::UniformRandom { m: 4 },
        6,
        11,
    );
    spec.bytes = 128;
    for family in [TreeFamily::Alg(Algorithm::WSort), TreeFamily::Bine] {
        for kind in CollectiveKind::ALL {
            let r = traffic::run_collective_cube(
                &spec,
                Cube::of(4),
                Resolution::HighToLow,
                kind,
                family,
                &params,
            );
            assert_eq!(r.sessions.len(), 6, "{} {}", kind.name(), family.name());
            assert!(
                r.completion_ratio > 0.0,
                "{} {}",
                kind.name(),
                family.name()
            );
        }
    }
}

#[test]
fn one_port_collectives_also_run() {
    let params = SimParams::ncube2(PortModel::OnePort);
    let cube = Cube::of(4);
    let t = broadcast(
        Algorithm::UCube,
        cube,
        Resolution::HighToLow,
        PortModel::OnePort,
        NodeId(0),
    )
    .unwrap();
    let r = simulate_multicast(&t, &params, 4096);
    assert_eq!(r.blocks, 0, "one-port U-cube is contention-free");
    assert_eq!(r.deliveries.len(), 15);
}
