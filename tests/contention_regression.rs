//! Regression tests for contention behavior discovered during
//! development: all-port U-cube *can* violate Definition 4 (a concrete
//! 6-cube witness), while Combine — although not covered by a theorem in
//! the paper — never contended in extensive randomized scans.

use hcube::{Cube, NodeId, Resolution};
use hypercast::contention::{contention_witnesses, is_contention_free};
use hypercast::{Algorithm, PortModel};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use wormsim::{simulate_multicast, SimParams};

fn ids(v: &[u32]) -> Vec<NodeId> {
    v.iter().copied().map(NodeId).collect()
}

/// A shrunken 6-cube destination set on which all-port U-cube schedules
/// two same-step unicasts from different subtrees across one channel
/// (found by randomized search, then minimized).
fn ucube_witness_dests() -> Vec<NodeId> {
    ids(&[
        12, 13, 16, 17, 20, 21, 28, 29, 31, 34, 35, 39, 40, 41, 44, 45, 46, 54, 56, 57, 58, 62,
    ])
}

#[test]
fn ucube_all_port_contention_witness() {
    let t = Algorithm::UCube
        .build(
            Cube::of(6),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &ucube_witness_dests(),
        )
        .unwrap();
    let w = contention_witnesses(&t);
    assert!(
        !w.is_empty(),
        "this destination set must exhibit Definition-4 contention"
    );
    // The same instance must be clean under one-port scheduling.
    let t1 = Algorithm::UCube
        .build(
            Cube::of(6),
            Resolution::HighToLow,
            PortModel::OnePort,
            NodeId(0),
            &ucube_witness_dests(),
        )
        .unwrap();
    assert!(is_contention_free(&t1));
}

#[test]
fn witness_contention_is_physical() {
    // The simulator must observe actual channel blocking on the witness.
    let t = Algorithm::UCube
        .build(
            Cube::of(6),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &ucube_witness_dests(),
        )
        .unwrap();
    let r = simulate_multicast(&t, &SimParams::ncube2(PortModel::AllPort), 4096);
    assert!(
        r.blocks > 0,
        "Definition-4 violation must surface as blocking"
    );
}

#[test]
fn wsort_on_the_witness_set_is_clean_and_faster() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let build = |a: Algorithm| {
        a.build(
            Cube::of(6),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &ucube_witness_dests(),
        )
        .unwrap()
    };
    let w = build(Algorithm::WSort);
    assert!(is_contention_free(&w));
    let rw = simulate_multicast(&w, &params, 4096);
    assert_eq!(rw.blocks, 0);
    let ru = simulate_multicast(&build(Algorithm::UCube), &params, 4096);
    assert!(rw.max_delay < ru.max_delay);
}

#[test]
fn combine_contention_free_on_randomized_scan() {
    // Not a theorem in the paper, but an empirical regularity this
    // implementation relies on documenting: 600 random instances across
    // three cube sizes, zero Definition-4 witnesses.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
    for n in [4u8, 6, 8] {
        let cube = Cube::of(n);
        for _ in 0..200 {
            let m = rng.gen_range(1..cube.node_count().min(64));
            let mut pool: Vec<u32> = (1..cube.node_count() as u32).collect();
            pool.shuffle(&mut rng);
            let dests: Vec<NodeId> = pool[..m].iter().map(|&v| NodeId(v)).collect();
            let t = Algorithm::Combine
                .build(
                    cube,
                    Resolution::HighToLow,
                    PortModel::AllPort,
                    NodeId(0),
                    &dests,
                )
                .unwrap();
            assert!(
                is_contention_free(&t),
                "Combine contended on n={n}, dests={dests:?}"
            );
        }
    }
}

#[test]
fn maxport_and_wsort_never_block_in_simulation_scan() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
    let cube = Cube::of(7);
    for _ in 0..100 {
        let m = rng.gen_range(1..100usize);
        let mut pool: Vec<u32> = (1..cube.node_count() as u32).collect();
        pool.shuffle(&mut rng);
        let dests: Vec<NodeId> = pool[..m].iter().map(|&v| NodeId(v)).collect();
        for algo in [Algorithm::Maxport, Algorithm::WSort] {
            let t = algo
                .build(
                    cube,
                    Resolution::HighToLow,
                    PortModel::AllPort,
                    NodeId(0),
                    &dests,
                )
                .unwrap();
            let r = simulate_multicast(&t, &params, 1024);
            assert_eq!(r.blocks, 0, "{algo} blocked on {dests:?}");
        }
    }
}
