//! Workspace-level schema checks for the observability exports: the
//! Chrome/Perfetto trace JSON and both metrics export formats, parsed
//! with the first-party `workloads::json` parser (wormsim itself cannot
//! depend on `workloads`, so the schema validation lives here).

use hcube::{Cube, Ecube, NodeId, Resolution, Torus, TorusRouter};
use hypercast::{Algorithm, PortModel};
use workloads::json::{parse, Value};
use wormsim::network::ChannelMap;
use wormsim::{
    multicast_workload, simulate_observed_on, DepMessage, EventRecorder, Metrics, SimParams,
    SimTime, Tee,
};

/// A contended multicast run with both sinks attached, returning the
/// Perfetto JSON and the metrics registry.
fn observed_run() -> (String, wormsim::MetricsRegistry) {
    let cube = Cube::of(5);
    let params = SimParams::ncube2(PortModel::AllPort);
    let dests: Vec<NodeId> = (1..32).map(NodeId).collect();
    let tree = Algorithm::UCube
        .build(
            cube,
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests,
        )
        .unwrap();
    let router = Ecube::new(cube, Resolution::HighToLow);
    let mut probe = Tee(EventRecorder::new(), Metrics::new());
    let _run = simulate_observed_on(
        router,
        &params,
        &multicast_workload(&tree, 4096),
        &mut probe,
    );
    let map = ChannelMap::new(router);
    (probe.0.to_chrome_trace(&map), probe.1.snapshot())
}

#[test]
fn perfetto_trace_is_valid_chrome_trace_json() {
    let (trace, _) = observed_run();
    let doc = parse(&trace).expect("trace must be well-formed JSON");

    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ns")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut saw_complete = 0usize;
    let mut saw_meta = 0usize;
    for e in events {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .expect("every event has a ph");
        let pid = e.get("pid").and_then(Value::as_f64).expect("pid number");
        assert!(pid == 1.0 || pid == 2.0, "pid {pid}");
        assert!(e.get("tid").and_then(Value::as_f64).is_some(), "tid number");
        match ph {
            "M" => {
                // Metadata: process_name / thread_name with an args.name.
                let name = e.get("name").and_then(Value::as_str).unwrap();
                assert!(name == "process_name" || name == "thread_name");
                assert!(e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .is_some());
                saw_meta += 1;
            }
            "X" => {
                // Complete slice: ts + dur in microseconds, dur > 0
                // (Perfetto drops zero-width slices).
                let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
                let dur = e.get("dur").and_then(Value::as_f64).expect("dur");
                assert!(ts >= 0.0);
                assert!(dur > 0.0, "zero-duration slice");
                assert!(e.get("name").and_then(Value::as_str).is_some());
                saw_complete += 1;
            }
            "i" => {
                assert_eq!(e.get("s").and_then(Value::as_str), Some("g"));
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(saw_complete > 0, "no occupancy slices");
    // Two process_name records plus two thread_name records per used
    // channel.
    assert!(saw_meta >= 4, "missing track metadata");
}

#[test]
fn perfetto_trace_names_both_processes_and_used_channels() {
    let (trace, _) = observed_run();
    let doc = parse(&trace).unwrap();
    let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
    let proc_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("process_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert!(proc_names.contains(&"channels (held)"));
    assert!(proc_names.contains(&"channels (blocked)"));
    // Thread names carry the topology's channel labels (binary node
    // addresses on the cube).
    assert!(events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .any(|l| l.contains('→')));
}

#[test]
fn perfetto_trace_works_on_the_torus_backend() {
    let torus = Torus::of(4, 2);
    let router = TorusRouter::new(torus);
    let params = SimParams::ncube2(PortModel::AllPort);
    let workload: Vec<DepMessage> = (1..16)
        .map(|v| DepMessage {
            src: NodeId(v),
            dst: NodeId(0),
            bytes: 1024,
            deps: vec![],
            min_start: SimTime::ZERO,
        })
        .collect();
    let mut rec = EventRecorder::new();
    let _ = simulate_observed_on(router, &params, &workload, &mut rec);
    let map = ChannelMap::new(router);
    let doc = parse(&rec.to_chrome_trace(&map)).expect("torus trace parses");
    let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
    // Torus coordinate labels (e.g. "3,1--d0+v0→") survive JSON escaping.
    assert!(events
        .iter()
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .any(|l| l.contains("--d")));
    // The hot-spot run must have produced blocked slices on pid 2.
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(Value::as_str) == Some("X")
            && e.get("pid").and_then(Value::as_f64) == Some(2.0)));
}

#[test]
fn metrics_json_export_parses_and_carries_core_series() {
    let (_, registry) = observed_run();
    let text = registry.to_json();
    let doc = parse(&text).expect("metrics JSON parses");
    let counters = doc.get("counters").expect("counters object");
    for key in [
        "events_total",
        "injected_total",
        "delivered_total",
        "channel_grants_total",
    ] {
        let v = counters
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("missing counter {key}"));
        assert!(v > 0.0, "{key} should be positive");
    }
    // 31 unicasts in the broadcast tree.
    assert_eq!(
        counters.get("delivered_total").and_then(Value::as_f64),
        Some(31.0)
    );
    let hists = doc.get("histograms").expect("histograms object");
    let latency = hists.get("latency_ns").expect("latency histogram");
    assert_eq!(latency.get("count").and_then(Value::as_f64), Some(31.0));
    assert!(latency.get("sum").and_then(Value::as_f64).unwrap() > 0.0);
    // Buckets are cumulative and end at the +Inf count.
    let buckets = latency
        .get("buckets")
        .and_then(Value::as_array)
        .expect("buckets");
    let mut last = 0.0;
    for b in buckets {
        let c = b.get("count").and_then(Value::as_f64).unwrap();
        assert!(c >= last, "bucket counts must be cumulative");
        last = c;
    }
    assert_eq!(last, 31.0, "final bucket is the total count");
}

#[test]
fn metrics_prometheus_export_is_well_formed() {
    let (_, registry) = observed_run();
    let text = registry.to_prometheus_text();
    let mut typed: Vec<&str> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap();
            let kind = parts.next().unwrap();
            assert!(name.starts_with("wormsim_"), "namespace: {name}");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "kind {kind}"
            );
            typed.push(name);
        } else {
            // Sample line: name[{labels}] value — the name must belong
            // to the most recent TYPE family.
            let name = line.split([' ', '{']).next().unwrap();
            assert!(
                typed.iter().any(|t| name.starts_with(t)),
                "sample {name} missing TYPE header"
            );
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
        }
    }
    // Histograms expose bucket/sum/count triples.
    assert!(text.contains("wormsim_latency_ns_bucket{le=\""));
    assert!(text.contains("wormsim_latency_ns_sum"));
    assert!(text.contains("wormsim_latency_ns_count"));
    assert!(text.contains("le=\"+Inf\""));
}

#[test]
fn exports_are_deterministic() {
    let (trace_a, reg_a) = observed_run();
    let (trace_b, reg_b) = observed_run();
    assert_eq!(trace_a, trace_b);
    assert_eq!(reg_a.to_json(), reg_b.to_json());
    assert_eq!(reg_a.to_prometheus_text(), reg_b.to_prometheus_text());
}
