//! Minimal, dependency-free stand-in for the subset of the [`rand`]
//! crate API used by this workspace.
//!
//! The build environment has no network access, so the workspace vendors
//! a small deterministic PRNG with the same *shape* as `rand` 0.8:
//!
//! * [`rngs::StdRng`] — a seedable generator ([xoshiro256++] over a
//!   SplitMix64-expanded seed);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges;
//! * [`seq::SliceRandom`] — `shuffle`, `partial_shuffle`, `choose`.
//!
//! The streams are **not** bit-compatible with the upstream crate — any
//! test pinning exact draws would need re-pinning — but every consumer
//! in this workspace asserts statistical or structural properties only.
//!
//! [xoshiro256++]: https://prng.di.unimi.it/
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Generator types.
pub mod rngs {
    /// A deterministic 256-bit-state generator (xoshiro256++).
    ///
    /// Statistically strong for simulation workloads, trivially seedable,
    /// and fully reproducible across platforms.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Seedable construction (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion, the standard way to fill xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // All-zero state is the one forbidden configuration; seed 0
        // cannot produce it after SplitMix64, but guard anyway.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        StdRng { s }
    }
}

/// A type that can be sampled uniformly from a range (sealed to the
/// integer widths the workspace needs).
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[lo, hi)`. `hi > lo` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(hi > lo, "empty sampling range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Lemire-style widening multiply avoids modulo bias for
                // the span sizes used here.
                let wide = u128::from(rng.next_u64()) * u128::from(span);
                lo.wrapping_add((wide >> 64) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_inclusive_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                if hi == <$t>::MAX {
                    // Avoid overflow in hi + 1: draw from the full width.
                    if lo == 0 {
                        return <$t>::sample_half_open(rng, 0, <$t>::MAX)
                            .wrapping_add((rng.next_u64() & 1) as $t);
                    }
                }
                <$t>::sample_half_open(rng, lo, hi + 1)
            }
        }
    )*};
}
impl_inclusive_range!(u8, u16, u32, u64, usize);

/// The raw 64-bit source every adapter builds on.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Convenience sampling adapters (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53-bit mantissa draw, like the upstream implementation.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice sampling adapters (subset of `rand::seq::SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Moves `amount` uniformly chosen elements into the prefix and
        /// returns `(chosen, rest)`.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_prefix_is_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        let (prefix, rest) = v.partial_shuffle(&mut rng, 10);
        assert_eq!(prefix.len(), 10);
        assert_eq!(rest.len(), 90);
        let mut p = prefix.to_vec();
        p.sort_unstable();
        p.dedup();
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([5u8].choose(&mut rng), Some(&5));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
