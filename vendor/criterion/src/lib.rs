//! Minimal, dependency-free stand-in for the subset of the
//! [`criterion`] crate API used by this workspace's benches.
//!
//! The build environment is offline, so the workspace vendors a small
//! wall-clock harness with the same surface: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Each
//! benchmark runs a short calibration pass followed by `sample_size`
//! timed samples and prints `min / median / mean` per iteration.
//!
//! Not statistical rigor — just a usable, dependency-free way to run
//! `cargo bench` offline and compare orders of magnitude.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Harness entry point handed to every bench function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // ignore harness flags such as `--bench`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks `f` directly under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id, self.sample_size, self.filter.as_deref(), f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let n = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(&full, n, self.parent.filter.as_deref(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; a no-op here).
    pub fn finish(&mut self) {}
}

/// Identifier composed of a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            repr: format!("{name}/{parameter}"),
        }
    }

    /// Just `<parameter>`.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Timing driver passed to the closure under test.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean per-iteration time of the sample this run recorded.
    sample: Option<Duration>,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate an iteration count targeting ~20 ms per sample.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.sample = Some(start.elapsed() / iters);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, filter: Option<&str>, mut f: F) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples.max(2) {
        let mut b = Bencher::default();
        f(&mut b);
        if let Some(t) = b.sample {
            times.push(t);
        }
    }
    if times.is_empty() {
        println!("{id:<48} (no samples: bencher.iter never called)");
        return;
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "{id:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        times.len()
    );
}

/// Declares a group of bench functions runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
        };
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion {
            sample_size: 2,
            filter: None,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let input = 21u64;
        g.bench_with_input(BenchmarkId::new("double", input), &input, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("nomatch".into()),
        };
        let mut calls = 0u32;
        c.bench_function("other", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 0);
    }
}
