//! Minimal, dependency-free stand-in for the subset of the
//! [`proptest`] crate API used by this workspace.
//!
//! The build environment is offline, so the workspace vendors a small
//! property-testing harness with the same surface the test suites use:
//!
//! * the [`proptest!`] macro (functions with `pattern in strategy`
//!   parameters, doc comments, and `#[test]` attributes);
//! * [`Strategy`] with `prop_map` / `prop_flat_map`;
//! * integer range strategies, [`Just`], [`any`], tuples up to arity 5;
//! * [`collection::vec`] and [`collection::btree_set`];
//! * [`prop_assume!`], [`prop_assert!`], [`prop_assert_eq!`].
//!
//! Differences from upstream: no shrinking (failures report the seed of
//! the failing case instead), and a fixed case count of
//! [`CASES`] (override with `HC_PROPTEST_CASES`).
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Default number of accepted cases each property runs.
pub const CASES: u32 = 48;

/// Resolves the per-test case count (`HC_PROPTEST_CASES` override).
#[must_use]
pub fn case_count() -> u32 {
    std::env::var("HC_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CASES)
}

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            x: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n > 0` required.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Stable FNV-1a hash used to derive per-test seeds from test names.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from
    /// it, and samples that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// A strategy always producing a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(hi >= lo, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// Strategy over all values of `T` (see [`any`]).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical unconstrained strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Size specifications accepted by the collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{BTreeSet, SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<T>` (see [`vec()`]).
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector of `size`-many draws from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` (see [`btree_set`]).
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A set of distinct draws from `elem`, sized within `size` where the
    /// element domain allows (small domains may saturate below the
    /// requested minimum, as in upstream proptest's bounded retries).
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let want = self.size.lo + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < want && attempts < want * 20 + 20 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy, TestCaseError,
    };

    /// Mirror of the upstream `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// ```
/// use hc_proptest::prelude::*;
///
/// hc_proptest::proptest! {
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let base_seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)).as_bytes());
            let cases = $crate::case_count();
            let mut accepted = 0u32;
            let mut attempt = 0u32;
            let max_attempts = cases.saturating_mul(20).max(200);
            while accepted < cases {
                assert!(
                    attempt < max_attempts,
                    "property {} rejected too many inputs ({} attempts, {} accepted)",
                    stringify!($name), attempt, accepted
                );
                let case_seed = base_seed ^ (u64::from(attempt).wrapping_mul(0x2545_F491_4F6C_DD1D));
                let mut prop_rng = $crate::TestRng::new(case_seed);
                attempt += 1;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed (case seed {:#x}): {}",
                            stringify!($name), case_seed, msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Rejects the current case (it is retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts within a property, failing the case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), va, vb),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n  {}",
                        stringify!($a), stringify!($b), va, vb, format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::TestRng;
    use proptest::prelude::*;

    fn pair() -> impl Strategy<Value = (u8, u32)> {
        (1u8..=6).prop_flat_map(|n| (Just(n), 0u32..(1u32 << n)))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 5usize..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn flat_map_respects_dependency((n, v) in pair()) {
            prop_assert!(v < (1u32 << n), "v={} n={}", v, n);
        }

        #[test]
        fn collections_respect_sizes(
            s in prop::collection::btree_set(0u32..1000, 3..10),
            v in prop::collection::vec(0u8..4, 2..=5),
        ) {
            prop_assert!(s.len() >= 3 && s.len() < 10);
            prop_assert!((2..=5).contains(&v.len()));
        }

        #[test]
        fn assume_retries(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn tests_are_deterministic() {
        let mut a = Vec::new();
        let mut rng = TestRng::new(5);
        for _ in 0..10 {
            a.push((0u32..50).generate(&mut rng));
        }
        let mut rng = TestRng::new(5);
        let b: Vec<u32> = (0..10).map(|_| (0u32..50).generate(&mut rng)).collect();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn small_domain_btree_set_saturates(
            s in prop::collection::btree_set(0u32..3, 1..=10)
        ) {
            prop_assert!(!s.is_empty() && s.len() <= 3);
        }
    }
}
